//! Minimum-jerk interpolation and rate limiting.
//!
//! Point-to-point human reaching motion is classically modelled by the
//! minimum-jerk profile (Flash & Hogan 1985): position blends from start
//! to goal along `10τ³ − 15τ⁴ + 6τ⁵`, with zero velocity and acceleration
//! at both ends. The operator models build their "defined trajectory"
//! from these segments, and the joystick's moving offset is enforced with
//! [`rate_limit`].

/// Minimum-jerk scalar blend at normalised time `τ ∈ [0, 1]`.
///
/// Values outside the range are clamped (the motion has ended/not begun).
pub fn min_jerk(tau: f64) -> f64 {
    let t = tau.clamp(0.0, 1.0);
    t * t * t * (10.0 - 15.0 * t + 6.0 * t * t)
}

/// Interpolates a joint-space segment `from → to` of `duration` seconds,
/// sampled every `period` seconds, excluding the start point and including
/// the end point.
///
/// # Panics
/// Panics on mismatched joint counts or non-positive duration/period.
pub fn min_jerk_segment(from: &[f64], to: &[f64], duration: f64, period: f64) -> Vec<Vec<f64>> {
    assert_eq!(from.len(), to.len(), "segment: joint count mismatch");
    assert!(
        duration > 0.0 && period > 0.0,
        "segment: bad duration/period"
    );
    let steps = (duration / period).round().max(1.0) as usize;
    let mut out = Vec::with_capacity(steps);
    for k in 1..=steps {
        let s = min_jerk(k as f64 / steps as f64);
        out.push(from.iter().zip(to).map(|(a, b)| a + s * (b - a)).collect());
    }
    out
}

/// Clamps the per-command joint motion to ±`offset` — the joystick's
/// "command moving offset" (0.04 rad in the paper's Niryo configuration).
///
/// Returns the rate-limited stream starting from `initial`.
///
/// # Panics
/// Panics if `offset` is not positive or joint counts mismatch.
pub fn rate_limit(initial: &[f64], targets: &[Vec<f64>], offset: f64) -> Vec<Vec<f64>> {
    assert!(offset > 0.0, "rate_limit: offset must be positive");
    let mut current = initial.to_vec();
    let mut out = Vec::with_capacity(targets.len());
    for target in targets {
        assert_eq!(
            target.len(),
            current.len(),
            "rate_limit: joint count mismatch"
        );
        for (c, t) in current.iter_mut().zip(target) {
            *c += (t - *c).clamp(-offset, offset);
        }
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_jerk_boundary_conditions() {
        assert_eq!(min_jerk(0.0), 0.0);
        assert!((min_jerk(1.0) - 1.0).abs() < 1e-12);
        assert!((min_jerk(0.5) - 0.5).abs() < 1e-12, "profile is symmetric");
    }

    #[test]
    fn min_jerk_monotone() {
        let mut prev = 0.0;
        for k in 1..=100 {
            let v = min_jerk(k as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn min_jerk_clamps_outside_range() {
        assert_eq!(min_jerk(-1.0), 0.0);
        assert_eq!(min_jerk(2.0), 1.0);
    }

    #[test]
    fn min_jerk_zero_endpoint_velocity() {
        // Numerical derivative near the ends must be tiny compared to the
        // mid-motion peak (15/8 for min-jerk).
        let h = 1e-4;
        let v_start = (min_jerk(h) - min_jerk(0.0)) / h;
        let v_mid = (min_jerk(0.5 + h) - min_jerk(0.5 - h)) / (2.0 * h);
        assert!(
            v_start < 0.01 * v_mid,
            "start velocity {v_start}, mid {v_mid}"
        );
    }

    #[test]
    fn segment_reaches_target_exactly() {
        let seg = min_jerk_segment(&[0.0, 1.0], &[1.0, -1.0], 1.0, 0.02);
        assert_eq!(seg.len(), 50);
        let last = seg.last().unwrap();
        assert!((last[0] - 1.0).abs() < 1e-12 && (last[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_short_duration_has_one_step() {
        let seg = min_jerk_segment(&[0.0], &[1.0], 0.001, 0.02);
        assert_eq!(seg.len(), 1);
        assert!((seg[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_limit_bounds_every_step() {
        let targets = vec![vec![1.0, -1.0], vec![1.0, -1.0], vec![1.0, -1.0]];
        let out = rate_limit(&[0.0, 0.0], &targets, 0.04);
        let mut prev = vec![0.0, 0.0];
        for cmd in &out {
            for (c, p) in cmd.iter().zip(&prev) {
                assert!((c - p).abs() <= 0.04 + 1e-12);
            }
            prev = cmd.clone();
        }
        // After 3 ticks each joint moved exactly 0.12 toward the target.
        assert!((out[2][0] - 0.12).abs() < 1e-12);
        assert!((out[2][1] + 0.12).abs() < 1e-12);
    }

    #[test]
    fn rate_limit_converges_when_target_is_static() {
        let targets = vec![vec![0.1]; 10];
        let out = rate_limit(&[0.0], &targets, 0.04);
        assert!((out.last().unwrap()[0] - 0.1).abs() < 1e-12);
    }
}
