//! The pick-and-place task script.
//!
//! One repetition of the paper's task: start at a rest pose, reach above
//! the pick location, descend, grasp (dwell), lift, transfer to the place
//! location, descend, release (dwell), and return. All poses are
//! joint-space waypoints chosen inside the Niryo One's limits; the paper's
//! Fig. 6 shows the resulting distance-from-origin profile oscillating
//! between ~200 and ~500 mm, which this script reproduces.

use serde::{Deserialize, Serialize};

/// One waypoint of a task script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Target joint vector (rad).
    pub joints: Vec<f64>,
    /// Nominal time to move here from the previous waypoint (seconds).
    pub move_duration: f64,
    /// Dwell at the waypoint after arrival (seconds) — grasping,
    /// releasing, or the operator pausing to aim.
    pub dwell: f64,
}

/// The joint-space script of one pick-and-place repetition for a 6-DOF
/// Niryo-One-like arm. Total nominal duration ≈ 14.4 s (≈ 720 commands at
/// 50 Hz), so ~100 repetitions give a dataset of the paper's scale.
pub fn pick_and_place_cycle() -> Vec<Waypoint> {
    // Joint layout: [base yaw, shoulder, elbow, forearm roll, wrist pitch,
    // wrist roll]. Poses stay well within the niryo_one() limits and span
    // the ~230–530 mm distance-from-origin band of Fig. 6: the rest pose
    // is tucked near the base, picks/places reach out.
    let rest = rest_pose();
    let above_pick = vec![0.9, -0.1, 0.1, 0.0, -0.3, 0.0]; // ≈ 497 mm
    let at_pick = vec![0.9, 0.3, 0.3, 0.0, -0.75, 0.0]; // ≈ 528 mm
    let lifted = vec![0.9, -0.25, -0.35, 0.0, 0.1, 0.0]; // ≈ 409 mm
    let above_place = vec![-0.8, -0.1, 0.1, 0.0, -0.3, 0.4]; // ≈ 497 mm
    let at_place = vec![-0.8, 0.3, 0.3, 0.0, -0.75, 0.4]; // ≈ 528 mm
    let retreat = vec![-0.8, -0.35, -0.8, 0.0, 0.3, 0.0]; // ≈ 293 mm
    vec![
        Waypoint {
            joints: above_pick,
            move_duration: 2.2,
            dwell: 0.3,
        },
        Waypoint {
            joints: at_pick,
            move_duration: 1.4,
            dwell: 0.8,
        }, // grasp
        Waypoint {
            joints: lifted,
            move_duration: 1.2,
            dwell: 0.2,
        },
        Waypoint {
            joints: above_place,
            move_duration: 2.6,
            dwell: 0.3,
        },
        Waypoint {
            joints: at_place,
            move_duration: 1.4,
            dwell: 0.8,
        }, // release
        Waypoint {
            joints: retreat,
            move_duration: 1.0,
            dwell: 0.2,
        },
        Waypoint {
            joints: rest,
            move_duration: 1.6,
            dwell: 0.4,
        },
    ]
}

/// The rest pose the cycle starts from (and returns to): tucked near the
/// base (≈ 230 mm from origin).
pub fn rest_pose() -> Vec<f64> {
    vec![0.0, -0.35, -1.05, 0.0, 0.35, 0.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_robot::niryo_one;

    #[test]
    fn cycle_is_closed_loop() {
        let cycle = pick_and_place_cycle();
        assert_eq!(cycle.last().unwrap().joints, rest_pose());
    }

    #[test]
    fn all_waypoints_within_niryo_limits() {
        let model = niryo_one();
        assert!(model.within_limits(&rest_pose()));
        for (i, wp) in pick_and_place_cycle().iter().enumerate() {
            assert!(
                model.within_limits(&wp.joints),
                "waypoint {i} violates limits: {:?}",
                wp.joints
            );
        }
    }

    #[test]
    fn durations_are_positive_and_cycle_time_realistic() {
        let cycle = pick_and_place_cycle();
        let total: f64 = cycle.iter().map(|w| w.move_duration + w.dwell).sum();
        for wp in &cycle {
            assert!(wp.move_duration > 0.0 && wp.dwell >= 0.0);
        }
        // 10–20 s per repetition: consistent with 100 reps ≈ one hour of
        // data at 50 Hz (the paper's H = 187 109 commands ≈ 62 min).
        assert!((10.0..20.0).contains(&total), "cycle takes {total}s");
    }

    #[test]
    fn workspace_excursion_matches_fig6_scale() {
        // Fig. 6 plots distance-from-origin between roughly 200 and
        // 500 mm; the script's waypoints must span a comparable band.
        let model = niryo_one();
        let mut dists: Vec<f64> = pick_and_place_cycle()
            .iter()
            .map(|w| model.chain.distance_from_origin_mm(&w.joints))
            .collect();
        dists.push(model.chain.distance_from_origin_mm(&rest_pose()));
        let min = dists.iter().cloned().fold(f64::MAX, f64::min);
        let max = dists.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min > 100.0, "closest pose {min} mm");
        assert!(max < 700.0, "farthest pose {max} mm");
        assert!(max - min > 50.0, "cycle spans only {} mm", max - min);
    }
}
