//! Teleoperation workload generator for the FoReCo reproduction.
//!
//! The paper's datasets are private: two human operators (one experienced,
//! one inexperienced) drove a Niryo One through ~100 pick-and-place
//! repetitions with a joystick at 50 Hz, producing H = 187 109 joint-state
//! commands each (§VI-A, Fig. 6). This crate synthesises the equivalent
//! workload (substitution documented in DESIGN.md §3):
//!
//! - [`pick_and_place_cycle`]: the joint-space waypoint script of one
//!   pick-and-place repetition (approach, descend, grasp, transfer,
//!   release, return);
//! - [`trajectory`]: minimum-jerk interpolation — the standard model of
//!   point-to-point human arm motion — sampled every `Ω`;
//! - [`Operator`]: a skill model layering hand tremor, speed variation,
//!   overshoot-and-correct and pauses on top of the script. `Experienced`
//!   operators produce clean cycles (training data), `Inexperienced` ones
//!   noisy cycles (test data) — *"tightly related but not exactly the
//!   same as the training data"*, exactly the paper's split;
//! - joystick **moving-offset quantisation**: consecutive commands never
//!   move a joint more than 0.04 rad, the Niryo configuration the paper
//!   states;
//! - [`Dataset`]: the recorded command streams with train/test splitting,
//!   history-window extraction for forecaster training, and serde
//!   round-tripping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod operator;
mod task;
pub mod trajectory;

pub use dataset::{Dataset, WindowIter};
pub use operator::{defined_trajectory, Operator, OperatorParams, Skill};
pub use task::{pick_and_place_cycle, Waypoint};
