//! Human-operator skill models.
//!
//! The paper trains on an **experienced** operator and tests on an
//! **inexperienced** one so the model generalises to "tightly related but
//! not exactly the same" data (§VI-A). An operator here is the waypoint
//! script of [`crate::pick_and_place_cycle`] executed through a human
//! noise model:
//!
//! - **speed variation**: each segment's duration is scaled by a random
//!   factor (inexperienced operators are slower and less consistent);
//! - **tremor**: low-pass-filtered joint noise on top of the min-jerk
//!   path (joystick hand tremor);
//! - **overshoot-and-correct**: with some probability a reach overshoots
//!   its waypoint and corrects back — the classic novice signature;
//! - **pauses**: occasional hold-everything hesitations;
//! - **moving-offset quantisation**: the resulting stream is rate-limited
//!   to 0.04 rad per command per joint like the real joystick interface.

use crate::task::Waypoint;
use crate::trajectory::{min_jerk_segment, rate_limit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Operator skill level (selects an [`OperatorParams`] preset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Skill {
    /// Smooth, consistent, fast — the training-data operator.
    Experienced,
    /// Jittery, slower, overshoots — the test-data operator.
    Inexperienced,
}

/// Noise-model parameters of a human operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorParams {
    /// Std-dev of the per-segment duration scale (1.0 = nominal speed).
    pub speed_jitter: f64,
    /// Tremor amplitude (rad, std-dev of the filtered noise).
    pub tremor: f64,
    /// Low-pass coefficient of the tremor filter in `(0, 1)`; smaller =
    /// smoother tremor.
    pub tremor_smoothing: f64,
    /// Probability a segment overshoots its waypoint.
    pub overshoot_prob: f64,
    /// Overshoot magnitude as a fraction of the segment length.
    pub overshoot_frac: f64,
    /// Per-waypoint probability of an extra hesitation pause.
    pub pause_prob: f64,
    /// Maximum hesitation length (seconds).
    pub pause_max: f64,
    /// Joystick moving offset (rad per command per joint).
    pub moving_offset: f64,
}

impl OperatorParams {
    /// Preset for a [`Skill`].
    pub fn preset(skill: Skill) -> Self {
        match skill {
            Skill::Experienced => Self {
                speed_jitter: 0.05,
                tremor: 0.002,
                tremor_smoothing: 0.2,
                overshoot_prob: 0.05,
                overshoot_frac: 0.04,
                pause_prob: 0.05,
                pause_max: 0.3,
                moving_offset: 0.04,
            },
            Skill::Inexperienced => Self {
                speed_jitter: 0.20,
                tremor: 0.008,
                tremor_smoothing: 0.3,
                overshoot_prob: 0.35,
                overshoot_frac: 0.12,
                pause_prob: 0.25,
                pause_max: 1.2,
                moving_offset: 0.04,
            },
        }
    }
}

/// A seeded operator executing task cycles.
pub struct Operator {
    params: OperatorParams,
    rng: StdRng,
    period: f64,
}

impl Operator {
    /// Creates an operator with a skill preset.
    pub fn new(skill: Skill, period: f64, seed: u64) -> Self {
        Self::with_params(OperatorParams::preset(skill), period, seed)
    }

    /// Creates an operator with explicit noise parameters.
    ///
    /// # Panics
    /// Panics on a non-positive period or moving offset.
    pub fn with_params(params: OperatorParams, period: f64, seed: u64) -> Self {
        assert!(period > 0.0, "operator: period must be positive");
        assert!(
            params.moving_offset > 0.0,
            "operator: moving offset must be positive"
        );
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
            period,
        }
    }

    /// Command period.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Executes one cycle of `script` starting from `start`, returning the
    /// quantised command stream (one command per `period`).
    pub fn drive_cycle(&mut self, start: &[f64], script: &[Waypoint]) -> Vec<Vec<f64>> {
        let p = self.params;
        let mut targets: Vec<Vec<f64>> = Vec::new();
        let mut from = start.to_vec();
        for wp in script {
            // Speed variation (clamped: a segment cannot run backwards).
            let scale = (1.0 + p.speed_jitter * self.standard_normal()).max(0.3);
            let duration = wp.move_duration * scale;
            // Overshoot-and-correct.
            if self.rng.gen::<f64>() < p.overshoot_prob {
                let over: Vec<f64> = from
                    .iter()
                    .zip(&wp.joints)
                    .map(|(a, b)| b + p.overshoot_frac * (b - a))
                    .collect();
                targets.extend(min_jerk_segment(&from, &over, duration * 0.8, self.period));
                targets.extend(min_jerk_segment(
                    &over,
                    &wp.joints,
                    (duration * 0.35).max(self.period),
                    self.period,
                ));
            } else {
                targets.extend(min_jerk_segment(&from, &wp.joints, duration, self.period));
            }
            // Dwell plus a possible hesitation.
            let mut dwell = wp.dwell;
            if self.rng.gen::<f64>() < p.pause_prob {
                dwell += self.rng.gen::<f64>() * p.pause_max;
            }
            let dwell_ticks = (dwell / self.period).round() as usize;
            for _ in 0..dwell_ticks {
                targets.push(wp.joints.clone());
            }
            from = wp.joints.clone();
        }
        // Tremor: AR(1)-filtered Gaussian noise per joint.
        let dof = start.len();
        let mut tremor_state = vec![0.0; dof];
        for cmd in &mut targets {
            for (c, ts) in cmd.iter_mut().zip(&mut tremor_state) {
                let innovation = p.tremor * self.standard_normal();
                *ts = (1.0 - p.tremor_smoothing) * *ts + p.tremor_smoothing * innovation;
                *c += *ts;
            }
        }
        // Joystick quantisation.
        rate_limit(start, &targets, p.moving_offset)
    }

    /// Box–Muller standard normal draw.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// The noiseless reference execution of a script — the paper's "defined
/// trajectory" line in Figs. 9 and 10.
pub fn defined_trajectory(
    start: &[f64],
    script: &[Waypoint],
    period: f64,
    moving_offset: f64,
) -> Vec<Vec<f64>> {
    let mut targets: Vec<Vec<f64>> = Vec::new();
    let mut from = start.to_vec();
    for wp in script {
        targets.extend(min_jerk_segment(
            &from,
            &wp.joints,
            wp.move_duration,
            period,
        ));
        let dwell_ticks = (wp.dwell / period).round() as usize;
        for _ in 0..dwell_ticks {
            targets.push(wp.joints.clone());
        }
        from = wp.joints.clone();
    }
    rate_limit(start, &targets, moving_offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{pick_and_place_cycle, rest_pose};

    fn cycle(skill: Skill, seed: u64) -> Vec<Vec<f64>> {
        let mut op = Operator::new(skill, 0.02, seed);
        op.drive_cycle(&rest_pose(), &pick_and_place_cycle())
    }

    #[test]
    fn produces_plausible_stream() {
        let cmds = cycle(Skill::Experienced, 1);
        // ≈ 14.4 s at 50 Hz → several hundred commands.
        assert!(cmds.len() > 400, "only {} commands", cmds.len());
        assert!(cmds.iter().all(|c| c.len() == 6));
    }

    #[test]
    fn respects_moving_offset() {
        let cmds = cycle(Skill::Inexperienced, 2);
        let mut prev = rest_pose();
        for cmd in &cmds {
            for (c, p) in cmd.iter().zip(&prev) {
                assert!(
                    (c - p).abs() <= 0.04 + 1e-12,
                    "step {} too large",
                    (c - p).abs()
                );
            }
            prev = cmd.clone();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(cycle(Skill::Experienced, 7), cycle(Skill::Experienced, 7));
        assert_ne!(cycle(Skill::Experienced, 7), cycle(Skill::Experienced, 8));
    }

    #[test]
    fn inexperienced_is_noisier_than_experienced() {
        // Compare deviation from the defined trajectory over one cycle.
        let defined = defined_trajectory(&rest_pose(), &pick_and_place_cycle(), 0.02, 0.04);
        let dev = |cmds: &[Vec<f64>]| -> f64 {
            let n = cmds.len().min(defined.len());
            let mut acc = 0.0;
            for i in 0..n {
                for (a, b) in cmds[i].iter().zip(&defined[i]) {
                    acc += (a - b) * (a - b);
                }
            }
            (acc / n as f64).sqrt()
        };
        // Average across several seeds to avoid a fluke.
        let mean_dev =
            |skill: Skill| -> f64 { (0..5).map(|s| dev(&cycle(skill, s))).sum::<f64>() / 5.0 };
        let exp = mean_dev(Skill::Experienced);
        let inexp = mean_dev(Skill::Inexperienced);
        assert!(
            inexp > 2.0 * exp,
            "inexperienced dev {inexp} not clearly above experienced {exp}"
        );
    }

    #[test]
    fn cycle_ends_near_rest_pose() {
        let cmds = cycle(Skill::Experienced, 3);
        let last = cmds.last().unwrap();
        for (a, b) in last.iter().zip(&rest_pose()) {
            assert!((a - b).abs() < 0.05, "ended {a} vs rest {b}");
        }
    }

    #[test]
    fn defined_trajectory_is_deterministic_and_clean() {
        let a = defined_trajectory(&rest_pose(), &pick_and_place_cycle(), 0.02, 0.04);
        let b = defined_trajectory(&rest_pose(), &pick_and_place_cycle(), 0.02, 0.04);
        assert_eq!(a, b);
        // It must reach every waypoint exactly (rate-limit converges
        // during dwells).
        let last = a.last().unwrap();
        for (x, r) in last.iter().zip(&rest_pose()) {
            assert!((x - r).abs() < 1e-9);
        }
    }
}
