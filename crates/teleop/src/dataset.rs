//! Command datasets: recording, splitting, windowing.
//!
//! FoReCo keeps "a history of H commands, and … uses αH of them for
//! training, and βH for testing; with α + β = 1" (§IV-A). A [`Dataset`]
//! is that history: a flat stream of joint commands at a fixed period,
//! with cycle boundaries retained so analyses can reason per repetition.

use crate::operator::{Operator, Skill};
use crate::task::{pick_and_place_cycle, rest_pose};
use serde::{Deserialize, Serialize};

/// A recorded command stream.
///
/// # Example
///
/// ```
/// use foreco_teleop::{Dataset, Skill};
///
/// let ds = Dataset::record(Skill::Experienced, 1, 0.02, 7);
/// assert_eq!(ds.dof(), 6);
/// let (train, test) = ds.split(0.8);
/// assert_eq!(train.len() + test.len(), ds.len());
/// // Forecaster training windows: (R history commands, next command).
/// let (hist, _next) = ds.windows(5).next().unwrap();
/// assert_eq!(hist.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Command period `Ω` in seconds.
    pub period: f64,
    /// The commands, oldest first.
    pub commands: Vec<Vec<f64>>,
    /// Start index of each recorded cycle.
    pub cycle_starts: Vec<usize>,
}

impl Dataset {
    /// Records `cycles` pick-and-place repetitions by an operator of the
    /// given skill. Each cycle uses a distinct sub-seed, so repetitions
    /// vary like a human's do.
    ///
    /// # Panics
    /// Panics if `cycles == 0`.
    pub fn record(skill: Skill, cycles: usize, period: f64, seed: u64) -> Self {
        assert!(cycles > 0, "dataset: need at least one cycle");
        let script = pick_and_place_cycle();
        let mut commands = Vec::new();
        let mut cycle_starts = Vec::with_capacity(cycles);
        let mut current = rest_pose();
        for c in 0..cycles {
            cycle_starts.push(commands.len());
            let mut op = Operator::new(skill, period, seed.wrapping_add(c as u64));
            let cycle = op.drive_cycle(&current, &script);
            current = cycle.last().cloned().unwrap_or_else(rest_pose);
            commands.extend(cycle);
        }
        Self {
            period,
            commands,
            cycle_starts,
        }
    }

    /// Number of commands `H`.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Command dimensionality `d` (0 for an empty dataset).
    pub fn dof(&self) -> usize {
        self.commands.first().map_or(0, Vec::len)
    }

    /// Moves the command rows out without copying them — the zero-copy
    /// path into shared storage (`foreco-store` files the rows under
    /// their content address; `insert_trace_owned` takes them as-is).
    pub fn into_commands(self) -> Vec<Vec<f64>> {
        self.commands
    }

    /// Splits into `(train, test)` at fraction `alpha` of the length —
    /// the paper's `αH` / `βH` split.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn split(&self, alpha: f64) -> (Dataset, Dataset) {
        assert!(alpha > 0.0 && alpha < 1.0, "split: alpha must be in (0,1)");
        let cut = ((self.len() as f64) * alpha).round() as usize;
        let train = Dataset {
            period: self.period,
            commands: self.commands[..cut].to_vec(),
            cycle_starts: self
                .cycle_starts
                .iter()
                .cloned()
                .filter(|&s| s < cut)
                .collect(),
        };
        let test = Dataset {
            period: self.period,
            commands: self.commands[cut..].to_vec(),
            cycle_starts: self
                .cycle_starts
                .iter()
                .filter(|&&s| s >= cut)
                .map(|&s| s - cut)
                .collect(),
        };
        (train, test)
    }

    /// The first `commands` commands as a dataset of their own — the
    /// short-trace helper for live replay (a socket client streaming a
    /// bounded session, a benchmark bounding its wall time). The full
    /// dataset is returned when `commands` exceeds the length.
    pub fn head(&self, commands: usize) -> Dataset {
        let cut = commands.min(self.len());
        Dataset {
            period: self.period,
            commands: self.commands[..cut].to_vec(),
            cycle_starts: self
                .cycle_starts
                .iter()
                .cloned()
                .filter(|&s| s < cut)
                .collect(),
        }
    }

    /// Keeps every `factor`-th command (the pipeline's down-sampling
    /// stage, Table I).
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn downsample(&self, factor: usize) -> Dataset {
        assert!(factor >= 1, "downsample: factor must be ≥ 1");
        Dataset {
            period: self.period * factor as f64,
            commands: self.commands.iter().step_by(factor).cloned().collect(),
            cycle_starts: self.cycle_starts.iter().map(|s| s / factor).collect(),
        }
    }

    /// Iterator over `(history of R commands, next command)` windows —
    /// the forecaster training samples.
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn windows(&self, r: usize) -> WindowIter<'_> {
        assert!(r >= 1, "windows: history length must be ≥ 1");
        WindowIter {
            data: &self.commands,
            r,
            pos: r,
        }
    }
}

/// Iterator produced by [`Dataset::windows`].
pub struct WindowIter<'a> {
    data: &'a [Vec<f64>],
    r: usize,
    pos: usize,
}

impl<'a> Iterator for WindowIter<'a> {
    /// `(history, next)`: `history` is the `R` commands before `next`.
    type Item = (&'a [Vec<f64>], &'a Vec<f64>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let hist = &self.data[self.pos - self.r..self.pos];
        let target = &self.data[self.pos];
        self.pos += 1;
        Some((hist, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::record(Skill::Experienced, 2, 0.02, 42)
    }

    #[test]
    fn record_scale_matches_cycle_time() {
        let d = small();
        // Two ≈14 s cycles at 50 Hz.
        assert!(d.len() > 1000, "{} commands", d.len());
        assert_eq!(d.cycle_starts.len(), 2);
        assert_eq!(d.dof(), 6);
    }

    #[test]
    fn cycles_vary_but_resemble_each_other() {
        let d = small();
        let c0 = &d.commands[d.cycle_starts[0]..d.cycle_starts[1]];
        let c1 = &d.commands[d.cycle_starts[1]..];
        assert_ne!(
            c0,
            &c1[..c0.len().min(c1.len())],
            "cycles identical — no human variation"
        );
        // Same general magnitude: both visit the same workspace.
        let max0 = c0
            .iter()
            .flat_map(|c| c.iter())
            .cloned()
            .fold(f64::MIN, f64::max);
        let max1 = c1
            .iter()
            .flat_map(|c| c.iter())
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!((max0 - max1).abs() < 0.2);
    }

    #[test]
    fn split_preserves_everything() {
        let d = small();
        let (train, test) = d.split(0.8);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.commands[0], d.commands[0]);
        assert_eq!(test.commands.last(), d.commands.last());
        let cut = train.len();
        assert_eq!(test.commands[0], d.commands[cut]);
    }

    #[test]
    fn downsample_halves() {
        let d = small();
        let h = d.downsample(2);
        assert_eq!(h.len(), d.len().div_ceil(2));
        assert!((h.period - 0.04).abs() < 1e-12);
        assert_eq!(h.commands[1], d.commands[2]);
    }

    #[test]
    fn windows_shapes_and_alignment() {
        let d = Dataset {
            period: 0.02,
            commands: (0..10).map(|i| vec![i as f64]).collect(),
            cycle_starts: vec![0],
        };
        let wins: Vec<_> = d.windows(3).collect();
        assert_eq!(wins.len(), 7);
        let (hist, next) = &wins[0];
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0][0], 0.0);
        assert_eq!(hist[2][0], 2.0);
        assert_eq!(next[0], 3.0);
        let (hist, next) = wins.last().unwrap();
        assert_eq!(hist[2][0], 8.0);
        assert_eq!(next[0], 9.0);
    }

    #[test]
    fn windows_empty_when_too_short() {
        let d = Dataset {
            period: 0.02,
            commands: vec![vec![0.0]; 3],
            cycle_starts: vec![0],
        };
        assert_eq!(d.windows(5).count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let d = Dataset {
            period: 0.02,
            commands: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            cycle_starts: vec![0],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn determinism() {
        assert_eq!(small(), small());
    }
}
