//! Property-based tests for the teleoperation workload generator.

use foreco_teleop::trajectory::{min_jerk, min_jerk_segment, rate_limit};
use foreco_teleop::{Dataset, Operator, Skill};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The min-jerk profile is monotone and within [0, 1] everywhere.
    #[test]
    fn min_jerk_bounded_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(min_jerk(lo) <= min_jerk(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&min_jerk(a)));
    }

    /// A segment always ends exactly at its target, for any duration.
    #[test]
    fn segment_hits_target(
        from in proptest::collection::vec(-2.0f64..2.0, 3),
        to in proptest::collection::vec(-2.0f64..2.0, 3),
        duration in 0.05f64..5.0,
    ) {
        let seg = min_jerk_segment(&from, &to, duration, 0.02);
        let last = seg.last().unwrap();
        for (x, t) in last.iter().zip(&to) {
            prop_assert!((x - t).abs() < 1e-9);
        }
    }

    /// Rate limiting never violates the offset and is the identity for
    /// streams that already satisfy it.
    #[test]
    fn rate_limit_invariants(
        targets in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 2), 1..50),
        offset in 0.01f64..0.5,
    ) {
        let start = vec![0.0, 0.0];
        let out = rate_limit(&start, &targets, offset);
        let mut prev = start.clone();
        for cmd in &out {
            for (c, p) in cmd.iter().zip(&prev) {
                prop_assert!((c - p).abs() <= offset + 1e-12);
            }
            prev = cmd.clone();
        }
        // Identity check: feeding the limited stream back through changes
        // nothing.
        let again = rate_limit(&start, &out, offset);
        for (a, b) in again.iter().zip(&out) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }

    /// Operator streams always respect the joystick moving offset.
    #[test]
    fn operator_streams_respect_offset(seed in 0u64..50) {
        let start = foreco_teleop::pick_and_place_cycle()[0].joints.clone();
        let mut op = Operator::new(Skill::Inexperienced, 0.02, seed);
        let cmds = op.drive_cycle(&start, &foreco_teleop::pick_and_place_cycle());
        let mut prev = start;
        for cmd in &cmds {
            for (c, p) in cmd.iter().zip(&prev) {
                prop_assert!((c - p).abs() <= 0.04 + 1e-12);
            }
            prev = cmd.clone();
        }
    }

    /// Splits partition the dataset for any alpha.
    #[test]
    fn split_partitions(alpha in 0.05f64..0.95) {
        let ds = Dataset::record(Skill::Experienced, 1, 0.02, 3);
        let (train, test) = ds.split(alpha);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        prop_assert!(!train.is_empty());
    }

    /// Window iteration yields exactly len − R windows with consistent
    /// alignment for any R.
    #[test]
    fn windows_count_and_alignment(r in 1usize..30) {
        let ds = Dataset {
            period: 0.02,
            commands: (0..100).map(|i| vec![i as f64]).collect(),
            cycle_starts: vec![0],
        };
        let wins: Vec<_> = ds.windows(r).collect();
        prop_assert_eq!(wins.len(), 100 - r);
        for (k, (hist, next)) in wins.iter().enumerate() {
            prop_assert_eq!(hist.len(), r);
            prop_assert_eq!(hist[0][0] as usize, k);
            prop_assert_eq!(next[0] as usize, k + r);
        }
    }
}
