//! Per-shard batched forecasting sweep: SoA lanes across co-shard
//! sessions.
//!
//! Before each scheduling pass's mutable session sweep, the shard runs
//! an immutable *gather* pass over the same sessions in the same order:
//! every session whose next tick is provably a forecast-covered miss
//! ([`crate::Session::batch_window`]) contributes its history window to
//! the [`BatchLane`] keyed by its shared forecaster. One
//! [`BatchLane::run`] per lane then computes every member's raw
//! forecast row — a single virtual dispatch and one contiguous memory
//! walk where the scalar path would pay ~one dispatch per session —
//! and the sweep hands each session its row through
//! [`crate::Session::advance_batched`].
//!
//! **Lane membership is re-derived from scratch every pass.** There is
//! no persistent registration to maintain across park/wake, migrate,
//! or adopt: a session is in a lane on a given pass iff its peek
//! qualifies on that pass, so membership is automatically correct
//! under any churn, and any ambiguity (pending late patch, warmup,
//! horizon hold, gated source) simply degrades that session to the
//! bit-identical scalar path for the pass.

use crate::spec::SessionId;
use foreco_forecast::{BatchLane, ForecastScratch, Forecaster, HistoryView};
use std::collections::HashMap;
use std::sync::Arc;

/// Lane key: the shared forecaster's pointer identity. Dims and window
/// length are functions of the instance, so identity alone groups
/// correctly — and two independently trained models never share a lane
/// even when their parameters coincide.
type LaneKey = usize;

fn lane_key(model: &Arc<dyn Forecaster>) -> LaneKey {
    Arc::as_ptr(model) as *const () as usize
}

/// The per-shard batching planner: lanes plus this pass's membership
/// plan. All buffers are retained across passes — steady-state gathers
/// and sweeps allocate nothing once the fleet's high-water lane shapes
/// have been seen.
pub(crate) struct BatchPlanner {
    lanes: Vec<BatchLane>,
    by_key: HashMap<LaneKey, usize>,
    /// `(session, lane, member)` in gather order — the same ascending
    /// session order the sweep visits, so consumption is a cursor walk.
    plan: Vec<(SessionId, usize, usize)>,
    cursor: usize,
    scratch: ForecastScratch,
}

impl BatchPlanner {
    pub(crate) fn new() -> Self {
        Self {
            lanes: Vec::new(),
            by_key: HashMap::new(),
            plan: Vec::new(),
            cursor: 0,
            scratch: ForecastScratch::new(),
        }
    }

    /// Starts a new pass: clears membership, keeps lane buffers.
    pub(crate) fn begin_pass(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.plan.truncate(0);
        self.cursor = 0;
    }

    /// Gathers one qualifying session's window into its lane.
    pub(crate) fn gather(
        &mut self,
        id: SessionId,
        model: &Arc<dyn Forecaster>,
        history: &HistoryView<'_>,
    ) {
        let key = lane_key(model);
        let lane = match self.by_key.get(&key) {
            Some(&i) => i,
            None => {
                self.lanes.push(BatchLane::new(Arc::clone(model)));
                self.by_key.insert(key, self.lanes.len() - 1);
                self.lanes.len() - 1
            }
        };
        let member = self.lanes[lane].push_window(history);
        self.plan.push((id, lane, member));
    }

    /// Runs every non-empty lane's batched forecast.
    pub(crate) fn run(&mut self) {
        for lane in &mut self.lanes {
            lane.run(&mut self.scratch);
        }
    }

    /// The prepared forecast row for `id`, when this pass's plan has
    /// one. The sweep visits sessions in gather order, so this is an
    /// O(1) cursor step; out-of-order lookups (a session completed and
    /// removed mid-pass shifts nothing — the plan is immutable) still
    /// resolve by skipping past stale entries.
    pub(crate) fn take(&mut self, id: SessionId) -> Option<&[f64]> {
        while let Some(&(planned, lane, member)) = self.plan.get(self.cursor) {
            match planned == id {
                true => {
                    self.cursor += 1;
                    return Some(self.lanes[lane].result(member));
                }
                false if planned < id => self.cursor += 1,
                false => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_forecast::MovingAverage;

    #[test]
    fn plan_is_cursor_consumable_across_lanes() {
        let ma2: Arc<dyn Forecaster> = Arc::new(MovingAverage::new(2, 1));
        let ma3: Arc<dyn Forecaster> = Arc::new(MovingAverage::new(3, 1));
        let mut planner = BatchPlanner::new();
        planner.begin_pass();
        let w2 = [1.0, 3.0];
        let w3 = [0.0, 3.0, 6.0];
        planner.gather(1, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.gather(4, &ma3, &HistoryView::contiguous(&w3, 1));
        planner.gather(9, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.run();
        assert_eq!(planner.take(0), None);
        assert_eq!(planner.take(1), Some(&[2.0][..]));
        assert_eq!(planner.take(2), None);
        assert_eq!(planner.take(4), Some(&[3.0][..]));
        assert_eq!(planner.take(9), Some(&[2.0][..]));
        assert_eq!(planner.take(10), None);

        // Next pass reuses lanes with fresh membership.
        planner.begin_pass();
        planner.gather(7, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.run();
        assert_eq!(planner.take(7), Some(&[2.0][..]));
    }

    #[test]
    fn same_parameters_different_registrations_stay_separate() {
        let a: Arc<dyn Forecaster> = Arc::new(MovingAverage::new(2, 1));
        let b: Arc<dyn Forecaster> = Arc::new(MovingAverage::new(2, 1));
        let mut planner = BatchPlanner::new();
        planner.begin_pass();
        let w = [1.0, 3.0];
        planner.gather(1, &a, &HistoryView::contiguous(&w, 1));
        planner.gather(2, &b, &HistoryView::contiguous(&w, 1));
        assert_eq!(planner.lanes.len(), 2, "identity keys, not parameters");
    }
}
