//! Per-shard batched forecasting sweep: SoA lanes across co-shard
//! sessions.
//!
//! Before each scheduling pass's mutable session sweep, the shard runs
//! an immutable *gather* pass over the same sessions in the same order:
//! every session whose next tick is provably a forecast-covered miss
//! ([`crate::Session::batch_window`]) contributes its history window to
//! the [`BatchLane`] keyed by its shared forecaster. One
//! [`BatchLane::run`] per lane then computes every member's raw
//! forecast row — a single virtual dispatch and one contiguous memory
//! walk where the scalar path would pay ~one dispatch per session —
//! and the sweep hands each session its row through
//! [`crate::Session::advance_batched`].
//!
//! **Lane membership is re-derived from scratch every pass.** There is
//! no persistent registration to maintain across park/wake, migrate,
//! or adopt: a session is in a lane on a given pass iff its peek
//! qualifies on that pass, so membership is automatically correct
//! under any churn, and any ambiguity (pending late patch, warmup,
//! horizon hold, gated source) simply degrades that session to the
//! bit-identical scalar path for the pass.
//!
//! **Layout selection** follows [`plan_layout`]: per pass, each lane's
//! forecaster cost class and gathered width pick Scalar, member-major,
//! or slot-major. The Scalar verdict is enforced *at gather time* —
//! cheap families are never gathered, so their sessions keep the plain
//! scalar path and pay no window memcpy (the member-major experiment
//! measured batching as a net loss for them). A `ServiceConfig`
//! override can force one layout fleet-wide; the determinism suites
//! use it to pin that all three layouts move zero bits.

use crate::spec::{SessionId, SharedForecaster};
use foreco_forecast::{
    plan_layout, BatchLane, CostClass, ForecastScratch, Forecaster, HistoryView, LaneLayout,
};
use foreco_store::ObjectId;
use std::collections::HashMap;
use std::sync::Arc;

/// Lane key. Registered models key by their store **content address**:
/// stable across drops and re-registrations (no pointer-reuse ABA
/// between passes) and shared by wrappers that hold the same trained
/// weights in different allocations, which merges their lanes. Dims
/// and window length are functions of the model, so the key alone
/// groups correctly — and two independently trained models never share
/// a lane even when their parameters coincide (different content ⇒
/// different address; unregistered ⇒ distinct pointers).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum LaneKey {
    /// Content address of a store-registered model.
    Store(ObjectId),
    /// Pointer identity, the fallback for unregistered models.
    Ptr(usize),
}

fn lane_key(model: &SharedForecaster) -> LaneKey {
    match model.store_id() {
        Some(id) => LaneKey::Store(id),
        None => LaneKey::Ptr(Arc::as_ptr(&model.shared()) as *const () as usize),
    }
}

/// The per-shard batching planner: lanes plus this pass's membership
/// plan. All buffers are retained across passes — steady-state gathers
/// and sweeps allocate nothing once the fleet's high-water lane shapes
/// have been seen.
pub(crate) struct BatchPlanner {
    lanes: Vec<BatchLane>,
    by_key: HashMap<LaneKey, usize>,
    /// `(session, lane, member)` in gather order — the same ascending
    /// session order the sweep visits, so consumption is a cursor walk.
    plan: Vec<(SessionId, usize, usize)>,
    cursor: usize,
    scratch: ForecastScratch,
    /// `None`: adaptive per-lane [`plan_layout`] (the default).
    /// `Some(layout)`: every lane runs that layout, and cheap families
    /// are gathered too — the determinism suites' bit-identity pin.
    force_layout: Option<LaneLayout>,
}

impl BatchPlanner {
    pub(crate) fn new(force_layout: Option<LaneLayout>) -> Self {
        Self {
            lanes: Vec::new(),
            by_key: HashMap::new(),
            plan: Vec::new(),
            cursor: 0,
            scratch: ForecastScratch::new(),
            force_layout,
        }
    }

    /// Starts a new pass: clears membership, keeps lane buffers.
    pub(crate) fn begin_pass(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.plan.truncate(0);
        self.cursor = 0;
    }

    /// Gathers one qualifying session's window into its lane — unless
    /// the family's committed layout is Scalar (cheap kernels), in
    /// which case the session is left to its own scalar path and pays
    /// no gather at all.
    pub(crate) fn gather(
        &mut self,
        id: SessionId,
        model: &SharedForecaster,
        history: &HistoryView<'_>,
    ) {
        if self.force_layout.is_none() && model.cost_class() == CostClass::Cheap {
            return;
        }
        let key = lane_key(model);
        let lane = match self.by_key.get(&key) {
            Some(&i) => i,
            None => {
                self.lanes.push(BatchLane::new(model.shared()));
                self.by_key.insert(key, self.lanes.len() - 1);
                self.lanes.len() - 1
            }
        };
        let member = self.lanes[lane].push_window(history);
        self.plan.push((id, lane, member));
    }

    /// Runs every non-empty lane's batched forecast in the layout
    /// [`plan_layout`] picks for its cost class and gathered width (or
    /// the forced override).
    pub(crate) fn run(&mut self) {
        let force = self.force_layout;
        for lane in &mut self.lanes {
            let layout = force
                .unwrap_or_else(|| plan_layout(lane.forecaster().cost_class(), lane.members()));
            lane.run_layout(layout, &mut self.scratch);
        }
    }

    /// The prepared forecast row for `id`, when this pass's plan has
    /// one. The sweep visits sessions in gather order, so this is an
    /// O(1) cursor step; out-of-order lookups (a session completed and
    /// removed mid-pass shifts nothing — the plan is immutable) still
    /// resolve by skipping past stale entries.
    pub(crate) fn take(&mut self, id: SessionId) -> Option<&[f64]> {
        while let Some(&(planned, lane, member)) = self.plan.get(self.cursor) {
            match planned == id {
                true => {
                    self.cursor += 1;
                    return Some(self.lanes[lane].result(member));
                }
                false if planned < id => self.cursor += 1,
                false => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_forecast::MovingAverage;
    use foreco_store::Storage;

    #[test]
    fn plan_is_cursor_consumable_across_lanes() {
        let ma2 = SharedForecaster::new(MovingAverage::new(2, 1));
        let ma3 = SharedForecaster::new(MovingAverage::new(3, 1));
        // MA is a cheap family; force member-major so the planner
        // gathers it (the cursor plumbing under test is layout-blind).
        let mut planner = BatchPlanner::new(Some(LaneLayout::MemberMajor));
        planner.begin_pass();
        let w2 = [1.0, 3.0];
        let w3 = [0.0, 3.0, 6.0];
        planner.gather(1, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.gather(4, &ma3, &HistoryView::contiguous(&w3, 1));
        planner.gather(9, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.run();
        assert_eq!(planner.take(0), None);
        assert_eq!(planner.take(1), Some(&[2.0][..]));
        assert_eq!(planner.take(2), None);
        assert_eq!(planner.take(4), Some(&[3.0][..]));
        assert_eq!(planner.take(9), Some(&[2.0][..]));
        assert_eq!(planner.take(10), None);

        // Next pass reuses lanes with fresh membership.
        planner.begin_pass();
        planner.gather(7, &ma2, &HistoryView::contiguous(&w2, 1));
        planner.run();
        assert_eq!(planner.take(7), Some(&[2.0][..]));
    }

    #[test]
    fn same_parameters_different_registrations_stay_separate() {
        let a = SharedForecaster::new(MovingAverage::new(2, 1));
        let b = SharedForecaster::new(MovingAverage::new(2, 1));
        let mut planner = BatchPlanner::new(Some(LaneLayout::MemberMajor));
        planner.begin_pass();
        let w = [1.0, 3.0];
        planner.gather(1, &a, &HistoryView::contiguous(&w, 1));
        planner.gather(2, &b, &HistoryView::contiguous(&w, 1));
        assert_eq!(planner.lanes.len(), 2, "identity keys, not parameters");
    }

    #[test]
    fn cheap_families_are_never_gathered_under_the_adaptive_plan() {
        let ma = SharedForecaster::new(MovingAverage::new(2, 1));
        let mut planner = BatchPlanner::new(None);
        planner.begin_pass();
        let w = [1.0, 3.0];
        planner.gather(1, &ma, &HistoryView::contiguous(&w, 1));
        planner.run();
        assert!(planner.lanes.is_empty(), "cheap family must not gather");
        assert_eq!(planner.take(1), None, "session stays on its scalar path");
    }

    #[test]
    fn store_registered_models_merge_lanes_by_content() {
        let store = Storage::new();
        // Two independent registrations of bit-identical weights: the
        // store dedups them to one content address, so their sessions
        // share one lane even though the wrappers were built apart.
        let a = SharedForecaster::register(MovingAverage::new(2, 1), &store).unwrap();
        let b = SharedForecaster::register(MovingAverage::new(2, 1), &store).unwrap();
        assert_eq!(a.store_id(), b.store_id(), "content-addressed dedup");
        let mut planner = BatchPlanner::new(Some(LaneLayout::MemberMajor));
        planner.begin_pass();
        let w = [1.0, 3.0];
        planner.gather(1, &a, &HistoryView::contiguous(&w, 1));
        planner.gather(2, &b, &HistoryView::contiguous(&w, 1));
        assert_eq!(planner.lanes.len(), 1, "same content, same lane");
        planner.run();
        assert_eq!(planner.take(1), Some(&[2.0][..]));
        assert_eq!(planner.take(2), Some(&[2.0][..]));

        // An unregistered wrapper around different-parameter weights
        // still gets its own pointer-keyed lane next to the store lane.
        let c = SharedForecaster::new(MovingAverage::new(3, 1));
        planner.begin_pass();
        let w3 = [0.0, 3.0, 6.0];
        planner.gather(3, &a, &HistoryView::contiguous(&w, 1));
        planner.gather(4, &c, &HistoryView::contiguous(&w3, 1));
        assert_eq!(planner.lanes.len(), 2);
    }
}
