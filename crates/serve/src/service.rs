//! The service: a shard pool behind a cloneable handle.
//!
//! [`Service::spawn`] starts `shards` worker threads, each owning a
//! bounded control channel and a share of the sessions (placement by
//! [`shard_of`]). Callers hold a [`ServiceHandle`] to open, feed, and
//! close sessions, and drain [`SessionEvent`]s from the service to
//! observe them. [`Service::run_to_completion`] is the batch
//! convenience: open a set of scripted sessions, collect every report
//! into a [`MetricsRegistry`], shut down.
//!
//! With a [`BalancerConfig`] set, the service also runs a **balancer**:
//! a thread that periodically reads every shard's load counters
//! ([`ServiceHandle::shard_loads`]) and, when the runnable-session gap
//! between the most and least loaded shards crosses a threshold, orders
//! the overloaded shard to migrate live sessions to the underloaded one
//! (`SessionCommand::Rebalance`, riding the bit-invisible `Migrate`
//! mechanism — the routing table stays authoritative throughout). The
//! policy moves *runnable* sessions only: parked sessions cost nothing
//! where they are, so balancing chases active work, not session counts.

use crate::archive::FleetArchive;
use crate::clock::{Pacing, TICK_PERIOD};
use crate::metrics::{MetricsRegistry, ShardLoadSummary};
use crate::protocol::{FleetPart, ServiceError, SessionCommand, SessionEvent};
use crate::sched::{Scheduler, ShardLoad};
use crate::shard::{RoutingTable, ShardWorker};
use crate::snapshot::{SessionSnapshot, SourceState};
use crate::spec::{SessionId, SessionSpec};
use crate::telemetry::{FleetTelemetry, Telemetry};
use foreco_robot::{niryo_one, ArmModel};
use foreco_store::{trace_object_id, ObjectId, Storage, TraceHandle};
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What [`ServiceHandle::snapshot_fleet`] produced: the streaming-built
/// archive plus an honest account of every requested id that is *not*
/// in it — unknown ids (completed or never opened) and sessions whose
/// state cannot be exported. `archive.len() + missing.len() +
/// failed.len()` always equals the request count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshotReport {
    /// The assembled archive (traces deduped, parts in reply order).
    pub archive: FleetArchive,
    /// Requested ids no shard knew (completed, never opened, or routed
    /// to a shard that lost them).
    pub missing: Vec<SessionId>,
    /// Sessions that exist but could not be exported, with the cause
    /// (currently only unsnapshotable forecasters). They keep running.
    pub failed: Vec<(SessionId, String)>,
}

/// Load-aware rebalancing policy knobs (see the module docs; the
/// mechanism it drives is `SessionCommand::Migrate`).
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// How often shard loads are inspected.
    pub interval: Duration,
    /// Minimum runnable-session gap (max − min across shards) before a
    /// move is ordered. Below it, migration churn costs more than the
    /// imbalance.
    pub min_imbalance: u64,
    /// Upper bound on sessions moved per round, so one round can never
    /// flood a control channel.
    pub max_moves: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(20),
            min_imbalance: 2,
            max_moves: 8,
        }
    }
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1). Session placement is shard-count-stable
    /// only in the sense that results never depend on it.
    pub shards: usize,
    /// Bound of each shard's control channel.
    pub control_capacity: usize,
    /// Bound of the shared event channel.
    pub event_capacity: usize,
    /// Wall-clock pacing of the virtual 50 Hz clock.
    pub pacing: Pacing,
    /// Arm model every session drives.
    pub model: ArmModel,
    /// Virtual tick period `Ω` in seconds.
    pub period: f64,
    /// Per-shard scheduling discipline (event-driven by default; eager
    /// is the property-tested ground truth).
    pub scheduler: Scheduler,
    /// Load-aware shard rebalancing; `None` disables the balancer
    /// thread (sessions stay wherever placement or explicit migration
    /// put them).
    pub balancer: Option<BalancerConfig>,
    /// Batched SoA forecasting across co-shard sessions sharing a
    /// forecaster. On by default; per-session results are bit-identical
    /// either way (the batched kernels preserve the scalar f64 op
    /// order), so this is purely a throughput knob.
    pub batching: bool,
    /// Batched lane layout override. `None` (the default) lets each
    /// shard's planner pick per lane via
    /// [`foreco_forecast::plan_layout`] — cheap families stay scalar,
    /// expensive families go member-major or slot-major by width.
    /// `Some(layout)` forces every lane onto that layout (and gathers
    /// cheap families too); the determinism suites use it to pin that
    /// all layouts move zero bits.
    pub lane_layout: Option<foreco_forecast::LaneLayout>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            control_capacity: 1024,
            event_capacity: 4096,
            pacing: Pacing::Unpaced,
            model: niryo_one(),
            period: TICK_PERIOD,
            scheduler: Scheduler::default(),
            balancer: None,
            batching: true,
            lane_layout: None,
        }
    }
}

impl ServiceConfig {
    /// Config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Default::default()
        }
    }

    /// Same, with the default load balancer enabled.
    pub fn with_balanced_shards(shards: usize) -> Self {
        Self {
            shards,
            balancer: Some(BalancerConfig::default()),
            ..Default::default()
        }
    }
}

/// Cloneable ingress: routes commands to the owning shard — the static
/// hash placement by default, the migration-aware routing table once a
/// session has moved.
#[derive(Clone)]
pub struct ServiceHandle {
    controls: Vec<SyncSender<SessionCommand>>,
    routes: Arc<RoutingTable>,
    loads: Arc<Vec<ShardLoad>>,
    telemetry: Arc<Telemetry>,
}

impl ServiceHandle {
    fn route(&self, id: SessionId) -> &SyncSender<SessionCommand> {
        &self.controls[self.routes.shard_for(id, self.controls.len())]
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> usize {
        self.controls.len()
    }

    /// Point-in-time load picture of every shard — runnable vs parked
    /// sessions, passes, wakeups, migrations. These are the balancer's
    /// decision inputs, exposed so operators (and benchmarks) can see
    /// what it sees. Lock-free reads; gauges reflect each shard's last
    /// completed pass.
    pub fn shard_loads(&self) -> Vec<ShardLoadSummary> {
        self.loads
            .iter()
            .enumerate()
            .map(|(index, load)| load.summary(index))
            .collect()
    }

    /// Point-in-time snapshot of the fleet telemetry plane: per-shard
    /// counters (ticks, recovered misses, parks/wakes, inbox drops)
    /// plus the scheduler load picture. Lock-free relaxed reads;
    /// counters reflect each shard's last completed pass. The ingress
    /// totals are zero here — a gateway merges its wire-side counters
    /// in before rendering metrics.
    pub fn telemetry(&self) -> FleetTelemetry {
        FleetTelemetry {
            shards: self.telemetry.summaries(),
            loads: self.shard_loads(),
            ingress: Default::default(),
        }
    }

    /// Registers a lifecycle observer: while at least one is attached,
    /// shards narrate park transitions as [`SessionEvent::Parked`].
    /// Pair with [`ServiceHandle::detach_observer`].
    pub fn attach_observer(&self) {
        self.telemetry.attach_observer();
    }

    /// Unregisters a lifecycle observer.
    pub fn detach_observer(&self) {
        self.telemetry.detach_observer();
    }

    /// Opens a session on its home shard (blocks if the shard's control
    /// channel is full — opens are never dropped).
    ///
    /// Opening a large batch from the thread that also drains events
    /// can deadlock once both bounded channels fill: the shard blocks
    /// emitting events, stops draining control, and this send never
    /// completes. For batches, drain events concurrently, use
    /// [`Service::run_to_completion`] (which interleaves internally),
    /// or use [`ServiceHandle::try_open`].
    pub fn open(&self, spec: SessionSpec) -> Result<(), ServiceError> {
        self.route(spec.id)
            .send(SessionCommand::Open(Box::new(spec)))
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Non-blocking [`ServiceHandle::open`]: on shard backpressure the
    /// spec comes back in `Err((Backpressure, spec))` so the caller can
    /// drain events and retry without losing it.
    #[allow(clippy::result_large_err)] // the spec rides back to the caller by design
    pub fn try_open(&self, spec: SessionSpec) -> Result<(), (ServiceError, SessionSpec)> {
        match self
            .route(spec.id)
            .try_send(SessionCommand::Open(Box::new(spec)))
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(SessionCommand::Open(spec))) => {
                Err((ServiceError::Backpressure, *spec))
            }
            Err(TrySendError::Disconnected(SessionCommand::Open(spec))) => {
                Err((ServiceError::Disconnected, *spec))
            }
            Err(_) => unreachable!("try_open only sends Open"),
        }
    }

    /// Feeds one operator command to a streamed session. Non-blocking:
    /// a full control channel drops the command and reports
    /// [`ServiceError::Backpressure`] — to the robot that drop is
    /// indistinguishable from a network loss, and the session's engine
    /// will forecast the gap.
    pub fn inject(&self, id: SessionId, command: Vec<f64>) -> Result<(), ServiceError> {
        match self
            .route(id)
            .try_send(SessionCommand::Inject { id, command })
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Non-blocking [`ServiceHandle::inject`] that hands the command
    /// back on backpressure instead of dropping it: the `foreco-net`
    /// gateway's hot path, where a socket thread must never block and
    /// must decide for itself what a bounce means (it counts the bounce
    /// as a loss and keeps the slot timeline aligned with an explicit
    /// miss). No allocation happens on the bounce path — the buffer
    /// rides back to the caller inside the rejected command.
    pub fn try_inject(
        &self,
        id: SessionId,
        command: Vec<f64>,
    ) -> Result<(), (ServiceError, Vec<f64>)> {
        match self
            .route(id)
            .try_send(SessionCommand::Inject { id, command })
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(SessionCommand::Inject { command, .. })) => {
                Err((ServiceError::Backpressure, command))
            }
            Err(TrySendError::Disconnected(SessionCommand::Inject { command, .. })) => {
                Err((ServiceError::Disconnected, command))
            }
            Err(_) => unreachable!("try_inject only sends Inject"),
        }
    }

    /// Declares one slot of a gated session lost (see
    /// [`SessionCommand::InjectMiss`]). Non-blocking: a full control
    /// channel reports [`ServiceError::Backpressure`] and the caller
    /// retries — a miss marker is the slot, so unlike a command it must
    /// eventually land to keep the timeline aligned.
    pub fn inject_miss(&self, id: SessionId) -> Result<(), ServiceError> {
        match self.route(id).try_send(SessionCommand::InjectMiss { id }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Delivers a §VII-C late command to a gated session (see
    /// [`SessionCommand::InjectLate`]). Non-blocking; a dropped late
    /// patch is a loss staying a loss, so callers may simply count a
    /// bounce and move on.
    pub fn inject_late(
        &self,
        id: SessionId,
        command: Vec<f64>,
        age: usize,
    ) -> Result<(), ServiceError> {
        match self
            .route(id)
            .try_send(SessionCommand::InjectLate { id, command, age })
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Asks a streamed session to drain its inbox and report.
    pub fn close(&self, id: SessionId) -> Result<(), ServiceError> {
        self.route(id)
            .send(SessionCommand::Close { id })
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Requests a checkpoint of a live session; the owning shard answers
    /// with [`SessionEvent::Snapshotted`] (or `SnapshotFailed` /
    /// `UnknownSession`). The session keeps running.
    pub fn snapshot(&self, id: SessionId) -> Result<(), ServiceError> {
        self.route(id)
            .send(SessionCommand::Snapshot { id })
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Moves a live session to shard `to` mid-run (drain → transfer →
    /// resume; see the shard docs). Watch for the paired
    /// [`SessionEvent::Migrated`] / [`SessionEvent::Restored`] events.
    pub fn migrate(&self, id: SessionId, to: usize) -> Result<(), ServiceError> {
        if to >= self.controls.len() {
            return Err(ServiceError::NoSuchShard {
                shard: to,
                shards: self.controls.len(),
            });
        }
        self.route(id)
            .send(SessionCommand::Migrate { id, to })
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Rehydrates a checkpointed session — e.g. one exported by
    /// [`ServiceHandle::snapshot`] before a process restart — onto its
    /// routed shard. The shard answers with [`SessionEvent::Restored`]
    /// (or `RestoreFailed` / `DuplicateSession`) and the session resumes
    /// from its snapshot tick.
    pub fn adopt(&self, snapshot: SessionSnapshot) -> Result<(), ServiceError> {
        self.route(snapshot.id)
            .send(SessionCommand::Adopt {
                snapshot: Box::new(snapshot),
                trace: None,
            })
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Bulk checkpoint: exports every listed session into one
    /// deduplicated [`FleetArchive`] — each distinct scripted trace
    /// stored once, no matter how many sessions replay it, so a
    /// thousand-session archive costs O(traces + sessions) bytes instead
    /// of O(sessions × trace). Sessions keep running, untouched.
    ///
    /// The assembly is *streaming*: shards encode each part into their
    /// reusable scratch as a binary v3 frame, and this collector splices
    /// the bytes straight into the archive while later shards are still
    /// draining — no snapshot is decoded in between. Sessions that are
    /// unknown (completed, never opened) or unsnapshotable are reported
    /// in [`FleetSnapshotReport::missing`] / `failed` instead of being
    /// silently dropped.
    ///
    /// Blocks until every routed shard has replied. Call it from a
    /// thread that is not needed to drain events, or leave event-channel
    /// headroom: a shard blocked emitting events cannot reach the
    /// snapshot command. (The reply channel is sized to `ids.len()`, so
    /// shard-side sends never block.)
    pub fn snapshot_fleet(&self, ids: &[SessionId]) -> Result<FleetSnapshotReport, ServiceError> {
        let (tx, rx) = sync_channel::<FleetPart>(ids.len().max(1));
        for &id in ids {
            self.route(id)
                .send(SessionCommand::SnapshotInto {
                    id,
                    reply: tx.clone(),
                })
                .map_err(|_| ServiceError::Disconnected)?;
        }
        drop(tx); // shards hold the only remaining senders
        let mut report = FleetSnapshotReport {
            archive: FleetArchive::new(),
            missing: Vec::new(),
            failed: Vec::new(),
        };
        for _ in 0..ids.len() {
            match rx.recv() {
                Ok(FleetPart::Snapshot { frame, trace, .. }) => {
                    if let Some((id, commands)) = trace {
                        report.archive.push_trace(id, &commands);
                    }
                    report.archive.push_part_bytes(&frame);
                }
                Ok(FleetPart::Missing { id }) => report.missing.push(id),
                Ok(FleetPart::Failed { id, reason }) => report.failed.push((id, reason)),
                Err(_) => return Err(ServiceError::Disconnected),
            }
        }
        Ok(report)
    }

    /// Revives an archived fleet: files each trace-table entry into
    /// `storage` under its content address (verifying the declared id
    /// against a recomputed one; mismatched entries are skipped), then
    /// adopts every session snapshot with its trace claim riding along
    /// the control channel — so the trace cannot be evicted between send
    /// and restore, and N adopted sessions share one resident copy.
    ///
    /// Returns how many adoptions were sent. Watch the event stream for
    /// the matching [`SessionEvent::Restored`] / `RestoreFailed` pairs
    /// (a session whose trace entry was missing or corrupt fails at
    /// restore, not here).
    pub fn adopt_fleet(
        &self,
        archive: FleetArchive,
        storage: &Storage,
    ) -> Result<usize, ServiceError> {
        let (traces, sessions) = archive
            .dismantle()
            .map_err(|e| ServiceError::CorruptArchive {
                reason: e.to_string(),
            })?;
        let mut claims: HashMap<ObjectId, TraceHandle> = HashMap::new();
        for entry in traces {
            if trace_object_id(&entry.commands) != entry.id {
                continue; // corrupt table entry; its sessions fail at restore
            }
            claims.insert(entry.id, storage.insert_trace_owned(entry.commands));
        }
        let mut sent = 0;
        for snapshot in sessions {
            let trace = match &snapshot.source {
                SourceState::ScriptedRef { trace, .. } => claims.get(trace).cloned(),
                _ => None,
            };
            self.route(snapshot.id)
                .send(SessionCommand::Adopt {
                    snapshot: Box::new(snapshot),
                    trace,
                })
                .map_err(|_| ServiceError::Disconnected)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// Orders shard `from` to migrate up to `count` of its runnable
    /// sessions to shard `to` — the manual form of what the balancer
    /// does periodically. Non-blocking; a full control channel reports
    /// [`ServiceError::Backpressure`] (retry after draining events).
    pub fn rebalance(&self, from: usize, to: usize, count: usize) -> Result<(), ServiceError> {
        for shard in [from, to] {
            if shard >= self.controls.len() {
                return Err(ServiceError::NoSuchShard {
                    shard,
                    shards: self.controls.len(),
                });
            }
        }
        match self.controls[from].try_send(SessionCommand::Rebalance { to, count }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Requests a graceful drain of every shard.
    pub fn shutdown(&self) {
        for control in &self.controls {
            let _ = control.send(SessionCommand::Shutdown);
        }
    }
}

/// Outcome of a timed wait for the next service event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventWait {
    /// An event arrived within the timeout.
    Event(SessionEvent),
    /// The timeout elapsed with no event; the service is still alive.
    TimedOut,
    /// Every shard has terminated and the buffer is drained.
    Disconnected,
}

/// A running shard pool. Drop order matters only through
/// [`Service::join`], which consumes the service after a shutdown.
pub struct Service {
    handle: ServiceHandle,
    events: Receiver<SessionEvent>,
    workers: Vec<JoinHandle<u64>>,
    /// The balancer thread and the sender whose drop stops it.
    balancer: Option<(JoinHandle<()>, SyncSender<()>)>,
}

impl Service {
    /// Spawns the shard pool (and the balancer, when configured).
    ///
    /// # Panics
    /// Panics if `config.shards` is zero.
    pub fn spawn(config: ServiceConfig) -> Self {
        assert!(config.shards >= 1, "service: need at least one shard");
        let (event_tx, event_rx) = sync_channel(config.event_capacity);
        let routes = Arc::new(RoutingTable::default());
        let loads: Arc<Vec<ShardLoad>> =
            Arc::new((0..config.shards).map(|_| ShardLoad::default()).collect());
        let telemetry = Arc::new(Telemetry::new(config.shards));
        // All control channels exist before any worker starts: each
        // worker holds every peer's sender for migration hand-offs.
        let channels: Vec<_> = (0..config.shards)
            .map(|_| sync_channel(config.control_capacity))
            .collect();
        let controls: Vec<SyncSender<SessionCommand>> =
            channels.iter().map(|(tx, _)| tx.clone()).collect();
        // One content-addressed store shared by every shard: restored
        // sessions claim their model weights here instead of holding
        // deep clones, so N same-model restores keep one resident copy
        // (and share one batching lane key).
        let models = Storage::new();
        let mut workers = Vec::with_capacity(config.shards);
        for (index, (_, control_rx)) in channels.into_iter().enumerate() {
            let worker = ShardWorker {
                index,
                control: control_rx,
                events: event_tx.clone(),
                peers: controls.clone(),
                routes: Arc::clone(&routes),
                model: config.model.clone(),
                pacing: config.pacing,
                period: config.period,
                scheduler: config.scheduler,
                loads: Arc::clone(&loads),
                telemetry: Arc::clone(&telemetry),
                models: models.clone(),
                batching: config.batching,
                lane_layout: config.lane_layout,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("foreco-shard-{index}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard thread"),
            );
        }
        let handle = ServiceHandle {
            controls,
            routes,
            loads,
            telemetry,
        };
        let balancer = config.balancer.map(|cfg| {
            let (stop_tx, stop_rx) = sync_channel(1);
            let balancer_handle = handle.clone();
            let thread = std::thread::Builder::new()
                .name("foreco-balancer".to_string())
                .spawn(move || balancer_loop(cfg, balancer_handle, stop_rx))
                .expect("spawn balancer thread");
            (thread, stop_tx)
        });
        Self {
            handle,
            events: event_rx,
            workers,
            balancer,
        }
    }

    /// A cloneable ingress handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Blocking receive of the next service event. Parks the calling
    /// thread until an event arrives; `None` once every shard has
    /// terminated and the buffer is drained.
    pub fn next_event(&self) -> Option<SessionEvent> {
        self.events.recv().ok()
    }

    /// Bounded-wait receive: blocks up to `timeout` for the next event
    /// instead of forcing callers to poll [`Service::next_event`] in a
    /// busy loop when they have periodic work of their own (balancer
    /// observation, stats printing, injection pacing).
    pub fn next_event_timeout(&self, timeout: Duration) -> EventWait {
        match self.events.recv_timeout(timeout) {
            Ok(event) => EventWait::Event(event),
            Err(RecvTimeoutError::Timeout) => EventWait::TimedOut,
            Err(RecvTimeoutError::Disconnected) => EventWait::Disconnected,
        }
    }

    /// Shuts down and joins every shard, returning the total
    /// session-ticks each advanced. Buffered events are discarded.
    pub fn join(mut self) -> Vec<u64> {
        let workers = std::mem::take(&mut self.workers);
        let balancer = self.balancer.take();
        // Dropping self runs the Drop impl (Shutdown to every shard)
        // and releases the event receiver, so shards blocked emitting
        // events unblock and exit.
        drop(self);
        if let Some((thread, stop)) = balancer {
            drop(stop); // disconnects the balancer's stop channel
            thread.join().expect("balancer thread panicked");
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("shard thread panicked"))
            .collect()
    }

    /// Batch driver: opens every spec, waits for all of them to
    /// complete, and returns the collected registry. Scripted sessions
    /// complete on their own; streamed specs are closed immediately (so
    /// they report after draining whatever was injected beforehand —
    /// use the handle/event API directly for live streaming).
    ///
    /// Events are drained *while* opening, so the batch size is not
    /// limited by the bounded control/event channels: with both full,
    /// a blocking open would deadlock against shards blocked on event
    /// sends. Opens therefore use `try_send` and fall back to draining.
    ///
    /// # Panics
    /// Panics if a shard dies before every session reports, or if two
    /// specs share an id (the second could never report).
    pub fn run_to_completion(self, specs: Vec<SessionSpec>) -> MetricsRegistry {
        let expected = specs.len();
        {
            let mut ids: Vec<SessionId> = specs.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                expected,
                "run_to_completion: duplicate session ids"
            );
        }
        let mut registry = MetricsRegistry::new();
        for spec in specs {
            let streamed = matches!(spec.source, crate::spec::SourceSpec::Streamed { .. });
            let id = spec.id;
            let control = self.handle.route(id);
            let mut pending = Box::new(spec);
            loop {
                match control.try_send(SessionCommand::Open(pending)) {
                    Ok(()) => break,
                    Err(TrySendError::Full(SessionCommand::Open(spec))) => {
                        // Shard backpressure: free event capacity so the
                        // shard can make progress, then retry.
                        pending = spec;
                        self.drain_into(&mut registry, true);
                    }
                    Err(_) => panic!("shard terminated while opening sessions"),
                }
            }
            if streamed {
                // Close may hit the same backpressure; same treatment.
                loop {
                    match control.try_send(SessionCommand::Close { id }) {
                        Ok(()) => break,
                        Err(TrySendError::Full(_)) => self.drain_into(&mut registry, true),
                        Err(_) => panic!("shard terminated while closing sessions"),
                    }
                }
            }
            self.drain_into(&mut registry, false);
        }
        while registry.len() < expected {
            match self.next_event() {
                Some(SessionEvent::Completed { report, .. }) => registry.record(report),
                Some(_) => {}
                None => panic!("service terminated with sessions outstanding"),
            }
        }
        // The final load picture (passes, wakeups, migrations) rides
        // along with the reports for observability.
        registry.record_shard_loads(self.handle.shard_loads());
        self.join();
        registry
    }

    /// Drains buffered events into the registry without blocking; with
    /// `wait`, blocks briefly first so a backpressure retry loop is not
    /// a busy spin.
    fn drain_into(&self, registry: &mut MetricsRegistry, wait: bool) {
        if wait {
            if let Ok(SessionEvent::Completed { report, .. }) = self
                .events
                .recv_timeout(std::time::Duration::from_millis(1))
            {
                registry.record(report);
            }
        }
        while let Ok(event) = self.events.try_recv() {
            if let SessionEvent::Completed { report, .. } = event {
                registry.record(report);
            }
        }
    }
}

/// The balancer: every `interval`, read shard loads and — when the
/// runnable gap justifies it — order the most loaded shard to migrate
/// live sessions toward the least loaded one. Exits when the stop
/// channel signals or disconnects (service drop/join).
fn balancer_loop(cfg: BalancerConfig, handle: ServiceHandle, stop: Receiver<()>) {
    loop {
        match stop.recv_timeout(cfg.interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
        let loads = handle.shard_loads();
        let Some(busiest) = loads.iter().max_by_key(|l| l.runnable) else {
            continue;
        };
        let Some(idlest) = loads.iter().min_by_key(|l| l.runnable) else {
            continue;
        };
        if busiest.shard == idlest.shard
            || busiest.runnable.saturating_sub(idlest.runnable) < cfg.min_imbalance
        {
            continue;
        }
        // Move half the gap (at least one), capped: the next round
        // re-measures rather than trusting a single stale reading.
        let count = (((busiest.runnable - idlest.runnable) / 2).max(1) as usize).min(cfg.max_moves);
        // Never block: a full control channel means the shard is busy —
        // skipping a round is cheaper than stalling the balancer.
        let _ = handle.controls[busiest.shard].try_send(SessionCommand::Rebalance {
            to: idlest.shard,
            count,
        });
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Every worker holds peer control senders (for migration
        // hand-offs), so the channels never disconnect on their own and
        // a shard parked on `recv` would otherwise sleep forever when a
        // Service is dropped without `join`. Ask each shard to drain
        // and exit; the threads finish asynchronously ([`Service::join`]
        // is still the way to wait for them).
        self.handle.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::shard_of;
    use crate::spec::{ChannelSpec, RecoverySpec, SourceSpec};
    use foreco_teleop::{Dataset, Skill};
    use std::sync::Arc;

    fn specs(n: u64) -> Vec<SessionSpec> {
        let dataset = Arc::new(Dataset::record(Skill::Inexperienced, 1, 0.02, 99).commands);
        (0..n)
            .map(|id| {
                SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&dataset)),
                    ChannelSpec::ControlledLoss {
                        burst_len: 5,
                        burst_prob: 0.01,
                        seed: id,
                    },
                    RecoverySpec::Baseline,
                )
            })
            .collect()
    }

    #[test]
    fn batch_run_collects_every_session() {
        let service = Service::spawn(ServiceConfig::with_shards(3));
        let registry = service.run_to_completion(specs(16));
        assert_eq!(registry.len(), 16);
        for id in 0..16 {
            assert!(registry.get(id).is_some(), "missing session {id}");
        }
    }

    #[test]
    fn batch_run_survives_tiny_channel_bounds() {
        // Regression: with bounded channels far smaller than the batch,
        // a blocking open loop deadlocks against shards blocked on
        // event sends. run_to_completion must interleave draining.
        let config = ServiceConfig {
            shards: 2,
            control_capacity: 2,
            event_capacity: 2,
            ..Default::default()
        };
        let service = Service::spawn(config);
        let registry = service.run_to_completion(specs(64));
        assert_eq!(registry.len(), 64);
    }

    #[test]
    fn duplicate_open_rejected_without_killing_live_session() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        let pair = specs(2);
        let mut duplicate = pair[0].clone();
        duplicate.id = pair[1].id; // collide with the second spec's id
        for spec in pair {
            handle.open(spec).unwrap();
        }
        handle.open(duplicate).unwrap();
        let (mut completed, mut duplicates) = (0, 0);
        while completed < 2 {
            match service.next_event().expect("service alive") {
                SessionEvent::Completed { .. } => completed += 1,
                SessionEvent::DuplicateSession { id } => {
                    assert_eq!(id, 1);
                    duplicates += 1;
                }
                _ => {}
            }
        }
        assert_eq!(
            duplicates, 1,
            "duplicate open must be rejected, not absorbed"
        );
        service.join();
    }

    #[test]
    fn try_open_returns_spec_on_backpressure() {
        // One shard, capacity-1 control channel, and no shard progress
        // guaranteed between sends: fill the channel until Backpressure
        // comes back, and verify the spec survives the round trip.
        let config = ServiceConfig {
            shards: 1,
            control_capacity: 1,
            ..Default::default()
        };
        let service = Service::spawn(config);
        let handle = service.handle();
        let mut bounced = None;
        for spec in specs(64) {
            if let Err((ServiceError::Backpressure, spec)) = handle.try_open(spec) {
                bounced = Some(spec);
                break;
            }
        }
        let bounced = bounced.expect("64 rapid opens at capacity 1 must bounce at least once");
        handle.open(bounced).expect("bounced spec still usable");
        service.join();
    }

    #[test]
    #[should_panic(expected = "duplicate session ids")]
    fn batch_run_rejects_duplicate_ids_upfront() {
        let mut batch = specs(4);
        batch[3].id = batch[0].id;
        Service::spawn(ServiceConfig::with_shards(2)).run_to_completion(batch);
    }

    #[test]
    fn events_report_opens_and_completions() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        for spec in specs(4) {
            handle.open(spec).unwrap();
        }
        let mut opened = 0;
        let mut completed = 0;
        while completed < 4 {
            match service.next_event().expect("service alive") {
                SessionEvent::Opened { .. } => opened += 1,
                SessionEvent::Completed { .. } => completed += 1,
                _ => {}
            }
        }
        assert_eq!(opened, 4);
        service.join();
    }

    #[test]
    fn unknown_session_reported() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        handle.close(123).unwrap();
        match service.next_event().expect("event") {
            SessionEvent::UnknownSession { id } => assert_eq!(id, 123),
            other => panic!("expected UnknownSession, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn snapshot_command_checkpoints_live_session() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        let batch = specs(2);
        for spec in batch {
            handle.open(spec).unwrap();
        }
        handle.snapshot(0).unwrap();
        let mut snapshot = None;
        let mut completed = 0;
        while completed < 2 {
            match service.next_event().expect("service alive") {
                SessionEvent::Snapshotted {
                    id, snapshot: s, ..
                } => {
                    assert_eq!(id, 0);
                    snapshot = Some(s);
                }
                SessionEvent::Completed { .. } => completed += 1,
                _ => {}
            }
        }
        let snapshot = snapshot.expect("snapshot event must arrive");
        assert_eq!(snapshot.id, 0);
        assert_eq!(snapshot.version, crate::snapshot::SNAPSHOT_VERSION);
        // The checkpoint survives a byte round trip.
        let bytes = snapshot.to_bytes();
        let back = crate::snapshot::SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, *snapshot);
        service.join();
    }

    #[test]
    fn migrate_moves_session_and_routing_follows() {
        let service = Service::spawn(ServiceConfig::with_shards(4));
        let handle = service.handle();
        let batch = specs(8);
        let ids: Vec<u64> = batch.iter().map(|s| s.id).collect();
        for spec in batch {
            handle.open(spec).unwrap();
        }
        // Move every session off its home shard immediately.
        for &id in &ids {
            let home = shard_of(id, 4);
            handle.migrate(id, (home + 1) % 4).unwrap();
        }
        let mut migrated = 0;
        let mut restored = 0;
        let mut completed = 0;
        while completed < ids.len() {
            match service.next_event().expect("service alive") {
                SessionEvent::Migrated { from, to, .. } => {
                    assert_ne!(from, to, "no-op migrations not requested here");
                    migrated += 1;
                }
                SessionEvent::Restored { id, shard, .. } => {
                    assert_eq!(shard, (shard_of(id, 4) + 1) % 4);
                    restored += 1;
                }
                SessionEvent::Opened { .. } => {}
                SessionEvent::Completed { .. } => completed += 1,
                SessionEvent::UnknownSession { .. } => {
                    // The session completed before its migrate arrived —
                    // legal in this race, just not counted as a move.
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(migrated, restored, "every departure must land");
        assert!(migrated > 0, "no migration ever happened");
        service.join();
    }

    #[test]
    fn adopt_rehydrates_into_a_fresh_service() {
        // Simulate a process restart: checkpoint a session in service A,
        // tear A down, revive the checkpoint in service B. B's report
        // must be bit-identical to A's uninterrupted twin.
        let twin = Service::spawn(ServiceConfig::with_shards(1))
            .run_to_completion(specs(1))
            .reports()
            .next()
            .cloned()
            .expect("twin report");

        let a = Service::spawn(ServiceConfig::with_shards(1));
        let handle = a.handle();
        handle.open(specs(1).remove(0)).unwrap();
        handle.snapshot(0).unwrap();
        let bytes = loop {
            match a.next_event().expect("service alive") {
                SessionEvent::Snapshotted { snapshot, .. } => break snapshot.to_bytes(),
                SessionEvent::Completed { .. } => panic!("snapshot raced completion"),
                _ => {}
            }
        };
        a.join(); // "the process dies"

        let b = Service::spawn(ServiceConfig::with_shards(1));
        let snapshot = crate::snapshot::SessionSnapshot::from_bytes(&bytes).unwrap();
        b.handle().adopt(snapshot).unwrap();
        let report = loop {
            match b.next_event().expect("service alive") {
                SessionEvent::Restored { id, .. } => assert_eq!(id, 0),
                SessionEvent::Completed { report, .. } => break report,
                other => panic!("unexpected event {other:?}"),
            }
        };
        b.join();
        assert_eq!(report.misses, twin.misses);
        assert_eq!(report.ticks, twin.ticks);
        assert_eq!(report.rmse_mm.to_bits(), twin.rmse_mm.to_bits());
        assert_eq!(
            report.max_deviation_mm.to_bits(),
            twin.max_deviation_mm.to_bits()
        );
    }

    #[test]
    fn migrate_rejects_out_of_range_shard() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        assert_eq!(handle.shards(), 2);
        let err = handle.migrate(0, 5).expect_err("shard 5 of 2 must fail");
        assert_eq!(
            err,
            ServiceError::NoSuchShard {
                shard: 5,
                shards: 2
            }
        );
        // ServiceError is a real std error for caller/test ergonomics.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("no shard 5"));
        service.join();
    }

    #[test]
    fn bidirectional_migration_with_tiny_control_channels_does_not_deadlock() {
        // Regression: migration hand-offs must never block the shard
        // loop. With capacity-2 control channels and sessions migrating
        // in both directions at once, a blocking `send` in the Migrate
        // arm deadlocks the pool (each shard stuck writing to the
        // other's full channel, neither draining its own).
        let config = ServiceConfig {
            shards: 2,
            control_capacity: 2,
            ..Default::default()
        };
        let service = Service::spawn(config);
        let handle = service.handle();
        let batch = specs(12);
        for spec in batch {
            handle.open(spec).unwrap();
        }
        for round in 0..3usize {
            for id in 0..12u64 {
                // Ping-pong: odd rounds send everything to shard 0,
                // even rounds to shard 1 — guaranteed cross-traffic.
                handle.migrate(id, round % 2).unwrap();
            }
        }
        let mut completed = 0;
        while completed < 12 {
            if let Some(SessionEvent::Completed { .. }) = service.next_event() {
                completed += 1;
            }
        }
        service.join();
    }

    #[test]
    fn dropped_service_unwinds_its_shards() {
        // Regression: workers hold peer control senders, so channel
        // disconnection alone can't wake a parked shard — dropping a
        // Service without join() must still shut the threads down (via
        // the Drop impl) instead of leaking them.
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        drop(service); // no join
        let ids: Vec<u64> = (0..2)
            .map(|s| (0..).find(|&id| shard_of(id, 2) == s).unwrap())
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        for id in ids {
            // Once the worker exits, its control receiver drops and
            // sends start failing with Disconnected.
            loop {
                match handle.close(id) {
                    Err(ServiceError::Disconnected) => break,
                    _ => {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "shard owning session {id} never exited after drop"
                        );
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    #[test]
    fn handle_errors_after_shutdown_are_matchable() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        service.join();
        assert_eq!(
            handle.snapshot(0).expect_err("pool is gone"),
            ServiceError::Disconnected
        );
        assert_eq!(
            handle.inject(0, vec![0.0]).expect_err("pool is gone"),
            ServiceError::Disconnected
        );
        let err: Box<dyn std::error::Error> = Box::new(handle.close(0).expect_err("still gone"));
        assert!(err.to_string().contains("terminated"));
    }

    #[test]
    fn event_driven_parks_idle_streams_and_traffic_wakes_them() {
        // One shard, a fleet of silent streamed sessions: the scheduler
        // must park them all (zero wakeups while parked), wake on
        // traffic, and still complete every session on close.
        let model = niryo_one();
        let home = model.home();
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        const FLEET: u64 = 32;
        for id in 0..FLEET {
            handle
                .open(SessionSpec::new(
                    id,
                    SourceSpec::Streamed {
                        initial: home.clone(),
                        inbox_capacity: 4,
                    },
                    ChannelSpec::Ideal,
                    RecoverySpec::Baseline,
                ))
                .unwrap();
        }
        // Baseline sessions settle within a few ticks; wait for the
        // whole fleet to park.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let load = &handle.shard_loads()[0];
            if load.parked == FLEET && load.runnable == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "fleet never parked: {load:?}"
            );
            std::thread::yield_now();
        }
        // Parked fleet: the shard is quiescent, so the wakeup counter
        // must stop moving entirely.
        let before = handle.shard_loads()[0].wakeups;
        std::thread::sleep(std::time::Duration::from_millis(50));
        let after = handle.shard_loads()[0].wakeups;
        assert_eq!(
            before, after,
            "parked sessions must cost zero advances while idle"
        );
        // Traffic wakes exactly its target.
        handle.inject(3, home.clone()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let load = &handle.shard_loads()[0];
            if load.wakeups > after && load.traffic_wakeups >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "inject never woke the session: {load:?}"
            );
            std::thread::yield_now();
        }
        // Close everything; every session must still report.
        for id in 0..FLEET {
            handle.close(id).unwrap();
        }
        let mut completed = 0;
        while completed < FLEET {
            if let Some(SessionEvent::Completed { .. }) = service.next_event() {
                completed += 1;
            }
        }
        service.join();
    }

    #[test]
    fn rebalance_migrates_runnable_sessions() {
        // All sessions on shard 0 (by id choice), then a manual
        // rebalance order: live sessions must move to shard 1 through
        // the ordinary bit-invisible migration path.
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        let dataset = Arc::new(Dataset::record(Skill::Inexperienced, 3, 0.02, 99).commands);
        let ids: Vec<u64> = (0..).filter(|&id| shard_of(id, 2) == 0).take(8).collect();
        for &id in &ids {
            handle
                .open(SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&dataset)),
                    ChannelSpec::Ideal,
                    RecoverySpec::Baseline,
                ))
                .unwrap();
        }
        handle.rebalance(0, 1, 3).unwrap();
        let mut migrated = 0;
        let mut restored = 0;
        let mut completed = 0;
        while completed < ids.len() {
            match service.next_event().expect("service alive") {
                SessionEvent::Migrated { from, to, .. } => {
                    assert_eq!((from, to), (0, 1));
                    migrated += 1;
                }
                SessionEvent::Restored { shard, .. } => {
                    assert_eq!(shard, 1);
                    restored += 1;
                }
                SessionEvent::Completed { .. } => completed += 1,
                _ => {}
            }
        }
        assert_eq!(migrated, restored, "every departure must land");
        assert!(
            migrated > 0,
            "rebalance of a loaded shard must move something"
        );
        let loads = handle.shard_loads();
        assert_eq!(loads[0].migrated_out, migrated);
        assert_eq!(loads[1].migrated_in, migrated);
        service.join();
        // Out-of-range shards are rejected up front.
        assert!(matches!(
            ServiceHandle::rebalance(&handle, 0, 9, 1),
            Err(ServiceError::NoSuchShard { shard: 9, .. })
        ));
    }

    #[test]
    fn balancer_evens_out_a_loaded_shard() {
        // Pile long scripted sessions onto shard 0 of a balanced pool;
        // the balancer must notice the runnable gap and order moves.
        let config = ServiceConfig {
            balancer: Some(BalancerConfig {
                interval: Duration::from_millis(2),
                min_imbalance: 2,
                max_moves: 4,
            }),
            ..ServiceConfig::with_shards(2)
        };
        let service = Service::spawn(config);
        let handle = service.handle();
        let dataset = Arc::new(Dataset::record(Skill::Inexperienced, 4, 0.02, 42).commands);
        let ids: Vec<u64> = (0..).filter(|&id| shard_of(id, 2) == 0).take(12).collect();
        for &id in &ids {
            handle
                .open(SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&dataset)),
                    ChannelSpec::ControlledLoss {
                        burst_len: 5,
                        burst_prob: 0.01,
                        seed: id,
                    },
                    RecoverySpec::Baseline,
                ))
                .unwrap();
        }
        let mut migrated = 0;
        let mut completed = 0;
        while completed < ids.len() {
            match service.next_event().expect("service alive") {
                // Counts the initial-imbalance direction; late in the run
                // the gap can legally reverse as sessions finish.
                SessionEvent::Migrated { from: 0, to: 1, .. } => migrated += 1,
                SessionEvent::Completed { .. } => completed += 1,
                _ => {}
            }
        }
        assert!(
            migrated > 0,
            "balancer never rebalanced a 12-vs-0 runnable split"
        );
        service.join();
    }

    #[test]
    fn next_event_timeout_is_a_bounded_wait() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        assert_eq!(
            service.next_event_timeout(Duration::from_millis(5)),
            EventWait::TimedOut
        );
        let handle = service.handle();
        handle.open(specs(1).remove(0)).unwrap();
        // Something must arrive within a generous bound.
        match service.next_event_timeout(Duration::from_secs(30)) {
            EventWait::Event(_) => {}
            other => panic!("expected an event, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn snapshot_fleet_archives_parked_sessions_and_skips_unknown_ids() {
        use crate::session::Session;
        use foreco_robot::niryo_one;

        // Streamed sessions with no traffic park at their idle fixed
        // point and never complete, so the bulk checkpoint cannot race
        // session completion: per-shard control FIFO puts every
        // `SnapshotInto` behind its `Open`.
        let home = Dataset::record(Skill::Experienced, 1, 0.02, 3).commands[0].clone();
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        for id in 0..4u64 {
            handle
                .open(SessionSpec::new(
                    id,
                    SourceSpec::Streamed {
                        initial: home.clone(),
                        inbox_capacity: 8,
                    },
                    ChannelSpec::ControlledLoss {
                        burst_len: 5,
                        burst_prob: 0.01,
                        seed: id,
                    },
                    RecoverySpec::Baseline,
                ))
                .unwrap();
        }
        let report = handle.snapshot_fleet(&[0, 1, 2, 3, 99]).unwrap();
        assert_eq!(report.archive.len(), 4);
        assert_eq!(
            report.missing,
            vec![99],
            "unknown id 99 must be reported, not silently dropped"
        );
        assert!(report.failed.is_empty());
        assert!(
            report.archive.traces().is_empty(),
            "streamed sessions contribute no trace table"
        );
        // Archived parts are plain self-contained snapshots: each one
        // restores directly.
        let model = niryo_one();
        for snapshot in report.archive.sessions().expect("frames decode") {
            Session::restore(&snapshot, &model).expect("streamed part restores");
        }
        for id in 0..4 {
            handle.close(id).unwrap();
        }
        let mut completed = 0;
        while completed < 4 {
            if let Some(SessionEvent::Completed { .. }) = service.next_event() {
                completed += 1;
            }
        }
        service.join();
    }

    #[test]
    fn adopt_fleet_revives_archive_with_one_shared_trace() {
        use crate::archive::FleetArchive;
        use crate::session::{Advance, Session};
        use foreco_robot::niryo_one;
        use foreco_store::Storage;

        // Donors are built directly (a live unpaced pool would race
        // scripted sessions to completion before the checkpoint): all
        // replay one Arc'd trace, snapshot at staggered ticks.
        let model = niryo_one();
        let batch = specs(6);
        let mut parts = Vec::new();
        let mut donors = std::collections::HashMap::new();
        for (i, spec) in batch.iter().enumerate() {
            let mut session = Session::open(spec, &model);
            for _ in 0..i * 40 {
                session.advance();
            }
            parts.push(session.snapshot_for_fleet().expect("fleet part"));
            let report = loop {
                if let Advance::Completed(report) = session.advance() {
                    break *report;
                }
            };
            donors.insert(spec.id, report);
        }
        let archive = FleetArchive::build(parts);
        assert_eq!(archive.len(), 6);
        assert_eq!(archive.traces().len(), 1, "one shared trace, stored once");

        let service = Service::spawn(ServiceConfig::with_shards(3));
        let storage = Storage::new();
        let sent = service
            .handle()
            .adopt_fleet(archive, &storage)
            .expect("adopt fleet");
        assert_eq!(sent, 6);
        assert_eq!(
            storage.stats().traces.objects,
            1,
            "the trace table files exactly one object"
        );
        let mut restored = 0;
        let mut completed = 0;
        while completed < 6 {
            match service.next_event().expect("service alive") {
                SessionEvent::Restored { .. } => restored += 1,
                SessionEvent::Completed { id, report } => {
                    completed += 1;
                    let donor = &donors[&id];
                    assert_eq!(report.ticks, donor.ticks, "session {id}: ticks");
                    assert_eq!(report.misses, donor.misses, "session {id}: misses");
                    assert_eq!(
                        report.rmse_mm.to_bits(),
                        donor.rmse_mm.to_bits(),
                        "session {id}: rmse"
                    );
                    assert_eq!(
                        report.max_deviation_mm.to_bits(),
                        donor.max_deviation_mm.to_bits(),
                        "session {id}: max deviation"
                    );
                }
                SessionEvent::RestoreFailed { id, reason } => {
                    panic!("session {id} failed to restore: {reason}")
                }
                _ => {}
            }
        }
        assert_eq!(restored, 6, "every adoption must report Restored");
        service.join();
    }

    #[test]
    fn join_returns_shard_tick_totals() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let registry = {
            let handle = service.handle();
            for spec in specs(6) {
                handle.open(spec).unwrap();
            }
            let mut registry = MetricsRegistry::new();
            while registry.len() < 6 {
                if let Some(SessionEvent::Completed { report, .. }) = service.next_event() {
                    registry.record(report);
                }
            }
            registry
        };
        let ticks = service.join();
        assert_eq!(ticks.len(), 2);
        let expected: u64 = registry.reports().map(|r| r.ticks).sum();
        assert_eq!(ticks.iter().sum::<u64>(), expected);
    }
}
