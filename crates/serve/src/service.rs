//! The service: a shard pool behind a cloneable handle.
//!
//! [`Service::spawn`] starts `shards` worker threads, each owning a
//! bounded control channel and a share of the sessions (placement by
//! [`shard_of`]). Callers hold a [`ServiceHandle`] to open, feed, and
//! close sessions, and drain [`SessionEvent`]s from the service to
//! observe them. [`Service::run_to_completion`] is the batch
//! convenience: open a set of scripted sessions, collect every report
//! into a [`MetricsRegistry`], shut down.

use crate::clock::{Pacing, TICK_PERIOD};
use crate::metrics::MetricsRegistry;
use crate::protocol::{ServiceError, SessionCommand, SessionEvent};
use crate::shard::{shard_of, ShardWorker};
use crate::spec::{SessionId, SessionSpec};
use foreco_robot::{niryo_one, ArmModel};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (≥ 1). Session placement is shard-count-stable
    /// only in the sense that results never depend on it.
    pub shards: usize,
    /// Bound of each shard's control channel.
    pub control_capacity: usize,
    /// Bound of the shared event channel.
    pub event_capacity: usize,
    /// Wall-clock pacing of the virtual 50 Hz clock.
    pub pacing: Pacing,
    /// Arm model every session drives.
    pub model: ArmModel,
    /// Virtual tick period `Ω` in seconds.
    pub period: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            control_capacity: 1024,
            event_capacity: 4096,
            pacing: Pacing::Unpaced,
            model: niryo_one(),
            period: TICK_PERIOD,
        }
    }
}

impl ServiceConfig {
    /// Config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Default::default()
        }
    }
}

/// Cloneable ingress: routes commands to the owning shard.
#[derive(Clone)]
pub struct ServiceHandle {
    controls: Vec<SyncSender<SessionCommand>>,
}

impl ServiceHandle {
    fn route(&self, id: SessionId) -> &SyncSender<SessionCommand> {
        &self.controls[shard_of(id, self.controls.len())]
    }

    /// Opens a session on its home shard (blocks if the shard's control
    /// channel is full — opens are never dropped).
    ///
    /// Opening a large batch from the thread that also drains events
    /// can deadlock once both bounded channels fill: the shard blocks
    /// emitting events, stops draining control, and this send never
    /// completes. For batches, drain events concurrently, use
    /// [`Service::run_to_completion`] (which interleaves internally),
    /// or use [`ServiceHandle::try_open`].
    pub fn open(&self, spec: SessionSpec) -> Result<(), ServiceError> {
        self.route(spec.id)
            .send(SessionCommand::Open(Box::new(spec)))
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Non-blocking [`ServiceHandle::open`]: on shard backpressure the
    /// spec comes back in `Err((Backpressure, spec))` so the caller can
    /// drain events and retry without losing it.
    #[allow(clippy::result_large_err)] // the spec rides back to the caller by design
    pub fn try_open(&self, spec: SessionSpec) -> Result<(), (ServiceError, SessionSpec)> {
        match self
            .route(spec.id)
            .try_send(SessionCommand::Open(Box::new(spec)))
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(SessionCommand::Open(spec))) => {
                Err((ServiceError::Backpressure, *spec))
            }
            Err(TrySendError::Disconnected(SessionCommand::Open(spec))) => {
                Err((ServiceError::Disconnected, *spec))
            }
            Err(_) => unreachable!("try_open only sends Open"),
        }
    }

    /// Feeds one operator command to a streamed session. Non-blocking:
    /// a full control channel drops the command and reports
    /// [`ServiceError::Backpressure`] — to the robot that drop is
    /// indistinguishable from a network loss, and the session's engine
    /// will forecast the gap.
    pub fn inject(&self, id: SessionId, command: Vec<f64>) -> Result<(), ServiceError> {
        match self
            .route(id)
            .try_send(SessionCommand::Inject { id, command })
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServiceError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::Disconnected),
        }
    }

    /// Asks a streamed session to drain its inbox and report.
    pub fn close(&self, id: SessionId) -> Result<(), ServiceError> {
        self.route(id)
            .send(SessionCommand::Close { id })
            .map_err(|_| ServiceError::Disconnected)
    }

    /// Requests a graceful drain of every shard.
    pub fn shutdown(&self) {
        for control in &self.controls {
            let _ = control.send(SessionCommand::Shutdown);
        }
    }
}

/// A running shard pool. Drop order matters only through
/// [`Service::join`], which consumes the service after a shutdown.
pub struct Service {
    handle: ServiceHandle,
    events: Receiver<SessionEvent>,
    workers: Vec<JoinHandle<u64>>,
}

impl Service {
    /// Spawns the shard pool.
    ///
    /// # Panics
    /// Panics if `config.shards` is zero.
    pub fn spawn(config: ServiceConfig) -> Self {
        assert!(config.shards >= 1, "service: need at least one shard");
        let (event_tx, event_rx) = sync_channel(config.event_capacity);
        let mut controls = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            let (control_tx, control_rx) = sync_channel(config.control_capacity);
            let worker = ShardWorker {
                index,
                control: control_rx,
                events: event_tx.clone(),
                model: config.model.clone(),
                pacing: config.pacing,
                period: config.period,
            };
            controls.push(control_tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("foreco-shard-{index}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard thread"),
            );
        }
        Self {
            handle: ServiceHandle { controls },
            events: event_rx,
            workers,
        }
    }

    /// A cloneable ingress handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Blocking receive of the next service event.
    pub fn next_event(&self) -> Option<SessionEvent> {
        self.events.recv().ok()
    }

    /// Shuts down and joins every shard, returning the total
    /// session-ticks each advanced. Buffered events are discarded.
    pub fn join(self) -> Vec<u64> {
        self.handle.shutdown();
        drop(self.handle);
        drop(self.events);
        self.workers
            .into_iter()
            .map(|w| w.join().expect("shard thread panicked"))
            .collect()
    }

    /// Batch driver: opens every spec, waits for all of them to
    /// complete, and returns the collected registry. Scripted sessions
    /// complete on their own; streamed specs are closed immediately (so
    /// they report after draining whatever was injected beforehand —
    /// use the handle/event API directly for live streaming).
    ///
    /// Events are drained *while* opening, so the batch size is not
    /// limited by the bounded control/event channels: with both full,
    /// a blocking open would deadlock against shards blocked on event
    /// sends. Opens therefore use `try_send` and fall back to draining.
    ///
    /// # Panics
    /// Panics if a shard dies before every session reports, or if two
    /// specs share an id (the second could never report).
    pub fn run_to_completion(self, specs: Vec<SessionSpec>) -> MetricsRegistry {
        let expected = specs.len();
        {
            let mut ids: Vec<SessionId> = specs.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                expected,
                "run_to_completion: duplicate session ids"
            );
        }
        let mut registry = MetricsRegistry::new();
        for spec in specs {
            let streamed = matches!(spec.source, crate::spec::SourceSpec::Streamed { .. });
            let id = spec.id;
            let control = self.handle.route(id);
            let mut pending = Box::new(spec);
            loop {
                match control.try_send(SessionCommand::Open(pending)) {
                    Ok(()) => break,
                    Err(TrySendError::Full(SessionCommand::Open(spec))) => {
                        // Shard backpressure: free event capacity so the
                        // shard can make progress, then retry.
                        pending = spec;
                        self.drain_into(&mut registry, true);
                    }
                    Err(_) => panic!("shard terminated while opening sessions"),
                }
            }
            if streamed {
                // Close may hit the same backpressure; same treatment.
                loop {
                    match control.try_send(SessionCommand::Close { id }) {
                        Ok(()) => break,
                        Err(TrySendError::Full(_)) => self.drain_into(&mut registry, true),
                        Err(_) => panic!("shard terminated while closing sessions"),
                    }
                }
            }
            self.drain_into(&mut registry, false);
        }
        while registry.len() < expected {
            match self.next_event() {
                Some(SessionEvent::Completed { report, .. }) => registry.record(report),
                Some(_) => {}
                None => panic!("service terminated with sessions outstanding"),
            }
        }
        self.join();
        registry
    }

    /// Drains buffered events into the registry without blocking; with
    /// `wait`, blocks briefly first so a backpressure retry loop is not
    /// a busy spin.
    fn drain_into(&self, registry: &mut MetricsRegistry, wait: bool) {
        if wait {
            if let Ok(SessionEvent::Completed { report, .. }) = self
                .events
                .recv_timeout(std::time::Duration::from_millis(1))
            {
                registry.record(report);
            }
        }
        while let Ok(event) = self.events.try_recv() {
            if let SessionEvent::Completed { report, .. } = event {
                registry.record(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, RecoverySpec, SourceSpec};
    use foreco_teleop::{Dataset, Skill};
    use std::sync::Arc;

    fn specs(n: u64) -> Vec<SessionSpec> {
        let dataset = Arc::new(Dataset::record(Skill::Inexperienced, 1, 0.02, 99).commands);
        (0..n)
            .map(|id| {
                SessionSpec::new(
                    id,
                    SourceSpec::Replayed(Arc::clone(&dataset)),
                    ChannelSpec::ControlledLoss {
                        burst_len: 5,
                        burst_prob: 0.01,
                        seed: id,
                    },
                    RecoverySpec::Baseline,
                )
            })
            .collect()
    }

    #[test]
    fn batch_run_collects_every_session() {
        let service = Service::spawn(ServiceConfig::with_shards(3));
        let registry = service.run_to_completion(specs(16));
        assert_eq!(registry.len(), 16);
        for id in 0..16 {
            assert!(registry.get(id).is_some(), "missing session {id}");
        }
    }

    #[test]
    fn batch_run_survives_tiny_channel_bounds() {
        // Regression: with bounded channels far smaller than the batch,
        // a blocking open loop deadlocks against shards blocked on
        // event sends. run_to_completion must interleave draining.
        let config = ServiceConfig {
            shards: 2,
            control_capacity: 2,
            event_capacity: 2,
            ..Default::default()
        };
        let service = Service::spawn(config);
        let registry = service.run_to_completion(specs(64));
        assert_eq!(registry.len(), 64);
    }

    #[test]
    fn duplicate_open_rejected_without_killing_live_session() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        let pair = specs(2);
        let mut duplicate = pair[0].clone();
        duplicate.id = pair[1].id; // collide with the second spec's id
        for spec in pair {
            handle.open(spec).unwrap();
        }
        handle.open(duplicate).unwrap();
        let (mut completed, mut duplicates) = (0, 0);
        while completed < 2 {
            match service.next_event().expect("service alive") {
                SessionEvent::Completed { .. } => completed += 1,
                SessionEvent::DuplicateSession { id } => {
                    assert_eq!(id, 1);
                    duplicates += 1;
                }
                _ => {}
            }
        }
        assert_eq!(
            duplicates, 1,
            "duplicate open must be rejected, not absorbed"
        );
        service.join();
    }

    #[test]
    fn try_open_returns_spec_on_backpressure() {
        // One shard, capacity-1 control channel, and no shard progress
        // guaranteed between sends: fill the channel until Backpressure
        // comes back, and verify the spec survives the round trip.
        let config = ServiceConfig {
            shards: 1,
            control_capacity: 1,
            ..Default::default()
        };
        let service = Service::spawn(config);
        let handle = service.handle();
        let mut bounced = None;
        for spec in specs(64) {
            if let Err((ServiceError::Backpressure, spec)) = handle.try_open(spec) {
                bounced = Some(spec);
                break;
            }
        }
        let bounced = bounced.expect("64 rapid opens at capacity 1 must bounce at least once");
        handle.open(bounced).expect("bounced spec still usable");
        service.join();
    }

    #[test]
    #[should_panic(expected = "duplicate session ids")]
    fn batch_run_rejects_duplicate_ids_upfront() {
        let mut batch = specs(4);
        batch[3].id = batch[0].id;
        Service::spawn(ServiceConfig::with_shards(2)).run_to_completion(batch);
    }

    #[test]
    fn events_report_opens_and_completions() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let handle = service.handle();
        for spec in specs(4) {
            handle.open(spec).unwrap();
        }
        let mut opened = 0;
        let mut completed = 0;
        while completed < 4 {
            match service.next_event().expect("service alive") {
                SessionEvent::Opened { .. } => opened += 1,
                SessionEvent::Completed { .. } => completed += 1,
                _ => {}
            }
        }
        assert_eq!(opened, 4);
        service.join();
    }

    #[test]
    fn unknown_session_reported() {
        let service = Service::spawn(ServiceConfig::with_shards(1));
        let handle = service.handle();
        handle.close(123).unwrap();
        match service.next_event().expect("event") {
            SessionEvent::UnknownSession { id } => assert_eq!(id, 123),
            other => panic!("expected UnknownSession, got {other:?}"),
        }
        service.join();
    }

    #[test]
    fn join_returns_shard_tick_totals() {
        let service = Service::spawn(ServiceConfig::with_shards(2));
        let registry = {
            let handle = service.handle();
            for spec in specs(6) {
                handle.open(spec).unwrap();
            }
            let mut registry = MetricsRegistry::new();
            while registry.len() < 6 {
                if let Some(SessionEvent::Completed { report, .. }) = service.next_event() {
                    registry.record(report);
                }
            }
            registry
        };
        let ticks = service.join();
        assert_eq!(ticks.len(), 2);
        let expected: u64 = registry.reports().iter().map(|r| r.ticks).sum();
        assert_eq!(ticks.iter().sum::<u64>(), expected);
    }
}
