//! FoReCo as a service: a sharded runtime hosting thousands of
//! concurrent recovery loops in one process.
//!
//! The paper frames FoReCo as edge-cloud infrastructure sitting between
//! many operators and many robots (Fig. 1); the offline crates reproduce
//! one loop at a time. This crate turns that loop into a *session* and
//! hosts arbitrarily many of them on a pool of shard threads:
//!
//! - [`Session`] bundles an operator command source, a channel
//!   impairment model, a [`foreco_core::RecoveryEngine`], and the PID
//!   robot driver — one hosted closed loop, exposed as a pollable state
//!   machine: every [`Session::advance`] reports a [`Wake`] verdict;
//! - [`SessionCommand`] / [`SessionEvent`] split control from
//!   observation over bounded `std::sync::mpsc` channels: callers talk
//!   through a [`ServiceHandle`], the service talks back through events;
//! - the shard pool ([`Service`]) hashes sessions onto `N` worker
//!   threads and advances each on a deterministic virtual 50 Hz clock —
//!   every run is reproducible, and per-session results are
//!   **bit-identical** to solo `run_closed_loop` runs regardless of
//!   shard count (pinned by the shard-invariance integration test);
//! - shards schedule **wake-on-work** by default
//!   ([`Scheduler::EventDriven`]): a run queue plus a hierarchical
//!   [`TimerWheel`], with idle streamed sessions parking at a *verified*
//!   f64 fixed point (engine in horizon-hold, PIDs settled) where
//!   [`Session::catch_up`] can later replay every skipped tick exactly
//!   — a mostly-idle fleet costs work proportional to its *active*
//!   sessions, bit-identically to the eager sweep ([`Scheduler::Eager`],
//!   kept as the property-tested ground truth);
//! - with a [`BalancerConfig`], a balancer thread watches per-shard
//!   load ([`ServiceHandle::shard_loads`], [`ShardLoadSummary`]) and
//!   evens out runnable sessions across shards through the
//!   bit-invisible migration mechanism;
//! - [`MetricsRegistry`] aggregates per-session
//!   [`foreco_core::RecoveryStats`] and task-space error into
//!   percentile summaries ([`ServiceSummary`]);
//! - backpressure is explicit and *is* the loss model: a streamed
//!   session's bounded inbox drops overflowing commands, and the
//!   recovery engine forecasts the gap — exactly the paper's loss event,
//!   produced by the service's own admission control;
//! - socket-fed sessions are **gated** ([`SourceSpec::Gated`], the
//!   `foreco-net` gateway's shape): the inbox holds explicit per-slot
//!   verdicts ([`GatedSlot`]: command, loss, or §VII-C late patch) and
//!   the virtual clock advances only as slots are consumed — an empty
//!   queue suspends time ([`Advance::Idle`]) instead of counting a
//!   miss, so the race between socket threads and shard clocks cannot
//!   change a single output bit;
//! - sessions are **portable**: [`Session::snapshot`] checkpoints a live
//!   loop (engine history, forecaster, PID state, channel RNG, tick,
//!   stats) to a versioned [`SessionSnapshot`] that
//!   [`Session::restore`] rehydrates anywhere — same shard, another
//!   shard ([`SessionCommand::Migrate`]'s drain→transfer→resume path),
//!   or another process ([`ServiceHandle::adopt`]) — with **bit-identical**
//!   continued output, pinned by the `tests/snapshot_roundtrip.rs`
//!   determinism suite.
//!
//! # Quickstart
//!
//! ```
//! use foreco_serve::{
//!     ChannelSpec, RecoverySpec, Service, ServiceConfig, SessionSpec, SharedForecaster,
//!     SourceSpec,
//! };
//! use foreco_core::RecoveryConfig;
//! use foreco_forecast::Var;
//! use foreco_robot::niryo_one;
//! use foreco_teleop::{Dataset, Skill};
//! use std::sync::Arc;
//!
//! // Train one VAR; share it across every session.
//! let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
//! let forecaster = SharedForecaster::new(Var::fit_differenced(&train, 5, 1e-6).unwrap());
//! let replay = Arc::new(Dataset::record(Skill::Inexperienced, 1, 0.02, 8).commands);
//!
//! let specs: Vec<SessionSpec> = (0..32)
//!     .map(|id| {
//!         SessionSpec::new(
//!             id,
//!             SourceSpec::Replayed(Arc::clone(&replay)),
//!             ChannelSpec::ControlledLoss { burst_len: 8, burst_prob: 0.01, seed: id },
//!             RecoverySpec::FoReCo {
//!                 forecaster: forecaster.clone(),
//!                 config: RecoveryConfig::for_model(&niryo_one()),
//!             },
//!         )
//!     })
//!     .collect();
//!
//! let registry = Service::spawn(ServiceConfig::with_shards(4)).run_to_completion(specs);
//! let summary = registry.summary().expect("sessions completed");
//! assert_eq!(summary.sessions, 32);
//! assert!(summary.rmse_mm.p99.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
mod batch;
pub mod clock;
pub mod inbox;
pub mod metrics;
pub mod protocol;
pub mod sched;
pub mod service;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod spec;
pub mod telemetry;

pub use archive::{
    FleetArchive, FleetSnapshotPart, PartFrames, TraceEntry, ARCHIVE_MAGIC, FLEET_ARCHIVE_VERSION,
};
pub use clock::{Pacing, VirtualClock, TICK_HZ, TICK_PERIOD};
pub use inbox::{BoundedInbox, GatedInbox, GatedInboxState, GatedSlot, InboxState, Offer};
pub use metrics::{
    IngressSummary, MetricsRegistry, PercentileSummary, ServiceSummary, ShardLoadSummary,
};
pub use protocol::{FleetPart, ServiceError, SessionCommand, SessionEvent};
pub use sched::{Scheduler, TimerWheel};
pub use service::{
    BalancerConfig, EventWait, FleetSnapshotReport, Service, ServiceConfig, ServiceHandle,
};
pub use session::{Advance, Session, SessionReport, Wake};
pub use shard::shard_of;
pub use snapshot::{
    FateRun, RestoreError, SessionSnapshot, SnapshotError, SourceState, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use spec::{ChannelSpec, RecoverySpec, SessionId, SessionSpec, SharedForecaster, SourceSpec};
pub use telemetry::{
    render_prometheus, FleetTelemetry, IngressTotals, ShardTelemetrySummary, Telemetry,
};

/// Re-exported so `ServiceConfig::lane_layout` is nameable without a
/// direct `foreco_forecast` dependency.
pub use foreco_forecast::LaneLayout;
