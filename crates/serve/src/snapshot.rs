//! Session checkpointing: the versioned, serialisable form of a live
//! [`Session`](crate::Session).
//!
//! FoReCo's recovery is *stateful* — the forecaster's history window,
//! the engine's outage counters, the PID integrators, and the channel's
//! RNG position are what turn losses into imputed commands — so moving
//! a session between shards or across a process restart without
//! changing a single output means capturing **all** of it. A
//! [`SessionSnapshot`] is that capture:
//!
//! | layer | state captured |
//! |---|---|
//! | session  | id, virtual tick, period, error accumulators, miss count |
//! | source   | scripted: remaining script + pre-drawn fates; streamed: inbox queue + counters, channel spec + RNG words, buffered fates, closing flag |
//! | recovery | engine history + forecast slots + counters + config + concrete forecaster ([`foreco_core::EngineSnapshot`]) |
//! | robot    | both drivers' joints, held command, PID integral/derivative memory ([`foreco_robot::DriverState`]) |
//! | pending  | late commands awaiting §VII-C history patches |
//!
//! # Format and versioning
//!
//! [`SessionSnapshot::to_bytes`] renders JSON through the in-tree serde
//! shim; floats use shortest-round-trip formatting (bit-exact),
//! 64-bit integers beyond ±2⁵³ (raw RNG words) are decimal strings.
//! Every snapshot starts with a `version` field holding
//! [`SNAPSHOT_VERSION`]; [`SessionSnapshot::from_bytes`] rejects other
//! versions with [`RestoreError::Version`] instead of misreading a
//! future layout. Bump the constant whenever a field changes meaning,
//! and keep decoding old versions explicit (a `match` on the version),
//! never implicit.
//!
//! **v1 → v2.** Version 2 adds the dedup-aware
//! [`SourceState::ScriptedRef`] variant: instead of materialising the
//! full script per session, a scripted source may serialise its trace's
//! content address ([`foreco_store::ObjectId`]) plus run-length-encoded
//! fates, with the trace payload carried once per
//! [`FleetArchive`](crate::FleetArchive) rather than once per session.
//! Every v1 layout is also a legal v2 layout (single-session
//! [`Session::snapshot`](crate::Session::snapshot) still writes the
//! self-contained [`SourceState::Scripted`] form, byte-stable with v1
//! apart from the version field), so v1 decoding is the same parse
//! behind an explicit version `match`. A `ScriptedRef` snapshot is only
//! restorable with the referenced trace at hand —
//! [`Session::restore_stored`](crate::Session::restore_stored) takes
//! the store claim, and plain `restore` rejects the variant.
//!
//! # Determinism contract
//!
//! Restoring a snapshot — on the same shard, another shard, or another
//! process — and running the session to completion yields a
//! [`SessionReport`](crate::SessionReport) **bit-identical** to the
//! uninterrupted run's, including `f64` bit patterns of the RMSE and
//! deviation accumulators. `tests/snapshot_roundtrip.rs` pins this with
//! a property suite over random specs, seeds, and snapshot ticks.
//!
//! **Parked sessions** need no extra fields: before a shard checkpoints
//! (or migrates) a parked session it replays the idle backlog with
//! [`Session::catch_up`](crate::Session::catch_up), so the snapshot is
//! exactly what an eager shard would have produced at that pass — tick,
//! accumulators, driver clocks, engine counters, and any `pending_late`
//! entries included. On restore, the receiving shard re-derives the
//! park verdict from [`Session::wake_hint`](crate::Session::wake_hint)
//! (parked-ness is a property of the state, not a stored flag) and the
//! session resumes bit-identically — the parked-snapshot property in
//! `tests/snapshot_roundtrip.rs` pins that round trip too.

use crate::inbox::InboxState;
use crate::spec::{ChannelSpec, SessionId};
use foreco_core::channel::Arrival;
use foreco_core::EngineSnapshot;
use foreco_robot::{DriverConfig, DriverState};
use foreco_store::ObjectId;
use serde::{Deserialize, Serialize};

/// Current snapshot format version (see the module docs for the
/// versioning policy). v2 added [`SourceState::ScriptedRef`]; v1
/// decoding is retained.
pub const SNAPSHOT_VERSION: u32 = 2;

/// One run of identical channel fates in a [`SourceState::ScriptedRef`]
/// source — the run-length encoding that keeps per-session archive
/// entries small (a fate stream is overwhelmingly `OnTime` runs broken
/// by short loss bursts).
///
/// The encoding is lossless at the bit level: runs are grouped by fate
/// *bit pattern* (`Late` delays compare via [`f64::to_bits`]), so
/// expansion reproduces the original stream exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FateRun {
    /// The repeated fate.
    pub fate: Arrival,
    /// How many consecutive slots share it.
    pub count: u64,
}

/// True when two fates are the same bits (the run-grouping equality;
/// `f64::eq` would merge `Late(-0.0)` into `Late(0.0)` runs).
fn same_fate(a: Arrival, b: Arrival) -> bool {
    match (a, b) {
        (Arrival::OnTime, Arrival::OnTime) | (Arrival::Lost, Arrival::Lost) => true,
        (Arrival::Late(x), Arrival::Late(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// Run-length-encodes a fate stream (see [`FateRun`]).
pub(crate) fn compress_fates(fates: &[Arrival]) -> Vec<FateRun> {
    let mut runs: Vec<FateRun> = Vec::new();
    for &fate in fates {
        match runs.last_mut() {
            Some(run) if same_fate(run.fate, fate) => run.count += 1,
            _ => runs.push(FateRun { fate, count: 1 }),
        }
    }
    runs
}

/// Expands run-length-encoded fates back to the per-slot stream.
pub(crate) fn expand_fates(runs: &[FateRun]) -> Vec<Arrival> {
    let total: u64 = runs.iter().map(|r| r.count).sum();
    let mut fates = Vec::with_capacity(total as usize);
    for run in runs {
        for _ in 0..run.count {
            fates.push(run.fate);
        }
    }
    fates
}

/// Serialised command source of a mid-run session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceState {
    /// A scripted (recorded/replayed) source: the full script and its
    /// pre-drawn per-command fates. The virtual tick indexes into both,
    /// so no separate cursor is needed.
    Scripted {
        /// The command script, materialised (recorded sources are
        /// rendered to commands at open time, so the snapshot does not
        /// depend on the operator model).
        commands: Vec<Vec<f64>>,
        /// Pre-drawn channel outcome per command.
        fates: Vec<Arrival>,
    },
    /// A scripted source by reference (v2): the trace's content address
    /// in shared storage plus run-length-encoded fates. The script
    /// itself travels once per archive (or lives in a `foreco-store`
    /// [`Storage`](foreco_store::Storage)), not once per session — the
    /// encoding behind `ServiceHandle::snapshot_fleet`'s O(traces)
    /// instead of O(sessions × trace) archives.
    ScriptedRef {
        /// Content address of the command script.
        trace: ObjectId,
        /// Pre-drawn channel outcomes, run-length encoded.
        fates: Vec<FateRun>,
    },
    /// A flow-controlled socket-ingress source (`SourceSpec::Gated`):
    /// the queued slot timeline, the (usually `Ideal`) composed
    /// impairment model, and the closing flag. Gated sessions park with
    /// their virtual clock *suspended*, so — like every other source —
    /// no extra scheduling state needs capturing: parked-ness is
    /// re-derived from the queue on restore.
    Gated {
        /// Queued ingress slots and accept/drop counters.
        inbox: crate::inbox::GatedInboxState,
        /// The composed impairment model's construction parameters.
        channel: Box<ChannelSpec>,
        /// The channel's raw RNG words at snapshot time.
        channel_rng: Option<[u64; 4]>,
        /// Fates drawn in chunks but not yet consumed, oldest first.
        fate_buf: Vec<Arrival>,
        /// Whether the session was already draining toward completion.
        closing: bool,
    },
    /// A live streamed source.
    Streamed {
        /// Queued commands and accept/drop counters.
        inbox: InboxState,
        /// The impairment model's construction parameters (boxed: a
        /// jammed-link spec is far larger than the scripted variant).
        channel: Box<ChannelSpec>,
        /// The channel's raw RNG words at snapshot time (`None` for
        /// stateless channels such as `ChannelSpec::Ideal`).
        channel_rng: Option<[u64; 4]>,
        /// Fates drawn in chunks but not yet consumed, oldest first.
        fate_buf: Vec<Arrival>,
        /// Whether the session was already draining toward completion.
        closing: bool,
    },
}

/// Complete serialisable state of one live session (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Session id (also the default shard-placement input).
    pub id: SessionId,
    /// Virtual tick at snapshot time.
    pub tick: u64,
    /// Virtual tick period `Ω` in seconds.
    pub period: f64,
    /// Driver configuration (PID gains, period).
    pub driver: DriverConfig,
    /// Deadline misses so far.
    pub misses: usize,
    /// Running sum of squared task-space deviation (mm²).
    pub acc_sq_mm: f64,
    /// Worst instantaneous deviation (mm) so far.
    pub worst_mm: f64,
    /// Command source state.
    pub source: SourceState,
    /// Recovery engine state (`None` for baseline sessions).
    pub engine: Option<EngineSnapshot>,
    /// Late commands awaiting delivery: `(arrival time, tick index,
    /// payload)`, mirroring the session's pending list (§VII-C).
    pub pending_late: Vec<(f64, usize, Vec<f64>)>,
    /// Reference (perfect-channel) driver state.
    pub reference: DriverState,
    /// Executed (impaired + recovered) driver state.
    pub executed: DriverState,
}

impl SessionSnapshot {
    /// Serialises the snapshot to its portable byte form (JSON, UTF-8).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("snapshot serialisation is infallible")
            .into_bytes()
    }

    /// Parses a snapshot previously produced by
    /// [`SessionSnapshot::to_bytes`].
    ///
    /// # Errors
    /// [`RestoreError::Decode`] on malformed bytes,
    /// [`RestoreError::Version`] on a format version this build does not
    /// understand.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| RestoreError::Decode("snapshot is not UTF-8".into()))?;
        let snap: SessionSnapshot =
            serde_json::from_str(text).map_err(|e| RestoreError::Decode(e.to_string()))?;
        match snap.version {
            // v1: same field layout as v2 minus `ScriptedRef`, which a
            // v1 writer cannot have produced — the parse above already
            // is the v1 decoder. Restore validation enforces the
            // variant restriction.
            1 => Ok(snap),
            SNAPSHOT_VERSION => Ok(snap),
            found => Err(RestoreError::Version {
                found,
                expected: SNAPSHOT_VERSION,
            }),
        }
    }

    /// Converts a [`SourceState::ScriptedRef`] snapshot into the
    /// self-contained [`SourceState::Scripted`] form by materialising
    /// `commands` (the referenced trace) into it — the bridge from an
    /// archive entry back to a snapshot `Session::restore` accepts.
    /// Non-`ScriptedRef` snapshots are returned unchanged.
    ///
    /// # Errors
    /// [`RestoreError::Invalid`] when `commands` is not the trace the
    /// snapshot references (content address mismatch).
    pub fn materialized(&self, commands: &[Vec<f64>]) -> Result<SessionSnapshot, RestoreError> {
        let mut snap = self.clone();
        if let SourceState::ScriptedRef { trace, fates } = &snap.source {
            let actual = foreco_store::trace_object_id(commands);
            if actual != *trace {
                return Err(RestoreError::Invalid(format!(
                    "trace {actual} is not the script this snapshot references ({trace})"
                )));
            }
            snap.source = SourceState::Scripted {
                commands: commands.to_vec(),
                fates: expand_fates(fates),
            };
        }
        Ok(snap)
    }
}

/// Why exporting a session snapshot failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The session's forecaster has no serialisable form (currently only
    /// seq2seq engines).
    UnsupportedForecaster {
        /// Display name of the offending forecaster.
        name: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedForecaster { name } => {
                write!(
                    f,
                    "session snapshot: forecaster `{name}` is not serialisable"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why rehydrating a session from a snapshot failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes are not a well-formed snapshot.
    Decode(String),
    /// The snapshot's format version does not match this build's.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads/writes.
        expected: u32,
    },
    /// The snapshot decoded but violates session invariants (wrong
    /// dimensions for the target arm model, inconsistent lengths, …).
    Invalid(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Decode(reason) => write!(f, "session restore: {reason}"),
            RestoreError::Version { found, expected } => write!(
                f,
                "session restore: snapshot version {found}, this build reads {expected}"
            ),
            RestoreError::Invalid(reason) => {
                write!(f, "session restore: invalid snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<foreco_core::EngineStateError> for RestoreError {
    fn from(e: foreco_core::EngineStateError) -> Self {
        RestoreError::Invalid(e.to_string())
    }
}
