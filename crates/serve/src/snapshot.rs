//! Session checkpointing: the versioned, serialisable form of a live
//! [`Session`](crate::Session).
//!
//! FoReCo's recovery is *stateful* — the forecaster's history window,
//! the engine's outage counters, the PID integrators, and the channel's
//! RNG position are what turn losses into imputed commands — so moving
//! a session between shards or across a process restart without
//! changing a single output means capturing **all** of it. A
//! [`SessionSnapshot`] is that capture:
//!
//! | layer | state captured |
//! |---|---|
//! | session  | id, virtual tick, period, error accumulators, miss count |
//! | source   | scripted: remaining script + pre-drawn fates; streamed: inbox queue + counters, channel spec + RNG words, buffered fates, closing flag |
//! | recovery | engine history + forecast slots + counters + config + concrete forecaster ([`foreco_core::EngineSnapshot`]) |
//! | robot    | both drivers' joints, held command, PID integral/derivative memory ([`foreco_robot::DriverState`]) |
//! | pending  | late commands awaiting §VII-C history patches |
//!
//! # Format and versioning
//!
//! [`SessionSnapshot::to_bytes`] writes the **v3 binary frame**: a
//! length-prefixed little-endian layout in the style of the wire codec
//! (`foreco-net`'s `wire.rs`) — 4-byte magic [`SNAPSHOT_MAGIC`], a
//! `u32` format version, then every field in a fixed order with `f64`s
//! carried as raw [`f64::to_bits`] words (bit-lossless by construction,
//! `-0.0` and NaN payloads included) and fate streams kept in their
//! run-length-encoded form. Decoding never panics: every malformed
//! shape maps to a typed [`RestoreError`], pinned by the
//! `tests/snapshot_codec.rs` property suite.
//!
//! Every frame carries its format version; [`SessionSnapshot::from_bytes`]
//! rejects versions this build does not write with
//! [`RestoreError::Version`] instead of misreading a future layout.
//! Bump [`SNAPSHOT_VERSION`] whenever a field changes meaning, and keep
//! decoding old versions explicit (a `match` on the version), never
//! implicit.
//!
//! **v1/v2 → v3.** Versions 1 and 2 were JSON documents rendered
//! through the in-tree serde shim (shortest-round-trip floats, 64-bit
//! integers beyond ±2⁵³ as decimal strings). v2 added the dedup-aware
//! [`SourceState::ScriptedRef`] variant (content address + RLE fates in
//! place of the materialised script). Both remain first-class decode
//! arms: [`SessionSnapshot::from_bytes`] sniffs the leading byte — a
//! `{` is a legacy JSON document parsed behind an explicit version
//! `match` (`1 | 2`), anything else must open with the binary magic.
//! [`SessionSnapshot::to_json_bytes`] still *writes* the legacy JSON
//! form (stamped v2, or v1 when the snapshot already carries version 1)
//! for pre-v3 control-plane peers and the committed golden fixtures.
//!
//! The encoder is allocation-disciplined for fleet use:
//! [`SessionSnapshot::encode_into`] appends to a caller-owned scratch
//! buffer, so a shard checkpointing thousands of sessions reuses one
//! growing `Vec<u8>` — steady state allocates only when the scratch
//! grows or a forecaster/jammed-channel sub-blob renders (those two
//! cold config payloads ride as length-prefixed canonical JSON inside
//! the frame; their codec is the store's content-address codec, so the
//! bytes are bit-exact too).
//!
//! # Determinism contract
//!
//! Restoring a snapshot — on the same shard, another shard, or another
//! process — and running the session to completion yields a
//! [`SessionReport`](crate::SessionReport) **bit-identical** to the
//! uninterrupted run's, including `f64` bit patterns of the RMSE and
//! deviation accumulators. `tests/snapshot_roundtrip.rs` pins this with
//! a property suite over random specs, seeds, and snapshot ticks.
//!
//! **Parked sessions** need no extra fields: before a shard checkpoints
//! (or migrates) a parked session it replays the idle backlog with
//! [`Session::catch_up`](crate::Session::catch_up), so the snapshot is
//! exactly what an eager shard would have produced at that pass — tick,
//! accumulators, driver clocks, engine counters, and any `pending_late`
//! entries included. On restore, the receiving shard re-derives the
//! park verdict from [`Session::wake_hint`](crate::Session::wake_hint)
//! (parked-ness is a property of the state, not a stored flag) and the
//! session resumes bit-identically — the parked-snapshot property in
//! `tests/snapshot_roundtrip.rs` pins that round trip too.

use crate::inbox::{GatedInboxState, GatedSlot, InboxState};
use crate::spec::{ChannelSpec, SessionId};
use foreco_core::channel::Arrival;
use foreco_core::{EngineSnapshot, RecoveryConfig, RecoveryStats};
use foreco_forecast::ForecasterState;
use foreco_robot::{DriverConfig, DriverState, PidGains, PidState};
use foreco_store::ObjectId;
use serde::{Deserialize, Serialize};

/// Current snapshot format version (see the module docs for the
/// versioning policy). v2 added [`SourceState::ScriptedRef`]; v3 moved
/// the frame from JSON to the length-prefixed binary layout. v1/v2 JSON
/// decoding is retained behind explicit `match` arms.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Leading magic of every binary (v3+) snapshot frame. Deliberately not
/// `{`: the decoder dispatches legacy JSON documents on that byte.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FSNP";

/// One run of identical channel fates in a [`SourceState::ScriptedRef`]
/// source — the run-length encoding that keeps per-session archive
/// entries small (a fate stream is overwhelmingly `OnTime` runs broken
/// by short loss bursts).
///
/// The encoding is lossless at the bit level: runs are grouped by fate
/// *bit pattern* (`Late` delays compare via [`f64::to_bits`]), so
/// expansion reproduces the original stream exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FateRun {
    /// The repeated fate.
    pub fate: Arrival,
    /// How many consecutive slots share it.
    pub count: u64,
}

/// True when two fates are the same bits (the run-grouping equality;
/// `f64::eq` would merge `Late(-0.0)` into `Late(0.0)` runs).
fn same_fate(a: Arrival, b: Arrival) -> bool {
    match (a, b) {
        (Arrival::OnTime, Arrival::OnTime) | (Arrival::Lost, Arrival::Lost) => true,
        (Arrival::Late(x), Arrival::Late(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// Run-length-encodes a fate stream (see [`FateRun`]).
pub(crate) fn compress_fates(fates: &[Arrival]) -> Vec<FateRun> {
    let mut runs: Vec<FateRun> = Vec::new();
    for &fate in fates {
        match runs.last_mut() {
            Some(run) if same_fate(run.fate, fate) => run.count += 1,
            _ => runs.push(FateRun { fate, count: 1 }),
        }
    }
    runs
}

/// Expands run-length-encoded fates back to the per-slot stream.
pub(crate) fn expand_fates(runs: &[FateRun]) -> Vec<Arrival> {
    let total: u64 = runs.iter().map(|r| r.count).sum();
    let mut fates = Vec::with_capacity(total as usize);
    for run in runs {
        for _ in 0..run.count {
            fates.push(run.fate);
        }
    }
    fates
}

/// Serialised command source of a mid-run session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceState {
    /// A scripted (recorded/replayed) source: the full script and its
    /// pre-drawn per-command fates. The virtual tick indexes into both,
    /// so no separate cursor is needed.
    Scripted {
        /// The command script, materialised (recorded sources are
        /// rendered to commands at open time, so the snapshot does not
        /// depend on the operator model).
        commands: Vec<Vec<f64>>,
        /// Pre-drawn channel outcome per command.
        fates: Vec<Arrival>,
    },
    /// A scripted source by reference (v2): the trace's content address
    /// in shared storage plus run-length-encoded fates. The script
    /// itself travels once per archive (or lives in a `foreco-store`
    /// [`Storage`](foreco_store::Storage)), not once per session — the
    /// encoding behind `ServiceHandle::snapshot_fleet`'s O(traces)
    /// instead of O(sessions × trace) archives.
    ScriptedRef {
        /// Content address of the command script.
        trace: ObjectId,
        /// Pre-drawn channel outcomes, run-length encoded.
        fates: Vec<FateRun>,
    },
    /// A flow-controlled socket-ingress source (`SourceSpec::Gated`):
    /// the queued slot timeline, the (usually `Ideal`) composed
    /// impairment model, and the closing flag. Gated sessions park with
    /// their virtual clock *suspended*, so — like every other source —
    /// no extra scheduling state needs capturing: parked-ness is
    /// re-derived from the queue on restore.
    Gated {
        /// Queued ingress slots and accept/drop counters.
        inbox: crate::inbox::GatedInboxState,
        /// The composed impairment model's construction parameters.
        channel: Box<ChannelSpec>,
        /// The channel's raw RNG words at snapshot time.
        channel_rng: Option<[u64; 4]>,
        /// Fates drawn in chunks but not yet consumed, oldest first.
        fate_buf: Vec<Arrival>,
        /// Whether the session was already draining toward completion.
        closing: bool,
    },
    /// A live streamed source.
    Streamed {
        /// Queued commands and accept/drop counters.
        inbox: InboxState,
        /// The impairment model's construction parameters (boxed: a
        /// jammed-link spec is far larger than the scripted variant).
        channel: Box<ChannelSpec>,
        /// The channel's raw RNG words at snapshot time (`None` for
        /// stateless channels such as `ChannelSpec::Ideal`).
        channel_rng: Option<[u64; 4]>,
        /// Fates drawn in chunks but not yet consumed, oldest first.
        fate_buf: Vec<Arrival>,
        /// Whether the session was already draining toward completion.
        closing: bool,
    },
}

/// Complete serialisable state of one live session (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Session id (also the default shard-placement input).
    pub id: SessionId,
    /// Virtual tick at snapshot time.
    pub tick: u64,
    /// Virtual tick period `Ω` in seconds.
    pub period: f64,
    /// Driver configuration (PID gains, period).
    pub driver: DriverConfig,
    /// Deadline misses so far.
    pub misses: usize,
    /// Running sum of squared task-space deviation (mm²).
    pub acc_sq_mm: f64,
    /// Worst instantaneous deviation (mm) so far.
    pub worst_mm: f64,
    /// Command source state.
    pub source: SourceState,
    /// Recovery engine state (`None` for baseline sessions).
    pub engine: Option<EngineSnapshot>,
    /// Late commands awaiting delivery: `(arrival time, tick index,
    /// payload)`, mirroring the session's pending list (§VII-C).
    pub pending_late: Vec<(f64, usize, Vec<f64>)>,
    /// Reference (perfect-channel) driver state.
    pub reference: DriverState,
    /// Executed (impaired + recovered) driver state.
    pub executed: DriverState,
}

// ---------------------------------------------------------------------
// Binary primitives (v3 frame)
// ---------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &[f64]) {
    put_u64(buf, row.len() as u64);
    for &v in row {
        put_f64(buf, v);
    }
}

pub(crate) fn put_rows(buf: &mut Vec<u8>, rows: &[Vec<f64>]) {
    put_u64(buf, rows.len() as u64);
    for row in rows {
        put_row(buf, row);
    }
}

pub(crate) fn put_arrival(buf: &mut Vec<u8>, fate: Arrival) {
    match fate {
        Arrival::OnTime => put_u8(buf, 0),
        Arrival::Late(delay) => {
            put_u8(buf, 1);
            put_f64(buf, delay);
        }
        Arrival::Lost => put_u8(buf, 2),
    }
}

pub(crate) fn put_fates(buf: &mut Vec<u8>, fates: &[Arrival]) {
    put_u64(buf, fates.len() as u64);
    for &fate in fates {
        put_arrival(buf, fate);
    }
}

pub(crate) fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_f64(buf, v);
        }
    }
}

/// A length-prefixed canonical-JSON sub-blob: the carrier for the two
/// cold config payloads ([`ForecasterState`], a jammed [`ChannelSpec`])
/// whose concrete types live in other crates. The in-tree JSON codec is
/// bit-exact for every `f64` pattern, so the sub-blob inherits the
/// frame's losslessness.
pub(crate) fn put_json_blob<T: Serialize>(buf: &mut Vec<u8>, value: &T) {
    let json = serde_json::to_string(value).expect("sub-blob serialisation is infallible");
    put_u64(buf, json.len() as u64);
    buf.extend_from_slice(json.as_bytes());
}

/// Cursor over a binary frame. Every read is bounds-checked into a
/// typed [`RestoreError`]; malformed input never panics.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.remaining() < n {
            return Err(RestoreError::Truncated {
                need: self.pos + n,
                got: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, RestoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self, what: &'static str) -> Result<bool, RestoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            found => Err(RestoreError::BadTag { what, found }),
        }
    }

    /// A `u64` count whose elements each occupy at least `elem_min`
    /// bytes of the remaining frame — the sanity cap that turns a
    /// corrupted length word into [`RestoreError::Oversized`] instead of
    /// a multi-gigabyte allocation.
    pub(crate) fn len(
        &mut self,
        what: &'static str,
        elem_min: usize,
    ) -> Result<usize, RestoreError> {
        let declared = self.u64()?;
        let limit = (self.remaining() / elem_min.max(1)) as u64;
        if declared > limit {
            return Err(RestoreError::Oversized {
                what,
                declared,
                limit,
            });
        }
        Ok(declared as usize)
    }

    pub(crate) fn usize(&mut self, what: &'static str) -> Result<usize, RestoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| RestoreError::Oversized {
            what,
            declared: v,
            limit: usize::MAX as u64,
        })
    }

    pub(crate) fn row(&mut self) -> Result<Vec<f64>, RestoreError> {
        let n = self.len("joint row", 8)?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.f64()?);
        }
        Ok(row)
    }

    pub(crate) fn rows(&mut self) -> Result<Vec<Vec<f64>>, RestoreError> {
        let n = self.len("command rows", 8)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(self.row()?);
        }
        Ok(rows)
    }

    pub(crate) fn arrival(&mut self) -> Result<Arrival, RestoreError> {
        match self.u8()? {
            0 => Ok(Arrival::OnTime),
            1 => Ok(Arrival::Late(self.f64()?)),
            2 => Ok(Arrival::Lost),
            found => Err(RestoreError::BadTag {
                what: "arrival fate",
                found,
            }),
        }
    }

    pub(crate) fn fates(&mut self) -> Result<Vec<Arrival>, RestoreError> {
        let n = self.len("fate stream", 1)?;
        let mut fates = Vec::with_capacity(n);
        for _ in 0..n {
            fates.push(self.arrival()?);
        }
        Ok(fates)
    }

    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>, RestoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            found => Err(RestoreError::BadTag {
                what: "optional f64",
                found,
            }),
        }
    }

    pub(crate) fn json_blob<T: Deserialize>(
        &mut self,
        what: &'static str,
    ) -> Result<T, RestoreError> {
        let n = self.len(what, 1)?;
        let bytes = self.take(n)?;
        let text = std::str::from_utf8(bytes)
            .map_err(|_| RestoreError::Decode(format!("{what}: sub-blob is not UTF-8")))?;
        serde_json::from_str(text).map_err(|e| RestoreError::Decode(format!("{what}: {e}")))
    }
}

fn put_driver_state(buf: &mut Vec<u8>, state: &DriverState) {
    put_row(buf, &state.joints);
    put_row(buf, &state.last_command);
    put_f64(buf, state.t);
    put_u64(buf, state.pids.len() as u64);
    for pid in &state.pids {
        put_f64(buf, pid.integral);
        put_opt_f64(buf, pid.prev_error);
    }
}

fn read_driver_state(r: &mut Reader<'_>) -> Result<DriverState, RestoreError> {
    let joints = r.row()?;
    let last_command = r.row()?;
    let t = r.f64()?;
    let n = r.len("pid states", 9)?;
    let mut pids = Vec::with_capacity(n);
    for _ in 0..n {
        pids.push(PidState {
            integral: r.f64()?,
            prev_error: r.opt_f64()?,
        });
    }
    Ok(DriverState {
        joints,
        last_command,
        t,
        pids,
    })
}

fn put_channel(buf: &mut Vec<u8>, channel: &ChannelSpec) {
    match channel {
        ChannelSpec::Ideal => put_u8(buf, 0),
        ChannelSpec::ControlledLoss {
            burst_len,
            burst_prob,
            seed,
        } => {
            put_u8(buf, 1);
            put_u64(buf, *burst_len as u64);
            put_f64(buf, *burst_prob);
            put_u64(buf, *seed);
        }
        // The jammed-link spec nests the full 802.11 configuration
        // (foreco-wifi types): it rides as a canonical-JSON sub-blob
        // rather than freezing that crate's layout into this frame.
        spec @ ChannelSpec::Jammed { .. } => {
            put_u8(buf, 2);
            put_json_blob(buf, spec);
        }
    }
}

fn read_channel(r: &mut Reader<'_>) -> Result<ChannelSpec, RestoreError> {
    match r.u8()? {
        0 => Ok(ChannelSpec::Ideal),
        1 => Ok(ChannelSpec::ControlledLoss {
            burst_len: r.usize("burst_len")?,
            burst_prob: r.f64()?,
            seed: r.u64()?,
        }),
        2 => r.json_blob::<ChannelSpec>("channel spec"),
        found => Err(RestoreError::BadTag {
            what: "channel spec",
            found,
        }),
    }
}

fn put_rng(buf: &mut Vec<u8>, rng: &Option<[u64; 4]>) {
    match rng {
        None => put_u8(buf, 0),
        Some(words) => {
            put_u8(buf, 1);
            for &w in words {
                put_u64(buf, w);
            }
        }
    }
}

fn read_rng(r: &mut Reader<'_>) -> Result<Option<[u64; 4]>, RestoreError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some([r.u64()?, r.u64()?, r.u64()?, r.u64()?])),
        found => Err(RestoreError::BadTag {
            what: "channel rng",
            found,
        }),
    }
}

fn put_gated_slot(buf: &mut Vec<u8>, slot: &GatedSlot) {
    match slot {
        GatedSlot::Command(row) => {
            put_u8(buf, 0);
            put_row(buf, row);
        }
        GatedSlot::Miss { count } => {
            put_u8(buf, 1);
            put_u64(buf, *count);
        }
        GatedSlot::Late { command, age } => {
            put_u8(buf, 2);
            put_row(buf, command);
            put_u64(buf, *age as u64);
        }
    }
}

fn read_gated_slot(r: &mut Reader<'_>) -> Result<GatedSlot, RestoreError> {
    match r.u8()? {
        0 => Ok(GatedSlot::Command(r.row()?)),
        1 => Ok(GatedSlot::Miss { count: r.u64()? }),
        2 => Ok(GatedSlot::Late {
            command: r.row()?,
            age: r.usize("late age")?,
        }),
        found => Err(RestoreError::BadTag {
            what: "gated slot",
            found,
        }),
    }
}

fn put_source(buf: &mut Vec<u8>, source: &SourceState) {
    match source {
        SourceState::Scripted { commands, fates } => {
            put_u8(buf, 0);
            put_rows(buf, commands);
            put_fates(buf, fates);
        }
        SourceState::ScriptedRef { trace, fates } => {
            put_u8(buf, 1);
            put_u64(buf, (trace.as_u128() >> 64) as u64);
            put_u64(buf, trace.as_u128() as u64);
            put_u64(buf, fates.len() as u64);
            for run in fates {
                put_arrival(buf, run.fate);
                put_u64(buf, run.count);
            }
        }
        SourceState::Gated {
            inbox,
            channel,
            channel_rng,
            fate_buf,
            closing,
        } => {
            put_u8(buf, 2);
            put_u64(buf, inbox.capacity as u64);
            put_u64(buf, inbox.queue.len() as u64);
            for slot in &inbox.queue {
                put_gated_slot(buf, slot);
            }
            put_u64(buf, inbox.accepted);
            put_u64(buf, inbox.dropped);
            put_channel(buf, channel);
            put_rng(buf, channel_rng);
            put_fates(buf, fate_buf);
            put_bool(buf, *closing);
        }
        SourceState::Streamed {
            inbox,
            channel,
            channel_rng,
            fate_buf,
            closing,
        } => {
            put_u8(buf, 3);
            put_u64(buf, inbox.capacity as u64);
            put_rows(buf, &inbox.queue);
            put_u64(buf, inbox.accepted);
            put_u64(buf, inbox.dropped);
            put_channel(buf, channel);
            put_rng(buf, channel_rng);
            put_fates(buf, fate_buf);
            put_bool(buf, *closing);
        }
    }
}

fn read_source(r: &mut Reader<'_>) -> Result<SourceState, RestoreError> {
    match r.u8()? {
        0 => Ok(SourceState::Scripted {
            commands: r.rows()?,
            fates: r.fates()?,
        }),
        1 => {
            let hi = r.u64()?;
            let lo = r.u64()?;
            let trace = ObjectId::from_u128(((hi as u128) << 64) | lo as u128);
            let n = r.len("fate runs", 9)?;
            let mut fates = Vec::with_capacity(n);
            for _ in 0..n {
                fates.push(FateRun {
                    fate: r.arrival()?,
                    count: r.u64()?,
                });
            }
            Ok(SourceState::ScriptedRef { trace, fates })
        }
        2 => {
            let capacity = r.usize("gated inbox capacity")?;
            let n = r.len("gated inbox queue", 1)?;
            let mut queue = Vec::with_capacity(n);
            for _ in 0..n {
                queue.push(read_gated_slot(r)?);
            }
            let accepted = r.u64()?;
            let dropped = r.u64()?;
            Ok(SourceState::Gated {
                inbox: GatedInboxState {
                    capacity,
                    queue,
                    accepted,
                    dropped,
                },
                channel: Box::new(read_channel(r)?),
                channel_rng: read_rng(r)?,
                fate_buf: r.fates()?,
                closing: r.bool("gated closing flag")?,
            })
        }
        3 => {
            let capacity = r.usize("inbox capacity")?;
            let queue = r.rows()?;
            let accepted = r.u64()?;
            let dropped = r.u64()?;
            Ok(SourceState::Streamed {
                inbox: InboxState {
                    capacity,
                    queue,
                    accepted,
                    dropped,
                },
                channel: Box::new(read_channel(r)?),
                channel_rng: read_rng(r)?,
                fate_buf: r.fates()?,
                closing: r.bool("streamed closing flag")?,
            })
        }
        found => Err(RestoreError::BadTag {
            what: "source state",
            found,
        }),
    }
}

fn put_engine(buf: &mut Vec<u8>, engine: &EngineSnapshot) {
    put_json_blob(buf, &engine.forecaster);
    let config = &engine.config;
    put_f64(buf, config.period);
    put_bool(buf, config.use_late_commands);
    match &config.limits {
        None => put_u8(buf, 0),
        Some(limits) => {
            put_u8(buf, 1);
            put_u64(buf, limits.len() as u64);
            for &(lo, hi) in limits {
                put_f64(buf, lo);
                put_f64(buf, hi);
            }
        }
    }
    match config.max_consecutive_forecasts {
        None => put_u8(buf, 0),
        Some(n) => {
            put_u8(buf, 1);
            put_u64(buf, n as u64);
        }
    }
    put_opt_f64(buf, config.max_step);
    put_bool(buf, config.history_rebase);
    put_opt_f64(buf, config.trend_damping);
    put_rows(buf, &engine.history);
    put_u64(buf, engine.forecast_slots.len() as u64);
    for &slot in &engine.forecast_slots {
        put_bool(buf, slot);
    }
    put_u64(buf, engine.consecutive_forecasts as u64);
    put_f64(buf, engine.burst_quality);
    let stats = &engine.stats;
    for v in [
        stats.ticks,
        stats.delivered,
        stats.forecasts,
        stats.warmup_repeats,
        stats.horizon_holds,
        stats.late_patches,
    ] {
        put_u64(buf, v);
    }
}

fn read_engine(r: &mut Reader<'_>) -> Result<EngineSnapshot, RestoreError> {
    let forecaster: ForecasterState = r.json_blob("forecaster state")?;
    let period = r.f64()?;
    let use_late_commands = r.bool("use_late_commands")?;
    let limits = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len("joint limits", 16)?;
            let mut limits = Vec::with_capacity(n);
            for _ in 0..n {
                limits.push((r.f64()?, r.f64()?));
            }
            Some(limits)
        }
        found => {
            return Err(RestoreError::BadTag {
                what: "joint limits",
                found,
            })
        }
    };
    let max_consecutive_forecasts = match r.u8()? {
        0 => None,
        1 => Some(r.usize("max_consecutive_forecasts")?),
        found => {
            return Err(RestoreError::BadTag {
                what: "forecast horizon",
                found,
            })
        }
    };
    let max_step = r.opt_f64()?;
    let history_rebase = r.bool("history_rebase")?;
    let trend_damping = r.opt_f64()?;
    let history = r.rows()?;
    let n = r.len("forecast slots", 1)?;
    let mut forecast_slots = Vec::with_capacity(n);
    for _ in 0..n {
        forecast_slots.push(r.bool("forecast slot")?);
    }
    let consecutive_forecasts = r.usize("consecutive_forecasts")?;
    let burst_quality = r.f64()?;
    let stats = RecoveryStats {
        ticks: r.u64()?,
        delivered: r.u64()?,
        forecasts: r.u64()?,
        warmup_repeats: r.u64()?,
        horizon_holds: r.u64()?,
        late_patches: r.u64()?,
    };
    Ok(EngineSnapshot {
        forecaster,
        config: RecoveryConfig {
            period,
            use_late_commands,
            limits,
            max_consecutive_forecasts,
            max_step,
            history_rebase,
            trend_damping,
        },
        history,
        forecast_slots,
        consecutive_forecasts,
        burst_quality,
        stats,
    })
}

impl SessionSnapshot {
    /// Appends the v3 binary frame to `buf` (which is **not** cleared:
    /// archive writers append frames back to back). Reusing one scratch
    /// buffer across a fleet's worth of encodes amortises the encoder
    /// to zero steady-state allocations per session — the only
    /// allocating paths are scratch growth and the forecaster /
    /// jammed-channel canonical-JSON sub-blobs (see the module docs).
    ///
    /// The frame carries `self.version` verbatim; the decoder is the
    /// authority on which versions are legal.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(buf, self.version);
        put_u64(buf, self.id);
        put_u64(buf, self.tick);
        put_f64(buf, self.period);
        put_f64(buf, self.driver.period);
        put_f64(buf, self.driver.gains.kp);
        put_f64(buf, self.driver.gains.ki);
        put_f64(buf, self.driver.gains.kd);
        put_u64(buf, self.misses as u64);
        put_f64(buf, self.acc_sq_mm);
        put_f64(buf, self.worst_mm);
        put_source(buf, &self.source);
        match &self.engine {
            None => put_u8(buf, 0),
            Some(engine) => {
                put_u8(buf, 1);
                put_engine(buf, engine);
            }
        }
        put_u64(buf, self.pending_late.len() as u64);
        for (t, idx, row) in &self.pending_late {
            put_f64(buf, *t);
            put_u64(buf, *idx as u64);
            put_row(buf, row);
        }
        put_driver_state(buf, &self.reference);
        put_driver_state(buf, &self.executed);
    }

    /// Serialises the snapshot to its portable byte form: the v3 binary
    /// frame (see [`SessionSnapshot::encode_into`] for the reusable-
    /// scratch variant fleet checkpointing uses).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serialises the snapshot in the **legacy JSON form** (v2, or v1
    /// when `self.version` already says 1) — the wire form pre-v3
    /// control-plane peers decode, and the format of the committed
    /// golden fixtures. Self-contained snapshots are layout-identical
    /// across v1/v2, so the stamp is the only difference.
    pub fn to_json_bytes(&self) -> Vec<u8> {
        let mut legacy = self.clone();
        legacy.version = legacy.version.min(2);
        serde_json::to_string(&legacy)
            .expect("snapshot serialisation is infallible")
            .into_bytes()
    }

    /// Parses a snapshot previously produced by
    /// [`SessionSnapshot::to_bytes`] (binary v3) or
    /// [`SessionSnapshot::to_json_bytes`] (legacy JSON v1/v2). The
    /// first byte dispatches: `{` selects the legacy JSON parser, the
    /// binary magic selects the v3 frame decoder. Per the versioning
    /// invariant, every legal version is an explicit `match` arm.
    ///
    /// # Errors
    /// A typed [`RestoreError`] for every malformed shape — truncation,
    /// bad magic, corrupt tags, oversized length words, trailing bytes,
    /// version skew — never a panic (`tests/snapshot_codec.rs`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        if bytes.first() == Some(&b'{') {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| RestoreError::Decode("snapshot is not UTF-8".into()))?;
            let snap: SessionSnapshot =
                serde_json::from_str(text).map_err(|e| RestoreError::Decode(e.to_string()))?;
            return match snap.version {
                // v1: same field layout as v2 minus `ScriptedRef`, which
                // a v1 writer cannot have produced — this parse already
                // is the v1 decoder. Restore validation enforces the
                // variant restriction.
                1 => Ok(snap),
                // v2: the last JSON format.
                2 => Ok(snap),
                // v3 is a binary frame by definition; a JSON document
                // claiming it is malformed, not merely foreign.
                SNAPSHOT_VERSION => Err(RestoreError::Decode(
                    "version 3 snapshots use the binary frame, not JSON".into(),
                )),
                found => Err(RestoreError::Version {
                    found,
                    expected: SNAPSHOT_VERSION,
                }),
            };
        }
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(RestoreError::BadMagic {
                found: magic.try_into().expect("4 bytes"),
            });
        }
        let version = r.u32()?;
        match version {
            SNAPSHOT_VERSION => {}
            found => {
                return Err(RestoreError::Version {
                    found,
                    expected: SNAPSHOT_VERSION,
                })
            }
        }
        let id = r.u64()?;
        let tick = r.u64()?;
        let period = r.f64()?;
        let driver = DriverConfig {
            period: r.f64()?,
            gains: PidGains {
                kp: r.f64()?,
                ki: r.f64()?,
                kd: r.f64()?,
            },
        };
        let misses = r.usize("miss count")?;
        let acc_sq_mm = r.f64()?;
        let worst_mm = r.f64()?;
        let source = read_source(&mut r)?;
        let engine = match r.u8()? {
            0 => None,
            1 => Some(read_engine(&mut r)?),
            found => {
                return Err(RestoreError::BadTag {
                    what: "engine presence",
                    found,
                })
            }
        };
        let n = r.len("pending late commands", 24)?;
        let mut pending_late = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.f64()?;
            let idx = r.usize("late tick index")?;
            let row = r.row()?;
            pending_late.push((t, idx, row));
        }
        let reference = read_driver_state(&mut r)?;
        let executed = read_driver_state(&mut r)?;
        if r.remaining() != 0 {
            return Err(RestoreError::TrailingBytes {
                expect: r.pos,
                got: bytes.len(),
            });
        }
        Ok(SessionSnapshot {
            version,
            id,
            tick,
            period,
            driver,
            misses,
            acc_sq_mm,
            worst_mm,
            source,
            engine,
            pending_late,
            reference,
            executed,
        })
    }

    /// Converts a [`SourceState::ScriptedRef`] snapshot into the
    /// self-contained [`SourceState::Scripted`] form by materialising
    /// `commands` (the referenced trace) into it — the bridge from an
    /// archive entry back to a snapshot `Session::restore` accepts.
    /// Non-`ScriptedRef` snapshots are returned unchanged.
    ///
    /// # Errors
    /// [`RestoreError::Invalid`] when `commands` is not the trace the
    /// snapshot references (content address mismatch).
    pub fn materialized(&self, commands: &[Vec<f64>]) -> Result<SessionSnapshot, RestoreError> {
        let mut snap = self.clone();
        if let SourceState::ScriptedRef { trace, fates } = &snap.source {
            let actual = foreco_store::trace_object_id(commands);
            if actual != *trace {
                return Err(RestoreError::Invalid(format!(
                    "trace {actual} is not the script this snapshot references ({trace})"
                )));
            }
            snap.source = SourceState::Scripted {
                commands: commands.to_vec(),
                fates: expand_fates(fates),
            };
        }
        Ok(snap)
    }
}

/// Why exporting a session snapshot failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The session's forecaster has no serialisable form (currently only
    /// seq2seq engines).
    UnsupportedForecaster {
        /// Display name of the offending forecaster.
        name: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedForecaster { name } => {
                write!(
                    f,
                    "session snapshot: forecaster `{name}` is not serialisable"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why rehydrating a session from a snapshot failed. Mirrors the wire
/// codec's error taxonomy: every malformed input maps to exactly one
/// typed variant, and decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes are not a well-formed snapshot (legacy JSON parse
    /// failures, malformed sub-blobs).
    Decode(String),
    /// Fewer bytes than the frame layout requires — truncated input.
    Truncated {
        /// Bytes required to read the next field.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The leading bytes are neither a JSON document nor
    /// [`SNAPSHOT_MAGIC`]: not a snapshot at all.
    BadMagic {
        /// The four bytes found.
        found: [u8; 4],
    },
    /// An unassigned tag byte where an enum discriminant or flag was
    /// expected.
    BadTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The byte found.
        found: u8,
    },
    /// A length word larger than the remaining frame could possibly
    /// hold — a corrupt count rejected before it becomes an allocation.
    Oversized {
        /// Which collection declared it.
        what: &'static str,
        /// The declared element count.
        declared: u64,
        /// The most the remaining bytes could hold.
        limit: u64,
    },
    /// The buffer holds more bytes than the frame accounts for —
    /// trailing garbage is rejected, not ignored.
    TrailingBytes {
        /// Expected total frame length.
        expect: usize,
        /// Bytes present.
        got: usize,
    },
    /// The snapshot's format version does not match this build's.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads/writes.
        expected: u32,
    },
    /// The snapshot decoded but violates session invariants (wrong
    /// dimensions for the target arm model, inconsistent lengths, …).
    Invalid(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Decode(reason) => write!(f, "session restore: {reason}"),
            RestoreError::Truncated { need, got } => {
                write!(
                    f,
                    "session restore: truncated frame: need {need} bytes, got {got}"
                )
            }
            RestoreError::BadMagic { found } => {
                write!(f, "session restore: bad magic {found:02x?}")
            }
            RestoreError::BadTag { what, found } => {
                write!(f, "session restore: bad tag {found:#04x} for {what}")
            }
            RestoreError::Oversized {
                what,
                declared,
                limit,
            } => write!(
                f,
                "session restore: oversized {what}: {declared} elements declared, \
                 at most {limit} possible"
            ),
            RestoreError::TrailingBytes { expect, got } => {
                write!(
                    f,
                    "session restore: trailing bytes: frame is {expect}, buffer holds {got}"
                )
            }
            RestoreError::Version { found, expected } => write!(
                f,
                "session restore: snapshot version {found}, this build reads {expected}"
            ),
            RestoreError::Invalid(reason) => {
                write!(f, "session restore: invalid snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<foreco_core::EngineStateError> for RestoreError {
    fn from(e: foreco_core::EngineStateError) -> Self {
        RestoreError::Invalid(e.to_string())
    }
}
