//! Declarative session blueprints.
//!
//! A [`SessionSpec`] is everything the service needs to materialise a
//! recovery loop inside a shard thread: where commands come from, what
//! the network does to them, and how misses are covered. Specs are plain
//! data (plus a shared trained forecaster) so they can cross the control
//! channel into whichever shard the session hashes to.
//!
//! The expensive part of a FoReCo loop is the *trained* forecaster, so
//! specs don't train — they carry a [`SharedForecaster`], an `Arc` around
//! any trained [`Forecaster`]. Forecasting is `&self`, which is why one
//! VAR fitted once can serve thousands of concurrent sessions without
//! copies (the deployment shape of the paper's edge cloud, §V).

use foreco_core::channel::{Channel, ControlledLossChannel, IdealChannel, JammedChannel};
use foreco_core::{RecoveryConfig, RecoveryEngine};
use foreco_forecast::{Forecaster, ForecasterState};
use foreco_robot::DriverConfig;
use foreco_store::{ModelHandle, ObjectId, Storage, StoreError, TraceHandle};
use foreco_teleop::{Dataset, Skill};
use foreco_wifi::LinkConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Service-wide session identifier (also the shard-hash input).
pub type SessionId = u64;

/// A trained forecaster shared across sessions and shards.
///
/// [`SharedForecaster::register`] additionally files the model in a
/// `foreco-store` [`Storage`] under its content address, so a fleet
/// registering the same trained model N times still holds one resident
/// copy — every clone of the wrapper (one per session engine) carries a
/// store claim that keeps the model alive until the last session drops.
#[derive(Clone)]
pub struct SharedForecaster {
    inner: Arc<dyn Forecaster>,
    /// Store claim pinning the registered model (`None` for ad-hoc
    /// `new`-wrapped forecasters that bypass the store). Shared by
    /// every clone of the wrapper, so a session counts as one claim no
    /// matter how many copies of its wrapper it holds (engine box,
    /// lane key, spec).
    claim: Option<Arc<ModelHandle>>,
}

impl SharedForecaster {
    /// Wraps a trained forecaster for sharing.
    pub fn new<F: Forecaster + 'static>(forecaster: F) -> Self {
        Self {
            inner: Arc::new(forecaster),
            claim: None,
        }
    }

    /// Registers a trained forecaster in shared storage, deduplicating
    /// against any already-registered model with bit-identical
    /// parameters: the returned wrapper (and every clone of it) shares
    /// the resident model and claims it for as long as it lives.
    ///
    /// # Errors
    /// [`StoreError::UnsupportedModel`] when the forecaster exports no
    /// [`ForecasterState`] (seq2seq) and so cannot be content-addressed.
    pub fn register<F: Forecaster + 'static>(
        forecaster: F,
        store: &Storage,
    ) -> Result<Self, StoreError> {
        let claim = store.insert_model(Arc::new(forecaster))?;
        Ok(Self {
            inner: Arc::clone(claim.forecaster()),
            claim: Some(Arc::new(claim)),
        })
    }

    /// Wraps an already-shared trained forecaster without a storage
    /// claim. Wrappers built around clones of one `Arc` share the
    /// resident model — and hence a batched forecasting lane.
    pub fn from_arc(forecaster: Arc<dyn Forecaster>) -> Self {
        Self {
            inner: forecaster,
            claim: None,
        }
    }

    /// Wraps a resident store model, holding its claim: the restore
    /// path's entry point. N sessions restored around the same content
    /// address share one resident forecaster instead of N deep-built
    /// copies, and the claim keeps it alive until the last drops.
    pub fn from_handle(claim: ModelHandle) -> Self {
        Self {
            inner: Arc::clone(claim.forecaster()),
            claim: Some(Arc::new(claim)),
        }
    }

    /// The shared trained forecaster itself. Batched forecasting lanes
    /// key on the store claim's content address when registered
    /// ([`SharedForecaster::store_id`]), and fall back to this `Arc`'s
    /// pointer identity for unregistered wrappers — so sessions whose
    /// wrappers clone one registration, or independently register
    /// bit-identical weights, land in the same lane.
    pub fn shared(&self) -> Arc<dyn Forecaster> {
        Arc::clone(&self.inner)
    }

    /// The underlying forecaster's display name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// The model's content address in shared storage, when registered.
    pub fn store_id(&self) -> Option<ObjectId> {
        self.claim.as_ref().map(|claim| claim.id())
    }
}

impl std::fmt::Debug for SharedForecaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedForecaster")
            .field("name", &self.inner.name())
            .field("store_id", &self.store_id())
            .finish()
    }
}

impl Forecaster for SharedForecaster {
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        self.inner.forecast(history)
    }

    fn forecast_into(
        &self,
        history: &foreco_forecast::HistoryView<'_>,
        scratch: &mut foreco_forecast::ForecastScratch,
        out: &mut [f64],
    ) {
        // Delegation matters here too: falling through to the trait
        // default would re-materialise the history on every forecast,
        // silently undoing the zero-allocation hot path for every
        // session sharing this forecaster.
        self.inner.forecast_into(history, scratch, out)
    }

    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        scratch: &mut foreco_forecast::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        // Delegation matters: the trait default reports "no native
        // kernel", which would push every lane sharing this wrapper
        // through the per-member fallback even when the inner
        // forecaster batches natively.
        self.inner.forecast_batch(members, windows, scratch, out)
    }

    fn forecast_batch_slots(
        &self,
        members: usize,
        slots: &[f64],
        scratch: &mut foreco_forecast::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        // Same delegation rule as `forecast_batch`, for the slot-major
        // layout.
        self.inner
            .forecast_batch_slots(members, slots, scratch, out)
    }

    fn cost_class(&self) -> foreco_forecast::CostClass {
        // Delegation matters: the trait default is Cheap, which would
        // silently drop every wrapped Kalman/VAR out of batching (the
        // planner never gathers cheap families).
        self.inner.cost_class()
    }

    fn history_len(&self) -> usize {
        self.inner.history_len()
    }

    fn dims(&self) -> usize {
        self.inner.dims()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn export_state(&self) -> Option<ForecasterState> {
        // Delegation matters: a session built around a SharedForecaster
        // must snapshot the *inner* trained model, not fall back to the
        // unsnapshotable default.
        self.inner.export_state()
    }
}

/// Where a session's operator commands come from.
#[derive(Debug, Clone)]
pub enum SourceSpec {
    /// Record a pick-and-place dataset at session open (each session gets
    /// its own operator RNG stream).
    Recorded {
        /// Operator skill profile.
        skill: Skill,
        /// Pick-and-place repetitions.
        cycles: usize,
        /// Operator RNG seed.
        seed: u64,
    },
    /// Replay a pre-recorded command list, shared across sessions
    /// (thousands of sessions can replay one dataset with zero copies).
    Replayed(Arc<Vec<Vec<f64>>>),
    /// Replay a trace claimed from a `foreco-store` [`Storage`]. Like
    /// [`SourceSpec::Replayed`] the rows are shared, but the claim also
    /// dedups across *independently built* specs (same content ⇒ same
    /// resident object) and keeps the trace evictable the moment the
    /// last session drops: the session holds the claim for its
    /// lifetime, acquired at build time, never on the tick path.
    Stored(TraceHandle),
    /// Commands arrive live through [`ServiceHandle::inject`]
    /// (`crate::ServiceHandle::inject`) into the session's bounded inbox;
    /// `initial` is the agreed start pose.
    ///
    /// A streamed session counts every tick with an empty inbox as a
    /// deadline miss, so live operation needs the service's virtual
    /// clock tied to wall time (`Pacing::RealTime` in the
    /// `ServiceConfig`) — under the default unpaced clock the shard
    /// spins virtual ticks as fast as the CPU allows and a real
    /// operator looks permanently silent. Unpaced streamed sessions
    /// are for tests that pre-fill the inbox.
    Streamed {
        /// Start pose both ends agree on before teleoperation.
        initial: Vec<f64>,
        /// Inbox capacity; overflow drops commands (loss events).
        inbox_capacity: usize,
    },
    /// Flow-controlled socket ingress (the `foreco-net` gateway's
    /// session shape): the wire carries one verdict per virtual tick
    /// slot — a command ([`ServiceHandle::try_inject`]
    /// (`crate::ServiceHandle::try_inject`)), an explicit loss
    /// (`inject_miss`), or a tickless §VII-C late patch (`inject_late`)
    /// — and the session's clock advances only as slots are consumed.
    /// An empty queue parks the session *without* a miss (no verdict is
    /// not a loss), so the interleaving of socket threads and shard
    /// clocks cannot change a single output: the same slot sequence is
    /// bit-identical whether it arrived over localhost UDP, a WAN, or an
    /// in-process loopback.
    ///
    /// Real-time behaviour comes from the *operator* pacing frames at
    /// 50 Hz, not from the shard clock; under `Pacing::Unpaced` a gated
    /// session simply consumes slots as fast as they arrive.
    Gated {
        /// Start pose both ends agree on before teleoperation.
        initial: Vec<f64>,
        /// Queued command-payload bound; at capacity a further command
        /// is dropped and a miss marker keeps the slot timeline aligned
        /// (the loss event the engine then forecasts over).
        inbox_capacity: usize,
    },
}

impl SourceSpec {
    /// Convenience: replay an already-recorded dataset.
    ///
    /// Copies the rows once per call (sessions built from clones of the
    /// returned spec still share that one `Arc`). When many specs are
    /// built independently over the same dataset, prefer
    /// [`SourceSpec::stored`] — the store dedups by content, so N specs
    /// cost one resident copy no matter how they were constructed.
    pub fn replay(dataset: &Dataset) -> Self {
        SourceSpec::Replayed(Arc::new(dataset.commands.clone()))
    }

    /// Replay a dataset through shared storage: the trace is filed under
    /// its content address (copied only if not already resident) and the
    /// spec carries a claim on it.
    pub fn stored(store: &Storage, dataset: &Dataset) -> Self {
        SourceSpec::Stored(store.insert_trace(&dataset.commands))
    }
}

/// The impairment model between operator and robot.
///
/// Serialisable so streamed-session snapshots can carry it: together
/// with the channel's raw RNG state it fully determines all future
/// fates, which is what lets a migrated session replay the exact same
/// loss pattern it would have seen on its original shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChannelSpec {
    /// Perfect network: every command on time.
    Ideal,
    /// Bursts of exactly `burst_len` consecutive losses, each command
    /// starting one with probability `burst_prob` (Fig. 9 setup).
    ControlledLoss {
        /// Consecutive losses per burst.
        burst_len: usize,
        /// Per-command burst start probability.
        burst_prob: f64,
        /// Channel RNG seed.
        seed: u64,
    },
    /// The full 802.11-with-interference link simulation (Figs. 8, 10).
    Jammed {
        /// Link and interference configuration.
        link: LinkConfig,
        /// Deadline tolerance `τ` in seconds.
        tolerance: f64,
        /// Link RNG seed.
        seed: u64,
    },
}

impl ChannelSpec {
    /// Materialises the channel.
    pub(crate) fn build(&self) -> Box<dyn Channel + Send> {
        match self {
            ChannelSpec::Ideal => Box::new(IdealChannel),
            ChannelSpec::ControlledLoss {
                burst_len,
                burst_prob,
                seed,
            } => Box::new(ControlledLossChannel::new(*burst_len, *burst_prob, *seed)),
            ChannelSpec::Jammed {
                link,
                tolerance,
                seed,
            } => Box::new(JammedChannel::new(*link, *tolerance, *seed)),
        }
    }
}

/// How the session covers misses.
#[derive(Debug, Clone)]
pub enum RecoverySpec {
    /// Niryo stack behaviour: repeat the last command.
    Baseline,
    /// FoReCo around a shared trained forecaster.
    FoReCo {
        /// The trained forecaster (shared, not copied).
        forecaster: SharedForecaster,
        /// Engine knobs.
        config: RecoveryConfig,
    },
}

impl RecoverySpec {
    /// Materialises the per-session engine (FoReCo only).
    pub(crate) fn build(&self, initial: Vec<f64>) -> Option<RecoveryEngine> {
        match self {
            RecoverySpec::Baseline => None,
            RecoverySpec::FoReCo { forecaster, config } => Some(RecoveryEngine::new(
                Box::new(forecaster.clone()),
                config.clone(),
                initial,
            )),
        }
    }

    /// The shared forecaster wrapper for batched-lane grouping (`None`
    /// for baseline sessions). The wrapper, not the bare `Arc`: it
    /// carries the store claim whose [`ObjectId`] keys lanes by content
    /// for registered models.
    pub(crate) fn shared_model(&self) -> Option<SharedForecaster> {
        match self {
            RecoverySpec::Baseline => None,
            RecoverySpec::FoReCo { forecaster, .. } => Some(forecaster.clone()),
        }
    }
}

/// Complete blueprint for one service-hosted recovery loop.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Service-wide identifier; also determines the owning shard.
    pub id: SessionId,
    /// Command source.
    pub source: SourceSpec,
    /// Network impairment model.
    pub channel: ChannelSpec,
    /// Miss-recovery mode.
    pub recovery: RecoverySpec,
    /// Robot driver configuration (period `Ω`, PID gains).
    pub driver: DriverConfig,
}

impl SessionSpec {
    /// A spec with the default 50 Hz Niryo driver.
    pub fn new(
        id: SessionId,
        source: SourceSpec,
        channel: ChannelSpec,
        recovery: RecoverySpec,
    ) -> Self {
        Self {
            id,
            source,
            channel,
            recovery,
            driver: DriverConfig::default(),
        }
    }
}
