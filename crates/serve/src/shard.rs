//! A shard: one worker thread owning a disjoint set of sessions.
//!
//! Each shard holds its sessions in a `BTreeMap` and advances them in
//! ascending-id order, one virtual tick per pass. Determinism falls out
//! of ownership: a session's entire state lives on exactly one shard,
//! sessions never interact, and each session's inputs (script, channel
//! RNG, engine) are self-contained — so the assignment of sessions to
//! shards, the number of shards, and thread scheduling cannot change any
//! session's trajectory. The in-order pass merely makes per-shard
//! accounting reproducible too.
//!
//! Migration preserves that ownership discipline: `Migrate` runs inside
//! the control drain (so the session is between ticks), snapshots the
//! session, removes it, updates the shared [`RoutingTable`], and hands
//! the state to the destination shard's control channel as an `Adopt` —
//! at no instant do two shards own the session, and the destination
//! resumes it from the exact tick it left, so results are bit-identical
//! to never having moved. Commands racing a migration can land on a
//! shard that no longer (or does not yet) own the session; they are
//! answered with `UnknownSession`, which for `Inject` is just another
//! loss event of the kind the recovery engine exists to absorb.
//!
//! Control flow per loop iteration: drain the control inbox
//! (non-blocking), advance every live session one tick, emit events for
//! completions/drops, then let the pacer decide whether to sleep
//! (real-time mode) or immediately continue. An idle shard parks on a
//! blocking `recv` so it costs nothing between sessions.

use crate::clock::{Pacer, Pacing};
use crate::inbox::Offer;
use crate::protocol::{SessionCommand, SessionEvent};
use crate::session::{Advance, Session};
use foreco_robot::ArmModel;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, RwLock};

/// Shared session→shard routing overrides, maintained by the shards and
/// consulted by every `ServiceHandle`. A session absent from the map
/// lives on its hash-placed home shard ([`shard_of`]); migration inserts
/// an override, completion removes it. The `moved` flag keeps the
/// common no-migrations case lock-free on the command hot path.
#[derive(Debug, Default)]
pub(crate) struct RoutingTable {
    pub(crate) moved: AtomicBool,
    pub(crate) routes: RwLock<HashMap<u64, usize>>,
}

impl RoutingTable {
    /// The shard currently owning `id` in a pool of `shards`.
    pub(crate) fn shard_for(&self, id: u64, shards: usize) -> usize {
        if self.moved.load(Ordering::Acquire) {
            if let Some(&shard) = self.routes.read().expect("routing table poisoned").get(&id) {
                return shard;
            }
        }
        shard_of(id, shards)
    }

    /// Records that `id` now lives on `shard`.
    pub(crate) fn set(&self, id: u64, shard: usize) {
        // Flag updates happen under the write lock (here and in
        // `clear`) so flag and map can never disagree.
        let mut routes = self.routes.write().expect("routing table poisoned");
        routes.insert(id, shard);
        self.moved.store(true, Ordering::Release);
    }

    /// Drops the override for `id` (after completion). When the last
    /// override goes, the fast-path flag resets so routing returns to
    /// lock-free hash placement.
    pub(crate) fn clear(&self, id: u64) {
        if self.moved.load(Ordering::Acquire) {
            let mut routes = self.routes.write().expect("routing table poisoned");
            routes.remove(&id);
            if routes.is_empty() {
                self.moved.store(false, Ordering::Release);
            }
        }
    }
}

/// Everything a shard worker needs at spawn time.
pub(crate) struct ShardWorker {
    pub(crate) index: usize,
    pub(crate) control: Receiver<SessionCommand>,
    pub(crate) events: SyncSender<SessionEvent>,
    /// Control senders of every shard in the pool (self included), for
    /// the transfer leg of a migration.
    pub(crate) peers: Vec<SyncSender<SessionCommand>>,
    pub(crate) routes: Arc<RoutingTable>,
    pub(crate) model: ArmModel,
    pub(crate) pacing: Pacing,
    pub(crate) period: f64,
}

impl ShardWorker {
    /// The shard main loop. Returns total session-ticks advanced.
    pub(crate) fn run(self) -> u64 {
        let ShardWorker {
            index,
            control,
            events,
            peers,
            routes,
            model,
            pacing,
            period,
        } = self;
        let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
        // Migration hand-offs the destination's control channel could
        // not take yet. Transfers never use a blocking send: two shards
        // migrating toward each other with full control channels would
        // deadlock the pool (neither can drain its own channel while
        // blocked in the other's). State parks here and is retried each
        // pass instead.
        let mut pending_transfers: Vec<(usize, Box<crate::snapshot::SessionSnapshot>)> = Vec::new();
        let mut pacer = Pacer::new(pacing, period);
        let mut ticks_advanced: u64 = 0;
        let mut shutdown = false;
        let mut idle = true;
        'run: loop {
            // Retry parked hand-offs first: the destination frees its
            // channel by draining, which happens every pass it makes.
            pending_transfers = pending_transfers
                .into_iter()
                .filter_map(|(to, snapshot)| {
                    match peers[to].try_send(SessionCommand::Adopt(snapshot)) {
                        Ok(()) => None,
                        Err(std::sync::mpsc::TrySendError::Full(SessionCommand::Adopt(s))) => {
                            Some((to, s))
                        }
                        // Destination terminated (pool tearing down):
                        // the state is dropped with it.
                        Err(_) => None,
                    }
                })
                .collect();
            // Drain control without blocking while sessions are live;
            // park when idle (never while a hand-off is parked).
            loop {
                let command = if sessions.is_empty() && !shutdown && pending_transfers.is_empty() {
                    match control.recv() {
                        Ok(c) => c,
                        Err(_) => break 'run, // all handles dropped
                    }
                } else {
                    match control.try_recv() {
                        Ok(c) => c,
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            shutdown = true;
                            break;
                        }
                    }
                };
                match command {
                    SessionCommand::Open(spec) => {
                        let id = spec.id;
                        if let std::collections::btree_map::Entry::Vacant(slot) = sessions.entry(id)
                        {
                            slot.insert(Session::open(&spec, &model));
                            let _ = events.send(SessionEvent::Opened { id, shard: index });
                        } else {
                            // Never destroy a live session: reject the
                            // replacement and say so.
                            let _ = events.send(SessionEvent::DuplicateSession { id });
                        }
                    }
                    SessionCommand::Inject { id, command } => match sessions.get_mut(&id) {
                        Some(session) => {
                            if session.offer(command) == Offer::Dropped {
                                let _ = events.send(SessionEvent::CommandDropped {
                                    id,
                                    tick: session.tick(),
                                });
                            }
                        }
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Close { id } => match sessions.get_mut(&id) {
                        Some(session) => session.close(),
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Snapshot { id } => match sessions.get(&id) {
                        Some(session) => match session.snapshot() {
                            Ok(snapshot) => {
                                let _ = events.send(SessionEvent::Snapshotted {
                                    id,
                                    shard: index,
                                    snapshot: Box::new(snapshot),
                                });
                            }
                            Err(e) => {
                                let _ = events.send(SessionEvent::SnapshotFailed {
                                    id,
                                    reason: e.to_string(),
                                });
                            }
                        },
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Migrate { id, to } => match sessions.get(&id) {
                        Some(_) if to >= peers.len() => {
                            // The handle validates destinations; this
                            // guards raw control-channel writers.
                            let _ = events.send(SessionEvent::SnapshotFailed {
                                id,
                                reason: format!(
                                    "migration destination {to} outside the {}-shard pool",
                                    peers.len()
                                ),
                            });
                        }
                        Some(_) if to == index => {
                            // Already home: a migration to the owning
                            // shard is a successful no-op.
                            let _ = events.send(SessionEvent::Migrated {
                                id,
                                from: index,
                                to: index,
                            });
                        }
                        Some(session) => match session.snapshot() {
                            Ok(snapshot) => {
                                // Drain→transfer→resume: the session has
                                // finished its current tick (advances
                                // happen outside this drain loop), so
                                // the snapshot is tick-aligned. Remove
                                // it *before* the hand-off: from here
                                // the destination owns the state.
                                sessions.remove(&id);
                                routes.set(id, to);
                                let _ = events.send(SessionEvent::Migrated {
                                    id,
                                    from: index,
                                    to,
                                });
                                match peers[to].try_send(SessionCommand::Adopt(Box::new(snapshot)))
                                {
                                    Ok(()) => {}
                                    Err(std::sync::mpsc::TrySendError::Full(
                                        SessionCommand::Adopt(s),
                                    )) => pending_transfers.push((to, s)),
                                    // Destination terminated (pool
                                    // tearing down): state dropped.
                                    Err(_) => {}
                                }
                            }
                            Err(e) => {
                                // Unsnapshotable sessions stay put and
                                // keep running.
                                let _ = events.send(SessionEvent::SnapshotFailed {
                                    id,
                                    reason: e.to_string(),
                                });
                            }
                        },
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Adopt(snapshot) => {
                        let id = snapshot.id;
                        if let std::collections::btree_map::Entry::Vacant(slot) = sessions.entry(id)
                        {
                            match Session::restore(&snapshot, &model) {
                                Ok(session) => {
                                    let tick = session.tick();
                                    slot.insert(session);
                                    if shard_of(id, peers.len()) != index {
                                        routes.set(id, index);
                                    } else {
                                        routes.clear(id);
                                    }
                                    let _ = events.send(SessionEvent::Restored {
                                        id,
                                        shard: index,
                                        tick,
                                    });
                                }
                                Err(e) => {
                                    let _ = events.send(SessionEvent::RestoreFailed {
                                        id,
                                        reason: e.to_string(),
                                    });
                                }
                            }
                        } else {
                            let _ = events.send(SessionEvent::DuplicateSession { id });
                        }
                    }
                    SessionCommand::Shutdown => shutdown = true,
                }
            }
            if shutdown && sessions.is_empty() && pending_transfers.is_empty() {
                break;
            }
            if sessions.is_empty() {
                idle = true;
                if !pending_transfers.is_empty() {
                    // Nothing to advance, destination still full: yield
                    // briefly instead of spinning on try_send.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                continue;
            }
            if idle {
                // Coming back from an idle stretch: re-anchor real-time
                // pacing so the first live tick is not a catch-up burst.
                pacer.resync();
                idle = false;
            }

            // One virtual tick for every session, ascending id.
            let mut completed: Vec<u64> = Vec::new();
            for (id, session) in sessions.iter_mut() {
                match session.advance() {
                    Advance::Ticked => ticks_advanced += 1,
                    Advance::Completed(report) => {
                        completed.push(*id);
                        let _ = events.send(SessionEvent::Completed {
                            id: *id,
                            report: *report,
                        });
                    }
                }
            }
            for id in completed {
                sessions.remove(&id);
                // A migrated-in session leaves a routing override behind;
                // clear it so the id can be reused at its home placement.
                if shard_of(id, peers.len()) != index {
                    routes.clear(id);
                }
            }
            pacer.tick_complete();

            // A shutdown request finishes in-flight scripted sessions
            // only if they complete naturally; streamed sessions are
            // closed so they drain and report rather than hang.
            if shutdown {
                for session in sessions.values_mut() {
                    session.close();
                }
            }
        }
        let _ = events.send(SessionEvent::ShardTerminated {
            shard: index,
            ticks_advanced,
        });
        ticks_advanced
    }
}

/// Deterministic session→shard placement: SplitMix64 finalizer over the
/// id, reduced modulo the shard count. Stable across runs, processes,
/// and shard pools of equal size.
pub fn shard_of(id: u64, shards: usize) -> usize {
    assert!(shards >= 1, "shard_of: need at least one shard");
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8, 16] {
            for id in 0..100u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
    }

    #[test]
    fn placement_spreads_sessions() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..1000u64 {
            counts[shard_of(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {i} underloaded: {c}/1000");
        }
    }
}
