//! A shard: one worker thread owning a disjoint set of sessions.
//!
//! Each shard holds its sessions in a `BTreeMap` and advances them in
//! ascending-id order, one virtual tick per pass. Determinism falls out
//! of ownership: a session's entire state lives on exactly one shard,
//! sessions never interact, and each session's inputs (script, channel
//! RNG, engine) are self-contained — so the assignment of sessions to
//! shards, the number of shards, and thread scheduling cannot change any
//! session's trajectory. The in-order pass merely makes per-shard
//! accounting reproducible too.
//!
//! Control flow per loop iteration: drain the control inbox
//! (non-blocking), advance every live session one tick, emit events for
//! completions/drops, then let the pacer decide whether to sleep
//! (real-time mode) or immediately continue. An idle shard parks on a
//! blocking `recv` so it costs nothing between sessions.

use crate::clock::{Pacer, Pacing};
use crate::inbox::Offer;
use crate::protocol::{SessionCommand, SessionEvent};
use crate::session::{Advance, Session};
use foreco_robot::ArmModel;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};

/// Everything a shard worker needs at spawn time.
pub(crate) struct ShardWorker {
    pub(crate) index: usize,
    pub(crate) control: Receiver<SessionCommand>,
    pub(crate) events: SyncSender<SessionEvent>,
    pub(crate) model: ArmModel,
    pub(crate) pacing: Pacing,
    pub(crate) period: f64,
}

impl ShardWorker {
    /// The shard main loop. Returns total session-ticks advanced.
    pub(crate) fn run(self) -> u64 {
        let ShardWorker {
            index,
            control,
            events,
            model,
            pacing,
            period,
        } = self;
        let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
        let mut pacer = Pacer::new(pacing, period);
        let mut ticks_advanced: u64 = 0;
        let mut shutdown = false;
        let mut idle = true;
        'run: loop {
            // Drain control without blocking while sessions are live;
            // park when idle.
            loop {
                let command = if sessions.is_empty() && !shutdown {
                    match control.recv() {
                        Ok(c) => c,
                        Err(_) => break 'run, // all handles dropped
                    }
                } else {
                    match control.try_recv() {
                        Ok(c) => c,
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            shutdown = true;
                            break;
                        }
                    }
                };
                match command {
                    SessionCommand::Open(spec) => {
                        let id = spec.id;
                        if let std::collections::btree_map::Entry::Vacant(slot) = sessions.entry(id)
                        {
                            slot.insert(Session::open(&spec, &model));
                            let _ = events.send(SessionEvent::Opened { id, shard: index });
                        } else {
                            // Never destroy a live session: reject the
                            // replacement and say so.
                            let _ = events.send(SessionEvent::DuplicateSession { id });
                        }
                    }
                    SessionCommand::Inject { id, command } => match sessions.get_mut(&id) {
                        Some(session) => {
                            if session.offer(command) == Offer::Dropped {
                                let _ = events.send(SessionEvent::CommandDropped {
                                    id,
                                    tick: session.tick(),
                                });
                            }
                        }
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Close { id } => match sessions.get_mut(&id) {
                        Some(session) => session.close(),
                        None => {
                            let _ = events.send(SessionEvent::UnknownSession { id });
                        }
                    },
                    SessionCommand::Shutdown => shutdown = true,
                }
            }
            if shutdown && sessions.is_empty() {
                break;
            }
            if sessions.is_empty() {
                idle = true;
                continue;
            }
            if idle {
                // Coming back from an idle stretch: re-anchor real-time
                // pacing so the first live tick is not a catch-up burst.
                pacer.resync();
                idle = false;
            }

            // One virtual tick for every session, ascending id.
            let mut completed: Vec<u64> = Vec::new();
            for (id, session) in sessions.iter_mut() {
                match session.advance() {
                    Advance::Ticked => ticks_advanced += 1,
                    Advance::Completed(report) => {
                        completed.push(*id);
                        let _ = events.send(SessionEvent::Completed {
                            id: *id,
                            report: *report,
                        });
                    }
                }
            }
            for id in completed {
                sessions.remove(&id);
            }
            pacer.tick_complete();

            // A shutdown request finishes in-flight scripted sessions
            // only if they complete naturally; streamed sessions are
            // closed so they drain and report rather than hang.
            if shutdown {
                for session in sessions.values_mut() {
                    session.close();
                }
            }
        }
        let _ = events.send(SessionEvent::ShardTerminated {
            shard: index,
            ticks_advanced,
        });
        ticks_advanced
    }
}

/// Deterministic session→shard placement: SplitMix64 finalizer over the
/// id, reduced modulo the shard count. Stable across runs, processes,
/// and shard pools of equal size.
pub fn shard_of(id: u64, shards: usize) -> usize {
    assert!(shards >= 1, "shard_of: need at least one shard");
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8, 16] {
            for id in 0..100u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
    }

    #[test]
    fn placement_spreads_sessions() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..1000u64 {
            counts[shard_of(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {i} underloaded: {c}/1000");
        }
    }
}
