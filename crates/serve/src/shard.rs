//! A shard: one worker thread owning a disjoint set of sessions,
//! scheduled by a wake-on-work cooperative scheduler.
//!
//! # Ownership and determinism
//!
//! Each shard holds its sessions in a `BTreeMap` and advances the
//! *runnable* ones in ascending-id order, one virtual tick per pass.
//! Determinism falls out of ownership: a session's entire state lives on
//! exactly one shard, sessions never interact, and each session's inputs
//! (script, channel RNG, engine) are self-contained — so the assignment
//! of sessions to shards, the number of shards, and thread scheduling
//! cannot change any session's trajectory. The in-order pass merely
//! makes per-shard accounting reproducible too.
//!
//! # Scheduling
//!
//! Under [`Scheduler::EventDriven`] (the default) the per-pass sweep
//! touches only the run queue. After every advance a session reports a
//! [`Wake`] verdict; sessions at a verified idle fixed point leave the
//! queue and park — in the [`TimerWheel`] when their next state change
//! is a scheduled §VII-C late command ([`Wake::ParkedUntil`]), or
//! indefinitely when only traffic can change their next tick
//! ([`Wake::AwaitingInput`]). Parked sessions cost **zero** work per
//! pass. Wake sources are the inbox (`Inject`), `Close`, any targeted
//! control command, and the timer wheel; on wake the session's skipped
//! passes are replayed exactly by `Session::catch_up`, so parking is
//! observationally invisible (property-tested against the eager
//! scheduler). When the whole shard is parked with no timers, the worker
//! blocks on its control channel and the parked sessions' virtual time
//! suspends with it — under real-time pacing it instead keeps 50 Hz
//! slots flowing via a timed receive, so idle spans still track wall
//! time. When only timers remain, an unpaced shard jumps its pass
//! counter straight to the next due pass.
//!
//! [`Scheduler::Eager`] preserves the original flat sweep (every session
//! every pass) and is the ground truth the event-driven mode is tested
//! against.
//!
//! # Migration and rebalancing
//!
//! Migration preserves the ownership discipline: `Migrate` runs inside
//! the control drain (so the session is between ticks), syncs a parked
//! session's backlog, snapshots it, removes it, updates the shared
//! [`RoutingTable`], and hands the state to the destination shard's
//! control channel as an `Adopt` — at no instant do two shards own the
//! session, and the destination resumes it from the exact tick it left,
//! so results are bit-identical to never having moved. `Rebalance` (sent
//! by the service's balancer) is the policy layer on the same mechanism:
//! the shard picks its highest-id runnable sessions and migrates them
//! out. Commands racing a migration can land on a shard that no longer
//! (or does not yet) own the session; they are answered with
//! `UnknownSession`, which for `Inject` is just another loss event of
//! the kind the recovery engine exists to absorb.
//!
//! Control flow per loop iteration: retry parked migration hand-offs,
//! drain the control inbox (blocking when quiescent), fire due timers,
//! advance the run queue, publish load gauges, pace.

use crate::batch::BatchPlanner;
use crate::clock::{Pacer, Pacing};
use crate::inbox::Offer;
use crate::protocol::{SessionCommand, SessionEvent};
use crate::sched::{Scheduler, ShardLoad, TimerWheel};
use crate::session::{Advance, Session, Wake};
use crate::telemetry::{Telemetry, TelemetryScratch};
use foreco_robot::ArmModel;
use foreco_store::Storage;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, RwLock};

/// Shared session→shard routing overrides, maintained by the shards and
/// consulted by every `ServiceHandle`. A session absent from the map
/// lives on its hash-placed home shard ([`shard_of`]); migration inserts
/// an override, completion removes it. The `moved` flag keeps the
/// common no-migrations case lock-free on the command hot path.
#[derive(Debug, Default)]
pub(crate) struct RoutingTable {
    pub(crate) moved: AtomicBool,
    pub(crate) routes: RwLock<HashMap<u64, usize>>,
}

impl RoutingTable {
    /// The shard currently owning `id` in a pool of `shards`.
    pub(crate) fn shard_for(&self, id: u64, shards: usize) -> usize {
        if self.moved.load(Ordering::Acquire) {
            if let Some(&shard) = self.routes.read().expect("routing table poisoned").get(&id) {
                return shard;
            }
        }
        shard_of(id, shards)
    }

    /// Records that `id` now lives on `shard`.
    pub(crate) fn set(&self, id: u64, shard: usize) {
        // Flag updates happen under the write lock (here and in
        // `clear`) so flag and map can never disagree.
        let mut routes = self.routes.write().expect("routing table poisoned");
        routes.insert(id, shard);
        self.moved.store(true, Ordering::Release);
    }

    /// Drops the override for `id` (after completion). When the last
    /// override goes, the fast-path flag resets so routing returns to
    /// lock-free hash placement.
    pub(crate) fn clear(&self, id: u64) {
        if self.moved.load(Ordering::Acquire) {
            let mut routes = self.routes.write().expect("routing table poisoned");
            routes.remove(&id);
            if routes.is_empty() {
                self.moved.store(false, Ordering::Release);
            }
        }
    }
}

/// Everything a shard worker needs at spawn time.
pub(crate) struct ShardWorker {
    pub(crate) index: usize,
    pub(crate) control: Receiver<SessionCommand>,
    pub(crate) events: SyncSender<SessionEvent>,
    /// Control senders of every shard in the pool (self included), for
    /// the transfer leg of a migration.
    pub(crate) peers: Vec<SyncSender<SessionCommand>>,
    pub(crate) routes: Arc<RoutingTable>,
    pub(crate) model: ArmModel,
    pub(crate) pacing: Pacing,
    pub(crate) period: f64,
    pub(crate) scheduler: Scheduler,
    pub(crate) loads: Arc<Vec<ShardLoad>>,
    /// Shared telemetry plane (fleet counters + observer flag).
    pub(crate) telemetry: Arc<Telemetry>,
    /// Service-wide shared storage: adopted sessions resolve engine
    /// weights through it so same-model fleets hold claims, not copies.
    pub(crate) models: Storage,
    /// Batched SoA forecasting sweep on/off (`ServiceConfig::batching`).
    pub(crate) batching: bool,
    /// Batched lane layout override (`ServiceConfig::lane_layout`):
    /// `None` = adaptive per-lane `plan_layout`.
    pub(crate) lane_layout: Option<foreco_forecast::LaneLayout>,
}

/// The shard's mutable scheduling state, factored out of the run loop so
/// command handling, waking, and parking share one vocabulary.
struct Runtime {
    index: usize,
    events: SyncSender<SessionEvent>,
    peers: Vec<SyncSender<SessionCommand>>,
    routes: Arc<RoutingTable>,
    model: ArmModel,
    scheduler: Scheduler,
    loads: Arc<Vec<ShardLoad>>,
    /// Shared telemetry plane; this shard writes only its own slice.
    telemetry: Arc<Telemetry>,
    /// Per-pass telemetry deltas (plain `u64`s, flushed once per pass).
    scratch: TelemetryScratch,
    sessions: BTreeMap<u64, Session>,
    /// Runnable session ids, advanced in ascending order each pass.
    runnable: BTreeSet<u64>,
    /// Parked session id → the pass it last advanced (or synced)
    /// through. The backlog to replay on wake is
    /// `current pass − parked_at`.
    parked: HashMap<u64, u64>,
    /// Scheduled wakes for [`Wake::ParkedUntil`] sessions.
    wheel: TimerWheel,
    /// Completed scheduling passes.
    pass: u64,
    /// Total session-ticks advanced (eager ticks + replayed backlog).
    ticks_advanced: u64,
    /// Migration hand-offs the destination's control channel could not
    /// take yet. Transfers never use a blocking send: two shards
    /// migrating toward each other with full control channels would
    /// deadlock the pool (neither can drain its own channel while
    /// blocked in the other's). State parks here and is retried each
    /// pass instead.
    pending_transfers: Vec<(usize, Box<crate::snapshot::SessionSnapshot>)>,
    /// Shared storage for adopted sessions' engine weights.
    models: Storage,
    /// Whether the pass runs the batched SoA forecasting sweep.
    batching: bool,
    /// Lane state for the batched sweep (buffers retained across passes).
    planner: BatchPlanner,
    /// Reusable encode buffer for fleet-archive parts (`SnapshotInto`):
    /// cleared and refilled per part, so a fleet checkpoint amortises to
    /// zero steady-state encoder allocations on the shard — only buffer
    /// growth and the reply hand-off copy allocate.
    snapshot_scratch: Vec<u8>,
}

impl Runtime {
    /// This shard's slice of the shared load counters.
    fn load(&self) -> &ShardLoad {
        &self.loads[self.index]
    }

    /// Syncs a parked session through the current pass: replays its idle
    /// backlog, cancels its timers, and provisionally requeues it. A
    /// no-op for runnable (or unknown) sessions. Callers that may leave
    /// the session idle re-park it via [`Runtime::settle`]. `traffic`
    /// marks wakes caused by operator input (`Inject`/`Close`) so the
    /// load counters keep administrative syncs (snapshot, migration,
    /// shutdown) out of the traffic-wakeup figure.
    fn poke(&mut self, id: u64, traffic: bool) {
        if let Some(parked_at) = self.parked.remove(&id) {
            let backlog = self.pass - parked_at;
            self.wheel.cancel(id);
            let session = self.sessions.get_mut(&id).expect("parked session exists");
            // Gated sessions replay nothing: their clock was suspended.
            let replayed = session.catch_up(backlog);
            self.ticks_advanced += replayed;
            self.scratch.ticks += replayed;
            self.scratch.wakes += 1;
            if traffic {
                self.load().traffic_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            self.runnable.insert(id);
        }
    }

    /// Re-parks `id` if its wake hint says the next tick is a no-op;
    /// the inverse of [`Runtime::poke`], run after a control command.
    fn settle(&mut self, id: u64) {
        if !self.scheduler.event_driven() || !self.runnable.contains(&id) {
            return;
        }
        let wake = match self.sessions.get(&id) {
            Some(session) => session.wake_hint(),
            None => return,
        };
        if wake != Wake::Runnable {
            self.park(id, wake, self.pass);
        }
    }

    /// Moves `id` out of the run queue; `ParkedUntil` wakes are keyed
    /// into the timer wheel at the pass that maps to the named tick.
    fn park(&mut self, id: u64, wake: Wake, at_pass: u64) {
        self.runnable.remove(&id);
        self.parked.insert(id, at_pass);
        self.scratch.parks += 1;
        // Park-level lifecycle narration is opt-in (see the telemetry
        // module docs): without observers the only cost is this load.
        if self.telemetry.observed() {
            let _ = self.events.send(SessionEvent::Parked {
                id,
                shard: self.index,
            });
        }
        if let Wake::ParkedUntil(due_tick) = wake {
            // The wheel idles (un-advanced) while empty; re-anchor it to
            // the present so firing this timer is O(gap), not O(passes
            // since the wheel last held anything).
            if self.wheel.is_empty() {
                self.wheel.sync(at_pass);
            }
            let session = &self.sessions[&id];
            // The session has completed `tick()` ticks; tick index
            // `due_tick` runs `due_tick − tick() + 1` passes after the
            // one it just advanced (or synced) through.
            let due_pass = at_pass + (due_tick - session.tick()) + 1;
            self.wheel.insert(due_pass, id);
        }
    }

    /// Places a session that just entered this shard (open or adopt).
    fn enqueue_new(&mut self, id: u64) {
        let wake = if self.scheduler.event_driven() {
            self.sessions[&id].wake_hint()
        } else {
            Wake::Runnable
        };
        if wake == Wake::Runnable {
            self.runnable.insert(id);
        } else {
            self.park(id, wake, self.pass);
        }
    }

    /// Removes a completed session everywhere and reports it.
    fn complete(&mut self, id: u64, report: crate::session::SessionReport) {
        self.scratch.completed += 1;
        // Misses on an engine session were each covered by a forecast;
        // baseline sessions have no recovery to credit.
        if report.stats.is_some() {
            self.scratch.recovered_misses += report.misses as u64;
        }
        self.sessions.remove(&id);
        self.runnable.remove(&id);
        if self.parked.remove(&id).is_some() {
            self.wheel.cancel(id);
        }
        // A migrated-in session leaves a routing override behind; clear
        // it so the id can be reused at its home placement.
        if shard_of(id, self.peers.len()) != self.index {
            self.routes.clear(id);
        }
        let _ = self.events.send(SessionEvent::Completed { id, report });
    }

    /// Drain→transfer leg of a migration (the caller validated `to` and
    /// the session's existence). `quiet` suppresses per-session failure
    /// events for balancer-initiated moves, which retry on the next
    /// round anyway.
    fn migrate_out(&mut self, id: u64, to: usize, quiet: bool) {
        self.poke(id, false); // a parked session must ship its synced state
        let session = self.sessions.get(&id).expect("caller checked existence");
        match session.snapshot() {
            Ok(snapshot) => {
                // The session has finished its current tick (migrations
                // run inside the control drain), so the snapshot is
                // tick-aligned. Remove it *before* the hand-off: from
                // here the destination owns the state.
                self.sessions.remove(&id);
                self.runnable.remove(&id);
                self.routes.set(id, to);
                self.load().migrated_out.fetch_add(1, Ordering::Relaxed);
                let _ = self.events.send(SessionEvent::Migrated {
                    id,
                    from: self.index,
                    to,
                });
                self.hand_off(to, Box::new(snapshot));
            }
            Err(e) => {
                // Unsnapshotable sessions stay put and keep running
                // (or re-park, if they were idle).
                if !quiet {
                    let _ = self.events.send(SessionEvent::SnapshotFailed {
                        id,
                        reason: e.to_string(),
                    });
                }
                self.settle(id);
            }
        }
    }

    /// Non-blocking transfer to a peer; a full channel parks the state
    /// for retry, a dead one drops it (pool tearing down).
    fn hand_off(&mut self, to: usize, snapshot: Box<crate::snapshot::SessionSnapshot>) {
        // Migration snapshots are self-contained (scripted sources ship
        // their rows inline), so no trace claim rides along.
        match self.peers[to].try_send(SessionCommand::Adopt {
            snapshot,
            trace: None,
        }) {
            Ok(()) => {}
            Err(std::sync::mpsc::TrySendError::Full(SessionCommand::Adopt {
                snapshot: s, ..
            })) => {
                self.pending_transfers.push((to, s));
            }
            Err(_) => {}
        }
    }

    /// One control command. Returns true when it was `Shutdown`.
    fn handle(&mut self, command: SessionCommand) -> bool {
        match command {
            SessionCommand::Open(spec) => {
                let id = spec.id;
                if let std::collections::btree_map::Entry::Vacant(slot) = self.sessions.entry(id) {
                    slot.insert(Session::open(&spec, &self.model));
                    self.scratch.opened += 1;
                    self.enqueue_new(id);
                    let _ = self.events.send(SessionEvent::Opened {
                        id,
                        shard: self.index,
                    });
                } else {
                    // Never destroy a live session: reject the
                    // replacement and say so.
                    let _ = self.events.send(SessionEvent::DuplicateSession { id });
                }
            }
            SessionCommand::Inject { id, command } => {
                if self.sessions.contains_key(&id) {
                    // Traffic is a wake source: sync the backlog first so
                    // the command lands on the tick it arrived at.
                    self.poke(id, true);
                    let session = self.sessions.get_mut(&id).expect("checked above");
                    if session.offer(command) == Offer::Dropped {
                        self.scratch.inbox_drops += 1;
                        let _ = self.events.send(SessionEvent::CommandDropped {
                            id,
                            tick: session.tick(),
                        });
                    }
                    self.settle(id);
                } else {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            }
            SessionCommand::InjectMiss { id } => {
                if self.sessions.contains_key(&id) {
                    self.poke(id, true);
                    let session = self.sessions.get_mut(&id).expect("checked above");
                    session.offer_miss();
                    self.scratch.miss_marks += 1;
                    self.settle(id);
                } else {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            }
            SessionCommand::InjectLate { id, command, age } => {
                if self.sessions.contains_key(&id) {
                    self.poke(id, true);
                    let session = self.sessions.get_mut(&id).expect("checked above");
                    if session.offer_late(command, age) == Offer::Dropped {
                        self.scratch.inbox_drops += 1;
                        let _ = self.events.send(SessionEvent::CommandDropped {
                            id,
                            tick: session.tick(),
                        });
                    } else {
                        self.scratch.late_replacements += 1;
                    }
                    self.settle(id);
                } else {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            }
            SessionCommand::Close { id } => {
                if self.sessions.contains_key(&id) {
                    self.poke(id, true);
                    self.sessions.get_mut(&id).expect("checked above").close();
                    self.settle(id);
                } else {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            }
            SessionCommand::Snapshot { id } => {
                if self.sessions.contains_key(&id) {
                    // Sync first: the checkpoint must capture the state
                    // an eager shard would have at this pass, park
                    // backlog included — that is what makes parked
                    // snapshots restore bit-identically.
                    self.poke(id, false);
                    let session = &self.sessions[&id];
                    match session.snapshot() {
                        Ok(snapshot) => {
                            self.scratch.snapshots += 1;
                            let _ = self.events.send(SessionEvent::Snapshotted {
                                id,
                                shard: self.index,
                                snapshot: Box::new(snapshot),
                            });
                        }
                        Err(e) => {
                            let _ = self.events.send(SessionEvent::SnapshotFailed {
                                id,
                                reason: e.to_string(),
                            });
                        }
                    }
                    self.settle(id);
                } else {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            }
            SessionCommand::SnapshotInto { id, reply } => {
                if self.sessions.contains_key(&id) {
                    // Same sync rule as `Snapshot`: the archived state
                    // must match what an eager shard would hold.
                    self.poke(id, false);
                    let result = self.sessions[&id].snapshot_for_fleet();
                    let part = match result {
                        Ok((snapshot, trace)) => {
                            // Encode into the shard's reusable scratch;
                            // the clone is the one hand-off allocation
                            // the reply channel requires.
                            self.snapshot_scratch.clear();
                            snapshot.encode_into(&mut self.snapshot_scratch);
                            self.scratch.snapshots += 1;
                            self.scratch.archive_parts += 1;
                            self.scratch.archive_bytes += self.snapshot_scratch.len() as u64;
                            crate::protocol::FleetPart::Snapshot {
                                id,
                                frame: self.snapshot_scratch.clone(),
                                trace,
                            }
                        }
                        Err(e) => crate::protocol::FleetPart::Failed {
                            id,
                            reason: e.to_string(),
                        },
                    };
                    // The caller sized the reply channel to its request
                    // count, so this never blocks the shard loop.
                    let _ = reply.send(part);
                    self.settle(id);
                } else {
                    let _ = reply.send(crate::protocol::FleetPart::Missing { id });
                }
            }
            SessionCommand::Migrate { id, to } => match self.sessions.get(&id) {
                Some(_) if to >= self.peers.len() => {
                    // The handle validates destinations; this guards raw
                    // control-channel writers.
                    let _ = self.events.send(SessionEvent::SnapshotFailed {
                        id,
                        reason: format!(
                            "migration destination {to} outside the {}-shard pool",
                            self.peers.len()
                        ),
                    });
                }
                Some(_) if to == self.index => {
                    // Already home: a migration to the owning shard is a
                    // successful no-op.
                    let _ = self.events.send(SessionEvent::Migrated {
                        id,
                        from: self.index,
                        to: self.index,
                    });
                }
                Some(_) => self.migrate_out(id, to, false),
                None => {
                    let _ = self.events.send(SessionEvent::UnknownSession { id });
                }
            },
            SessionCommand::Adopt { snapshot, trace } => {
                let id = snapshot.id;
                if let std::collections::btree_map::Entry::Vacant(slot) = self.sessions.entry(id) {
                    match Session::restore_with(&snapshot, &self.model, trace, Some(&self.models)) {
                        Ok(session) => {
                            let tick = session.tick();
                            slot.insert(session);
                            if shard_of(id, self.peers.len()) != self.index {
                                self.routes.set(id, self.index);
                            } else {
                                self.routes.clear(id);
                            }
                            self.load().migrated_in.fetch_add(1, Ordering::Relaxed);
                            self.scratch.adoptions += 1;
                            self.enqueue_new(id);
                            let _ = self.events.send(SessionEvent::Restored {
                                id,
                                shard: self.index,
                                tick,
                            });
                        }
                        Err(e) => {
                            let _ = self.events.send(SessionEvent::RestoreFailed {
                                id,
                                reason: e.to_string(),
                            });
                        }
                    }
                } else {
                    let _ = self.events.send(SessionEvent::DuplicateSession { id });
                }
            }
            SessionCommand::Rebalance { to, count } => {
                if to < self.peers.len() && to != self.index {
                    // Policy: shed live work only — parked sessions cost
                    // nothing where they are. The highest runnable ids
                    // go, a deterministic pick that leaves long-lived
                    // low ids settled in place.
                    let picks: Vec<u64> = self.runnable.iter().rev().take(count).copied().collect();
                    for id in picks {
                        self.migrate_out(id, to, true);
                    }
                }
            }
            SessionCommand::Shutdown => return true,
        }
        false
    }

    /// Fires timers due at the upcoming pass and wakes their sessions.
    fn fire_timers(&mut self) {
        if !self.scheduler.event_driven() || self.wheel.is_empty() {
            return;
        }
        let mut fired = Vec::new();
        self.wheel.advance(self.pass + 1, &mut fired);
        fired.sort_unstable();
        for id in fired {
            if let Some(parked_at) = self.parked.remove(&id) {
                let backlog = self.pass - parked_at;
                let session = self.sessions.get_mut(&id).expect("timer for live session");
                let replayed = session.catch_up(backlog);
                self.ticks_advanced += replayed;
                self.scratch.ticks += replayed;
                self.scratch.wakes += 1;
                self.load().timer_wakeups.fetch_add(1, Ordering::Relaxed);
                self.runnable.insert(id);
            }
        }
    }

    /// One scheduling pass: fire timers, advance the run queue in
    /// ascending-id order, park/complete per verdict.
    fn run_pass(&mut self) {
        let target = self.pass + 1;
        self.fire_timers();
        // Batched SoA sweep, phase 1 (gather): after timer wakes (which
        // mutate engine history via catch_up) and before any session
        // advances, collect every provably-forecasting session's window
        // into its lane and run one batched forecast per lane. Lane
        // membership is re-derived here every pass — that, not a
        // registry, is what keeps it correct across park/wake, migrate,
        // and adopt. Phase 2 (the sweep below) hands each session its
        // row; sessions the peek skipped take the scalar path,
        // bit-identically.
        if self.batching {
            self.planner.begin_pass();
            if self.runnable.len() == self.sessions.len() {
                for (&id, session) in self.sessions.iter() {
                    if let Some((model, history)) = session.batch_window() {
                        self.planner.gather(id, model, &history);
                    }
                }
            } else {
                for &id in &self.runnable {
                    if let Some((model, history)) = self.sessions[&id].batch_window() {
                        self.planner.gather(id, model, &history);
                    }
                }
            }
            self.planner.run();
        }
        let mut advanced = 0u64;
        let mut parked: Vec<(u64, Wake)> = Vec::new();
        let mut completed: Vec<(u64, Box<crate::session::SessionReport>)> = Vec::new();
        let event_driven = self.scheduler.event_driven();
        if self.runnable.len() == self.sessions.len() {
            // Everyone is runnable (the eager mode invariant, and the
            // event mode's settle phase): sweep the map directly rather
            // than paying a per-session id lookup.
            for (&id, session) in self.sessions.iter_mut() {
                match session.advance_batched(self.planner.take(id)) {
                    Advance::Ticked(wake) => {
                        advanced += 1;
                        if event_driven && wake != Wake::Runnable {
                            parked.push((id, wake));
                        }
                    }
                    // A starved gated session: no tick happened, so it
                    // counts as no advance; under the event scheduler it
                    // parks until traffic (eager keeps polling it — the
                    // ground-truth sweep stays a sweep).
                    Advance::Idle(wake) => {
                        if event_driven {
                            parked.push((id, wake));
                        }
                    }
                    Advance::Completed(report) => completed.push((id, report)),
                }
            }
        } else {
            let ids: Vec<u64> = self.runnable.iter().copied().collect();
            for id in ids {
                let session = self.sessions.get_mut(&id).expect("runnable session exists");
                match session.advance_batched(self.planner.take(id)) {
                    Advance::Ticked(wake) => {
                        advanced += 1;
                        if event_driven && wake != Wake::Runnable {
                            parked.push((id, wake));
                        }
                    }
                    Advance::Idle(wake) => {
                        if event_driven {
                            parked.push((id, wake));
                        }
                    }
                    Advance::Completed(report) => completed.push((id, report)),
                }
            }
        }
        for (id, wake) in parked {
            self.park(id, wake, target);
        }
        for (id, report) in completed {
            self.complete(id, *report);
        }
        self.ticks_advanced += advanced;
        self.pass = target;
        self.load().wakeups.fetch_add(advanced, Ordering::Relaxed);
        self.load().passes.fetch_add(1, Ordering::Relaxed);
        self.scratch.ticks += advanced;
        self.flush_telemetry();
    }

    /// Flushes accumulated telemetry deltas to this shard's slice of
    /// the shared plane (a no-op when nothing changed).
    fn flush_telemetry(&mut self) {
        self.scratch.flush(self.telemetry.shard(self.index));
    }

    /// Publishes the point-in-time gauges.
    fn publish_gauges(&self) {
        let load = self.load();
        load.sessions
            .store(self.sessions.len() as u64, Ordering::Relaxed);
        load.runnable
            .store(self.runnable.len() as u64, Ordering::Relaxed);
        load.parked
            .store(self.parked.len() as u64, Ordering::Relaxed);
    }

    /// Retries parked migration hand-offs; destinations free their
    /// channels by draining, which happens every pass they make.
    fn retry_transfers(&mut self) {
        if self.pending_transfers.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_transfers);
        for (to, snapshot) in pending {
            self.hand_off(to, snapshot);
        }
    }
}

impl ShardWorker {
    /// The shard main loop. Returns total session-ticks advanced.
    pub(crate) fn run(self) -> u64 {
        let ShardWorker {
            index,
            control,
            events,
            peers,
            routes,
            model,
            pacing,
            period,
            scheduler,
            loads,
            telemetry,
            models,
            batching,
            lane_layout,
        } = self;
        let mut rt = Runtime {
            index,
            events,
            peers,
            routes,
            model,
            scheduler,
            loads,
            telemetry,
            scratch: TelemetryScratch::default(),
            sessions: BTreeMap::new(),
            runnable: BTreeSet::new(),
            parked: HashMap::new(),
            wheel: TimerWheel::new(0),
            pass: 0,
            ticks_advanced: 0,
            pending_transfers: Vec::new(),
            models,
            batching,
            planner: BatchPlanner::new(lane_layout),
            snapshot_scratch: Vec::new(),
        };
        let mut pacer = Pacer::new(pacing, period);
        let mut shutdown = false;
        let mut idle = true;
        // Wall deadline of the current 50 Hz slot while a real-time
        // shard is fully parked. Fixed when the wait begins and kept
        // across interleaved control commands — restarting the period
        // per command would let sub-period control traffic stall
        // virtual time (and ParkedUntil timers) indefinitely.
        let mut slot_deadline: Option<std::time::Instant> = None;
        'run: loop {
            rt.retry_transfers();
            // Drain control; block when quiescent (nothing runnable, no
            // timer a blocked shard could miss, no parked hand-off).
            let mut slot_elapsed = false;
            loop {
                let quiescent = rt.runnable.is_empty()
                    && rt.pending_transfers.is_empty()
                    && !shutdown
                    && (rt.wheel.is_empty() || pacing == Pacing::RealTime);
                let command = if quiescent {
                    idle = true;
                    if pacing == Pacing::RealTime && scheduler.event_driven() {
                        // Keep 50 Hz slots flowing while fully parked so
                        // idle spans track wall time; traffic interrupts
                        // the wait mid-slot but never extends the slot.
                        let deadline = *slot_deadline.get_or_insert_with(|| {
                            std::time::Instant::now() + std::time::Duration::from_secs_f64(period)
                        });
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            slot_deadline = None;
                            slot_elapsed = true;
                            break;
                        }
                        match control.recv_timeout(deadline - now) {
                            Ok(c) => c,
                            Err(RecvTimeoutError::Timeout) => {
                                slot_deadline = None;
                                slot_elapsed = true;
                                break;
                            }
                            Err(RecvTimeoutError::Disconnected) => break 'run,
                        }
                    } else {
                        match control.recv() {
                            Ok(c) => c,
                            Err(_) => break 'run, // all handles dropped
                        }
                    }
                } else {
                    match control.try_recv() {
                        Ok(c) => c,
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            shutdown = true;
                            break;
                        }
                    }
                };
                shutdown |= rt.handle(command);
            }
            if slot_elapsed {
                // The timed receive consumed this wall slot; run the
                // pass (firing any due timers) without pacing again.
                rt.run_pass();
                rt.publish_gauges();
                continue;
            }
            if shutdown {
                if rt.sessions.is_empty() && rt.pending_transfers.is_empty() {
                    break;
                }
                // A shutdown request finishes in-flight scripted sessions
                // only if they complete naturally; streamed sessions are
                // closed so they drain and report rather than hang —
                // parked ones wake (with their backlog synced) to do so.
                let parked: Vec<u64> = rt.parked.keys().copied().collect();
                for id in parked {
                    rt.poke(id, false);
                }
                for session in rt.sessions.values_mut() {
                    session.close();
                }
                rt.runnable.extend(rt.sessions.keys().copied());
            }
            if rt.runnable.is_empty() {
                if scheduler.event_driven() && !rt.wheel.is_empty() && pacing == Pacing::Unpaced {
                    // Only timers remain: jump straight to the pass
                    // before the next due one — the skipped passes are
                    // billed to the parked sessions on wake.
                    rt.pass = rt.wheel.next_due().expect("wheel non-empty") - 1;
                } else {
                    if !rt.pending_transfers.is_empty() {
                        // Nothing to advance, destination still full:
                        // yield briefly instead of spinning on try_send.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    // Command-only iterations (e.g. a miss marker that
                    // left everything parked) still surface their
                    // counters before the shard blocks again.
                    rt.flush_telemetry();
                    rt.publish_gauges();
                    continue;
                }
            }
            if idle {
                // Coming back from an idle stretch: re-anchor real-time
                // pacing so the first live tick is not a catch-up burst.
                pacer.resync();
                idle = false;
            }
            // Live work resumes: the pacer owns slot timing from here.
            slot_deadline = None;
            rt.run_pass();
            rt.publish_gauges();
            pacer.tick_complete();
        }
        let _ = rt.events.send(SessionEvent::ShardTerminated {
            shard: index,
            ticks_advanced: rt.ticks_advanced,
        });
        rt.ticks_advanced
    }
}

/// Deterministic session→shard placement: SplitMix64 finalizer over the
/// id, reduced modulo the shard count. Stable across runs, processes,
/// and shard pools of equal size.
pub fn shard_of(id: u64, shards: usize) -> usize {
    assert!(shards >= 1, "shard_of: need at least one shard");
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8, 16] {
            for id in 0..100u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
    }

    #[test]
    fn placement_spreads_sessions() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..1000u64 {
            counts[shard_of(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {i} underloaded: {c}/1000");
        }
    }
}
