//! The live telemetry plane: lock-free fleet counters and their
//! Prometheus rendering.
//!
//! # Observability discipline
//!
//! The counters follow the same rules as the scheduler's
//! [`ShardLoad`](crate::sched::ShardLoad) accounting, and those rules
//! are the invariant that keeps observability free:
//!
//! - **Relaxed atomics, single writer.** Each shard owns one
//!   [`ShardTelemetry`] slice of the shared [`Telemetry`] plane and is
//!   its only writer; readers snapshot with `Ordering::Relaxed` loads.
//!   No locks, no contention, no ordering games.
//! - **Never on the tick path.** Nothing here is touched inside
//!   `Session::advance`. Shards accumulate plain `u64` deltas while
//!   handling commands and sweeping the run queue, then flush them with
//!   a handful of `fetch_add`s once per scheduling pass — so the
//!   steady-tick path stays allocation-free and branch-identical
//!   whether anyone is watching or not.
//! - **Rendering allocates only in the control plane.** Turning a
//!   [`FleetTelemetry`] snapshot into Prometheus text builds a `String`;
//!   that happens in whatever thread asked (a TCP control connection, a
//!   test), never in a shard.
//!
//! Counters reflect each shard's last completed pass, exactly like the
//! load gauges — a scrape between passes reads the previous flush.
//!
//! # Lifecycle observers
//!
//! Park-level lifecycle events (`SessionEvent::Parked`) are emitted by
//! shards only while at least one observer is registered
//! ([`Telemetry::attach_observer`]): parks are too frequent on gated
//! fleets to narrate unconditionally, and with no subscribers the only
//! cost is one relaxed load per park. Event emission never changes
//! session math, so results stay bit-identical either way.

use crate::metrics::{IngressSummary, PercentileSummary, ShardLoadSummary};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shared telemetry plane: one [`ShardTelemetry`] slice per shard
/// plus the lifecycle-observer count. Created by `Service::spawn`,
/// shared (via `Arc`) between every shard and every `ServiceHandle`.
#[derive(Debug)]
pub struct Telemetry {
    shards: Vec<ShardTelemetry>,
    /// Live lifecycle observers (event subscribers that want
    /// park-level session events). Shards emit `SessionEvent::Parked`
    /// only while this is non-zero.
    observers: AtomicU64,
}

impl Telemetry {
    /// A zeroed plane for `shards` workers.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| ShardTelemetry::default()).collect(),
            observers: AtomicU64::new(0),
        }
    }

    /// One shard's counter slice.
    pub fn shard(&self, index: usize) -> &ShardTelemetry {
        &self.shards[index]
    }

    /// Registers a lifecycle observer (see module docs). Paired with
    /// [`Telemetry::detach_observer`].
    pub fn attach_observer(&self) {
        self.observers.fetch_add(1, Ordering::Relaxed);
    }

    /// Unregisters a lifecycle observer.
    pub fn detach_observer(&self) {
        self.observers.fetch_sub(1, Ordering::Relaxed);
    }

    /// True while any lifecycle observer is attached.
    pub fn observed(&self) -> bool {
        self.observers.load(Ordering::Relaxed) > 0
    }

    /// Point-in-time copy of every shard's counters.
    pub fn summaries(&self) -> Vec<ShardTelemetrySummary> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| shard.summary(index))
            .collect()
    }
}

/// One shard's live telemetry counters. Cumulative; single-writer
/// (the owning shard), flushed once per scheduling pass.
#[derive(Debug, Default)]
pub struct ShardTelemetry {
    /// Session-ticks advanced (eager ticks + replayed park backlog).
    pub ticks: AtomicU64,
    /// Sessions opened on this shard.
    pub opened: AtomicU64,
    /// Sessions that ran to completion on this shard.
    pub completed: AtomicU64,
    /// Deadline misses covered by a recovery engine's forecast,
    /// accumulated from completed sessions' reports.
    pub recovered_misses: AtomicU64,
    /// Miss markers accepted by gated sessions (`InjectMiss`) — the live
    /// wire-loss count, visible while sessions still run.
    pub miss_marks: AtomicU64,
    /// §VII-C late replacements accepted (`InjectLate` offers that the
    /// session's gated inbox took).
    pub late_replacements: AtomicU64,
    /// Sessions parked (idle fixed point or scheduled wake).
    pub parks: AtomicU64,
    /// Sessions unparked (traffic, timer, or administrative sync).
    pub wakes: AtomicU64,
    /// Commands dropped on a full session inbox.
    pub inbox_drops: AtomicU64,
    /// Sessions checkpointed (`Snapshot` events plus fleet-archive
    /// parts exported).
    pub snapshots: AtomicU64,
    /// Snapshots rehydrated into live sessions (`Adopt`, migrations
    /// included).
    pub adoptions: AtomicU64,
    /// Fleet-archive parts encoded by this shard (`SnapshotInto`).
    pub archive_parts: AtomicU64,
    /// Bytes of binary snapshot frames encoded for fleet archives.
    pub archive_bytes: AtomicU64,
}

impl ShardTelemetry {
    /// A point-in-time copy for shard `index`.
    pub fn summary(&self, index: usize) -> ShardTelemetrySummary {
        ShardTelemetrySummary {
            shard: index,
            ticks: self.ticks.load(Ordering::Relaxed),
            opened: self.opened.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            recovered_misses: self.recovered_misses.load(Ordering::Relaxed),
            miss_marks: self.miss_marks.load(Ordering::Relaxed),
            late_replacements: self.late_replacements.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            inbox_drops: self.inbox_drops.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            adoptions: self.adoptions.load(Ordering::Relaxed),
            archive_parts: self.archive_parts.load(Ordering::Relaxed),
            archive_bytes: self.archive_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-`u64` copy of one shard's [`ShardTelemetry`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ShardTelemetrySummary {
    /// Shard index.
    pub shard: usize,
    /// Session-ticks advanced.
    pub ticks: u64,
    /// Sessions opened.
    pub opened: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Forecast-recovered misses (from completed engine sessions).
    pub recovered_misses: u64,
    /// Live miss markers accepted by gated sessions.
    pub miss_marks: u64,
    /// Late replacements accepted.
    pub late_replacements: u64,
    /// Park transitions.
    pub parks: u64,
    /// Unpark transitions.
    pub wakes: u64,
    /// Commands dropped on full inboxes.
    pub inbox_drops: u64,
    /// Sessions checkpointed.
    pub snapshots: u64,
    /// Snapshots rehydrated.
    pub adoptions: u64,
    /// Fleet-archive parts encoded.
    pub archive_parts: u64,
    /// Bytes of archive frames encoded.
    pub archive_bytes: u64,
}

/// Wire-side ingress totals, summed across sessions (live and retired).
/// Zero unless a gateway merges its counters in — the serve crate has
/// no socket knowledge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IngressTotals {
    /// Well-formed data frames received.
    pub received: u64,
    /// Command slots delivered in order.
    pub delivered: u64,
    /// Slots flushed as losses.
    pub lost: u64,
    /// Stale frames fed through the late-command path.
    pub late: u64,
    /// Out-of-order arrivals healed by the reorder buffer.
    pub reordered: u64,
    /// Duplicate frames discarded.
    pub duplicates: u64,
    /// Frames rejected for invalid payloads.
    pub malformed: u64,
    /// Backpressure bounces converted to losses.
    pub bounced: u64,
}

impl IngressTotals {
    /// Folds one session's ingress counters into the totals.
    pub fn absorb(&mut self, summary: &IngressSummary) {
        self.received += summary.received;
        self.delivered += summary.delivered;
        self.lost += summary.lost;
        self.late += summary.late;
        self.reordered += summary.reordered;
        self.duplicates += summary.duplicates;
        self.malformed += summary.malformed;
        self.bounced += summary.bounced;
    }
}

/// A point-in-time view of the whole fleet: per-shard telemetry
/// counters, per-shard scheduler load, and (when a gateway fills them
/// in) wire-side ingress totals. Snapshot via `ServiceHandle::telemetry`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FleetTelemetry {
    /// Per-shard telemetry counters.
    pub shards: Vec<ShardTelemetrySummary>,
    /// Per-shard scheduler load (runnable/parked depth, passes,
    /// wakeups, migrations).
    pub loads: Vec<ShardLoadSummary>,
    /// Wire-side ingress totals (zero without a gateway).
    pub ingress: IngressTotals,
}

impl FleetTelemetry {
    /// Total session-ticks advanced across shards.
    pub fn total_ticks(&self) -> u64 {
        self.shards.iter().map(|s| s.ticks).sum()
    }

    /// Total sessions completed across shards.
    pub fn total_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Live sessions across shards (sum of the per-shard gauges).
    pub fn live_sessions(&self) -> u64 {
        self.loads.iter().map(|l| l.sessions).sum()
    }
}

/// Appends one metric family: `# HELP` / `# TYPE` header plus one
/// `name{shard="i"} value` sample per shard.
fn family_per_shard<F: Fn(&ShardTelemetrySummary) -> u64>(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    shards: &[ShardTelemetrySummary],
    get: F,
) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for shard in shards {
        let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", shard.shard, get(shard));
    }
}

/// Same, over the scheduler-load summaries.
fn load_family_per_shard<F: Fn(&ShardLoadSummary) -> u64>(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    loads: &[ShardLoadSummary],
    get: F,
) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for load in loads {
        let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", load.shard, get(load));
    }
}

/// A single unlabelled sample with its header.
fn scalar(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    use std::fmt::Write;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders a [`FleetTelemetry`] snapshot (plus, when available, the
/// distribution of completed sessions' task-space RMSE) in the
/// Prometheus text exposition format: `# HELP`/`# TYPE` headers, one
/// series per shard via a `shard` label, `_total`-suffixed counters.
/// Allocates freely — this is control-plane code by the observability
/// discipline (module docs).
pub fn render_prometheus(fleet: &FleetTelemetry, rmse_mm: Option<&PercentileSummary>) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(4096);
    let shards = &fleet.shards;
    family_per_shard(
        &mut out,
        "foreco_ticks_total",
        "counter",
        "Session-ticks advanced (catch-up replays included).",
        shards,
        |s| s.ticks,
    );
    family_per_shard(
        &mut out,
        "foreco_sessions_opened_total",
        "counter",
        "Sessions opened.",
        shards,
        |s| s.opened,
    );
    family_per_shard(
        &mut out,
        "foreco_sessions_completed_total",
        "counter",
        "Sessions run to completion.",
        shards,
        |s| s.completed,
    );
    family_per_shard(
        &mut out,
        "foreco_recovered_misses_total",
        "counter",
        "Deadline misses covered by forecast (completed engine sessions).",
        shards,
        |s| s.recovered_misses,
    );
    family_per_shard(
        &mut out,
        "foreco_miss_marks_total",
        "counter",
        "Miss markers accepted by gated sessions (live wire losses).",
        shards,
        |s| s.miss_marks,
    );
    family_per_shard(
        &mut out,
        "foreco_late_replacements_total",
        "counter",
        "Late command replacements accepted (section VII-C path).",
        shards,
        |s| s.late_replacements,
    );
    family_per_shard(
        &mut out,
        "foreco_parks_total",
        "counter",
        "Sessions parked at an idle fixed point.",
        shards,
        |s| s.parks,
    );
    family_per_shard(
        &mut out,
        "foreco_wakes_total",
        "counter",
        "Sessions unparked (traffic, timer, or administrative sync).",
        shards,
        |s| s.wakes,
    );
    family_per_shard(
        &mut out,
        "foreco_inbox_drops_total",
        "counter",
        "Commands dropped on full session inboxes.",
        shards,
        |s| s.inbox_drops,
    );
    family_per_shard(
        &mut out,
        "foreco_snapshots_total",
        "counter",
        "Sessions checkpointed (single snapshots and fleet-archive parts).",
        shards,
        |s| s.snapshots,
    );
    family_per_shard(
        &mut out,
        "foreco_adoptions_total",
        "counter",
        "Snapshots rehydrated into live sessions (migrations included).",
        shards,
        |s| s.adoptions,
    );
    family_per_shard(
        &mut out,
        "foreco_archive_parts_total",
        "counter",
        "Fleet-archive parts encoded (SnapshotInto replies).",
        shards,
        |s| s.archive_parts,
    );
    family_per_shard(
        &mut out,
        "foreco_archive_bytes_total",
        "counter",
        "Bytes of binary snapshot frames encoded for fleet archives.",
        shards,
        |s| s.archive_bytes,
    );
    let loads = &fleet.loads;
    load_family_per_shard(
        &mut out,
        "foreco_shard_sessions",
        "gauge",
        "Live sessions owned by the shard.",
        loads,
        |l| l.sessions,
    );
    load_family_per_shard(
        &mut out,
        "foreco_shard_runnable",
        "gauge",
        "Sessions in the run queue after the last pass.",
        loads,
        |l| l.runnable,
    );
    load_family_per_shard(
        &mut out,
        "foreco_shard_parked",
        "gauge",
        "Sessions parked after the last pass.",
        loads,
        |l| l.parked,
    );
    load_family_per_shard(
        &mut out,
        "foreco_passes_total",
        "counter",
        "Scheduling passes executed.",
        loads,
        |l| l.passes,
    );
    load_family_per_shard(
        &mut out,
        "foreco_wakeups_total",
        "counter",
        "Session advances performed.",
        loads,
        |l| l.wakeups,
    );
    load_family_per_shard(
        &mut out,
        "foreco_migrations_out_total",
        "counter",
        "Sessions migrated away from the shard.",
        loads,
        |l| l.migrated_out,
    );
    load_family_per_shard(
        &mut out,
        "foreco_migrations_in_total",
        "counter",
        "Sessions adopted by the shard.",
        loads,
        |l| l.migrated_in,
    );
    let ingress = &fleet.ingress;
    scalar(
        &mut out,
        "foreco_ingress_received_total",
        "counter",
        "Well-formed data frames received by the gateway.",
        ingress.received as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_delivered_total",
        "counter",
        "Command slots delivered in order.",
        ingress.delivered as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_lost_total",
        "counter",
        "Slots flushed as losses.",
        ingress.lost as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_late_total",
        "counter",
        "Stale frames fed through the late-command path.",
        ingress.late as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_duplicates_total",
        "counter",
        "Duplicate frames discarded.",
        ingress.duplicates as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_malformed_total",
        "counter",
        "Frames rejected for invalid payloads.",
        ingress.malformed as f64,
    );
    scalar(
        &mut out,
        "foreco_ingress_bounced_total",
        "counter",
        "Backpressure bounces converted to losses.",
        ingress.bounced as f64,
    );
    if let Some(rmse) = rmse_mm {
        let name = "foreco_session_rmse_mm";
        let _ = writeln!(
            out,
            "# HELP {name} Task-space RMSE of completed sessions (mm)."
        );
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", rmse.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", rmse.p90);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", rmse.p99);
        let _ = writeln!(out, "{name}{{quantile=\"1\"}} {}", rmse.max);
        scalar(
            &mut out,
            "foreco_session_rmse_mm_mean",
            "gauge",
            "Mean task-space RMSE of completed sessions (mm).",
            rmse.mean,
        );
    }
    out
}

/// The per-pass scratch a shard accumulates telemetry deltas in: plain
/// `u64`s touched while handling commands and sweeping the run queue,
/// flushed to the shared atomics once per pass (only non-zero deltas
/// pay a `fetch_add`).
#[derive(Debug, Default)]
pub(crate) struct TelemetryScratch {
    pub(crate) ticks: u64,
    pub(crate) opened: u64,
    pub(crate) completed: u64,
    pub(crate) recovered_misses: u64,
    pub(crate) miss_marks: u64,
    pub(crate) late_replacements: u64,
    pub(crate) parks: u64,
    pub(crate) wakes: u64,
    pub(crate) inbox_drops: u64,
    pub(crate) snapshots: u64,
    pub(crate) adoptions: u64,
    pub(crate) archive_parts: u64,
    pub(crate) archive_bytes: u64,
}

impl TelemetryScratch {
    /// Flushes every non-zero delta into `shard` and resets the scratch.
    pub(crate) fn flush(&mut self, shard: &ShardTelemetry) {
        fn add(counter: &AtomicU64, delta: &mut u64) {
            if *delta != 0 {
                counter.fetch_add(*delta, Ordering::Relaxed);
                *delta = 0;
            }
        }
        add(&shard.ticks, &mut self.ticks);
        add(&shard.opened, &mut self.opened);
        add(&shard.completed, &mut self.completed);
        add(&shard.recovered_misses, &mut self.recovered_misses);
        add(&shard.miss_marks, &mut self.miss_marks);
        add(&shard.late_replacements, &mut self.late_replacements);
        add(&shard.parks, &mut self.parks);
        add(&shard.wakes, &mut self.wakes);
        add(&shard.inbox_drops, &mut self.inbox_drops);
        add(&shard.snapshots, &mut self.snapshots);
        add(&shard.adoptions, &mut self.adoptions);
        add(&shard.archive_parts, &mut self.archive_parts);
        add(&shard.archive_bytes, &mut self.archive_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_flushes_and_resets() {
        let telemetry = Telemetry::new(2);
        let mut scratch = TelemetryScratch {
            ticks: 5,
            parks: 2,
            ..Default::default()
        };
        scratch.flush(telemetry.shard(1));
        assert_eq!(scratch.ticks, 0);
        let s = telemetry.shard(1).summary(1);
        assert_eq!(s.ticks, 5);
        assert_eq!(s.parks, 2);
        assert_eq!(telemetry.shard(0).summary(0).ticks, 0);
    }

    #[test]
    fn observer_count_gates_lifecycle_events() {
        let telemetry = Telemetry::new(1);
        assert!(!telemetry.observed());
        telemetry.attach_observer();
        telemetry.attach_observer();
        assert!(telemetry.observed());
        telemetry.detach_observer();
        assert!(telemetry.observed());
        telemetry.detach_observer();
        assert!(!telemetry.observed());
    }

    #[test]
    fn ingress_totals_absorb_sums() {
        let mut totals = IngressTotals::default();
        totals.absorb(&IngressSummary {
            session: 1,
            received: 10,
            delivered: 8,
            lost: 2,
            late: 1,
            reordered: 3,
            duplicates: 1,
            malformed: 0,
            bounced: 1,
        });
        totals.absorb(&IngressSummary {
            session: 2,
            received: 5,
            delivered: 5,
            ..Default::default()
        });
        assert_eq!(totals.received, 15);
        assert_eq!(totals.delivered, 13);
        assert_eq!(totals.lost, 2);
    }

    #[test]
    fn prometheus_rendering_is_parseable() {
        let fleet = FleetTelemetry {
            shards: vec![ShardTelemetrySummary {
                shard: 0,
                ticks: 100,
                ..Default::default()
            }],
            loads: vec![],
            ingress: IngressTotals::default(),
        };
        let rmse = PercentileSummary::of(&[1.0, 2.0, 3.0]);
        let body = render_prometheus(&fleet, rmse.as_ref());
        assert!(body.contains("# TYPE foreco_ticks_total counter"));
        assert!(body.contains("foreco_ticks_total{shard=\"0\"} 100"));
        assert!(body.contains("foreco_session_rmse_mm{quantile=\"0.99\"}"));
        for line in body.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "unparseable line: {line}"
            );
        }
    }
}
