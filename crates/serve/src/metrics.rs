//! Service-wide aggregation: per-session reports → percentile summaries.
//!
//! The paper evaluates one loop at a time; a service hosting thousands
//! cares about the *distribution* — the p99 operator experience, not the
//! mean. [`MetricsRegistry`] collects completed [`SessionReport`]s and
//! reduces them to [`ServiceSummary`]: summed recovery counters plus
//! nearest-rank percentiles of the task-space error.
//!
//! Scheduler observability rides alongside: [`ShardLoadSummary`] is the
//! point-in-time copy of one shard's load counters (runnable vs parked
//! sessions, passes, wakeups) — the balancer's decision inputs, also
//! recordable into a registry so a run's load picture survives next to
//! its reports.

use crate::session::SessionReport;
use crate::spec::SessionId;
use foreco_core::RecoveryStats;
use serde::{Deserialize, Serialize};

/// Distribution summary of one scalar across sessions (nearest-rank
/// percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PercentileSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl PercentileSummary {
    /// Summarises a set of values; `None` when the set is empty (an
    /// empty distribution has no percentiles — callers decide whether
    /// that means "no traffic yet" or "report generation bug").
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Self {
            mean,
            p50: nearest_rank(&sorted, 0.50),
            p90: nearest_rank(&sorted, 0.90),
            p99: nearest_rank(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Point-in-time copy of one shard's scheduler load counters (see
/// `sched::ShardLoad` for the live atomics). Gauges (`sessions`,
/// `runnable`, `parked`) reflect the last completed pass; the rest are
/// cumulative over the shard's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardLoadSummary {
    /// Shard index.
    pub shard: usize,
    /// Live sessions owned by the shard.
    pub sessions: u64,
    /// Sessions in the run queue after the last pass.
    pub runnable: u64,
    /// Sessions parked (timer or awaiting input) after the last pass.
    pub parked: u64,
    /// Scheduling passes executed.
    pub passes: u64,
    /// Session advances performed across all passes.
    pub wakeups: u64,
    /// Parked sessions woken by the timer wheel.
    pub timer_wakeups: u64,
    /// Parked sessions woken by operator traffic (`Inject`/`Close`).
    pub traffic_wakeups: u64,
    /// Sessions migrated away from this shard.
    pub migrated_out: u64,
    /// Sessions adopted by this shard.
    pub migrated_in: u64,
}

impl ShardLoadSummary {
    /// Mean session advances per scheduling pass — the "wakeups per
    /// tick" an event-driven shard should keep proportional to its
    /// *active* sessions, not its total.
    pub fn wakeups_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.wakeups as f64 / self.passes as f64
        }
    }

    /// Fraction of owned sessions that were runnable after the last
    /// pass (0 when the shard owns none).
    pub fn runnable_ratio(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.runnable as f64 / self.sessions as f64
        }
    }
}

/// Point-in-time copy of one session's socket-ingress counters, as kept
/// by the `foreco-net` gateway: what the wire delivered, what it lost,
/// and what the gateway did about it. Recordable into a
/// [`MetricsRegistry`] so a run's ingress picture survives next to its
/// session reports (the engine-side view of the same events lives in
/// [`SessionReport`]'s misses and `RecoveryStats::late_patches`), and
/// deserialisable so the control plane can ship it to remote operators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngressSummary {
    /// Session the counters belong to.
    pub session: SessionId,
    /// Well-formed data frames received for this session (any order,
    /// duplicates included).
    pub received: u64,
    /// Command slots delivered to the session in order.
    pub delivered: u64,
    /// Slots flushed as losses: wire gaps past the reorder horizon,
    /// gaps resolved by the close-time flush, and bounced injections.
    /// (Slots trailing the last *received* frame are unknowable — the
    /// gateway cannot mourn datagrams it never heard of — so the
    /// session simply ends that many ticks earlier.)
    pub lost: u64,
    /// Stale frames fed through the §VII-C late-command path.
    pub late: u64,
    /// Out-of-order arrivals healed by the reorder buffer (delivered in
    /// order, invisibly to the session).
    pub reordered: u64,
    /// Already-settled sequence numbers discarded (retransmissions).
    pub duplicates: u64,
    /// Frames addressed to this session rejected for an invalid payload
    /// (e.g. a joint-vector dimension that mismatches the arm).
    pub malformed: u64,
    /// Gateway-side backpressure drops: hot-path injections bounced by
    /// a full shard control channel (`ServiceHandle::try_inject`,
    /// converted to losses), frames dropped by a full reorder buffer
    /// (redeliverable — the slot flushes as lost only if nothing ever
    /// lands), and late patches a full channel refused.
    pub bounced: u64,
}

/// Aggregate view over every completed session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceSummary {
    /// Completed sessions.
    pub sessions: usize,
    /// Total virtual ticks across sessions.
    pub total_ticks: u64,
    /// Total deadline misses across sessions.
    pub total_misses: u64,
    /// Total inbox-backpressure drops across sessions.
    pub total_overflow_drops: u64,
    /// Summed recovery-engine counters (FoReCo sessions).
    pub recovery: RecoveryStats,
    /// Distribution of per-session task-space RMSE (mm).
    pub rmse_mm: PercentileSummary,
    /// Distribution of per-session worst deviation (mm).
    pub max_deviation_mm: PercentileSummary,
}

/// Collects per-session reports as sessions complete, plus (optionally)
/// the final per-shard load picture of the run.
///
/// By default every report is retained — right for batch runs that
/// summarise at the end. A long-running service records forever, so
/// [`MetricsRegistry::with_retention`] bounds the registry to a rolling
/// window of the most recent reports: older ones are evicted as new
/// ones land ([`MetricsRegistry::recorded_total`] keeps the lifetime
/// count, and [`MetricsRegistry::summary`] reduces over the window).
#[derive(Debug, Default, Clone, Serialize)]
pub struct MetricsRegistry {
    reports: std::collections::VecDeque<SessionReport>,
    /// Rolling-window bound; `None` retains everything.
    retention: Option<usize>,
    /// Reports ever recorded, evicted ones included.
    recorded: u64,
    shard_loads: Vec<ShardLoadSummary>,
    ingress: Vec<IngressSummary>,
}

impl MetricsRegistry {
    /// An empty registry retaining every report.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry retaining only the `retention` most recent
    /// reports (a rolling window; `0` is clamped to `1`).
    pub fn with_retention(retention: usize) -> Self {
        Self {
            retention: Some(retention.max(1)),
            ..Self::default()
        }
    }

    /// Changes the retention bound in place. Shrinking evicts the
    /// oldest reports immediately; `None` removes the bound.
    pub fn set_retention(&mut self, retention: Option<usize>) {
        self.retention = retention.map(|r| r.max(1));
        self.evict();
    }

    /// The current retention bound (`None` = unbounded).
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// Records one completed session, evicting the oldest retained
    /// report when a retention bound is set and full.
    pub fn record(&mut self, report: SessionReport) {
        self.reports.push_back(report);
        self.recorded += 1;
        self.evict();
    }

    fn evict(&mut self) {
        if let Some(cap) = self.retention {
            while self.reports.len() > cap {
                self.reports.pop_front();
            }
        }
    }

    /// Reports currently retained.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Reports ever recorded, including any the rolling window evicted.
    pub fn recorded_total(&self) -> u64 {
        self.recorded
    }

    /// True when nothing completed yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The retained reports, oldest first.
    pub fn reports(&self) -> impl ExactSizeIterator<Item = &SessionReport> {
        self.reports.iter()
    }

    /// The report for one session, if it completed.
    pub fn get(&self, id: SessionId) -> Option<&SessionReport> {
        self.reports.iter().find(|r| r.id == id)
    }

    /// Records the per-shard load picture (typically
    /// `ServiceHandle::shard_loads` taken at the end of a run), so the
    /// balancer's inputs are observable next to the session reports.
    pub fn record_shard_loads(&mut self, loads: Vec<ShardLoadSummary>) {
        self.shard_loads = loads;
    }

    /// The recorded per-shard load summaries (empty unless
    /// [`MetricsRegistry::record_shard_loads`] was called).
    pub fn shard_loads(&self) -> &[ShardLoadSummary] {
        &self.shard_loads
    }

    /// Records per-session socket-ingress counters (typically the
    /// `foreco-net` gateway's, taken at the end of a run), so wire-level
    /// losses are observable next to the engine-level reports they
    /// caused. Accumulates like [`MetricsRegistry::record`]: batches
    /// from several gateways (or several sampling points) append.
    pub fn record_ingress(&mut self, ingress: Vec<IngressSummary>) {
        self.ingress.extend(ingress);
    }

    /// The recorded ingress summaries (empty unless
    /// [`MetricsRegistry::record_ingress`] was called).
    pub fn ingress(&self) -> &[IngressSummary] {
        &self.ingress
    }

    /// Reduces to the service-wide summary; `None` when no session has
    /// completed yet (there is nothing to summarise — previously this
    /// panicked, which turned an idle service's stats query into a
    /// crash).
    pub fn summary(&self) -> Option<ServiceSummary> {
        if self.reports.is_empty() {
            return None;
        }
        let mut recovery = RecoveryStats::default();
        for stats in self.reports.iter().filter_map(|r| r.stats.as_ref()) {
            recovery.ticks += stats.ticks;
            recovery.delivered += stats.delivered;
            recovery.forecasts += stats.forecasts;
            recovery.warmup_repeats += stats.warmup_repeats;
            recovery.horizon_holds += stats.horizon_holds;
            recovery.late_patches += stats.late_patches;
        }
        let rmse: Vec<f64> = self.reports.iter().map(|r| r.rmse_mm).collect();
        let worst: Vec<f64> = self.reports.iter().map(|r| r.max_deviation_mm).collect();
        Some(ServiceSummary {
            sessions: self.reports.len(),
            total_ticks: self.reports.iter().map(|r| r.ticks).sum(),
            total_misses: self.reports.iter().map(|r| r.misses as u64).sum(),
            total_overflow_drops: self.reports.iter().map(|r| r.overflow_drops).sum(),
            recovery,
            rmse_mm: PercentileSummary::of(&rmse).expect("reports is non-empty"),
            max_deviation_mm: PercentileSummary::of(&worst).expect("reports is non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u64, rmse: f64) -> SessionReport {
        SessionReport {
            id,
            ticks: 100,
            misses: 5,
            overflow_drops: 1,
            rmse_mm: rmse,
            max_deviation_mm: rmse * 2.0,
            stats: Some(RecoveryStats {
                ticks: 100,
                delivered: 95,
                forecasts: 5,
                ..Default::default()
            }),
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let p = PercentileSummary::of(&values).expect("non-empty");
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert!((p.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_singleton() {
        let p = PercentileSummary::of(&[3.5]).expect("non-empty");
        assert_eq!(p.p50, 3.5);
        assert_eq!(p.p99, 3.5);
        assert_eq!(p.max, 3.5);
    }

    #[test]
    fn empty_sets_summarise_to_none() {
        assert_eq!(PercentileSummary::of(&[]), None);
        assert!(MetricsRegistry::new().summary().is_none());
    }

    #[test]
    fn summary_sums_counters() {
        let mut reg = MetricsRegistry::new();
        for i in 0..10 {
            reg.record(report(i, i as f64));
        }
        let s = reg.summary().expect("ten reports recorded");
        assert_eq!(s.sessions, 10);
        assert_eq!(s.total_ticks, 1000);
        assert_eq!(s.total_misses, 50);
        assert_eq!(s.total_overflow_drops, 10);
        assert_eq!(s.recovery.delivered, 950);
        assert_eq!(s.recovery.forecasts, 50);
        assert_eq!(s.rmse_mm.max, 9.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for i in 0..20 {
            a.record(report(i, i as f64));
        }
        for i in (0..20).rev() {
            b.record(report(i, i as f64));
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn retention_keeps_a_rolling_window() {
        let mut reg = MetricsRegistry::with_retention(4);
        for i in 0..10 {
            reg.record(report(i, i as f64));
        }
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.recorded_total(), 10);
        let ids: Vec<u64> = reg.reports().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest reports must be evicted");
        assert!(reg.get(0).is_none());
        assert!(reg.get(9).is_some());
        // Shrinking the bound evicts immediately; lifting it stops
        // eviction without resurrecting anything.
        reg.set_retention(Some(2));
        assert_eq!(reg.len(), 2);
        reg.set_retention(None);
        reg.record(report(10, 1.0));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.recorded_total(), 11);
    }

    #[test]
    fn lookup_by_id() {
        let mut reg = MetricsRegistry::new();
        reg.record(report(42, 1.0));
        assert!(reg.get(42).is_some());
        assert!(reg.get(7).is_none());
    }
}
