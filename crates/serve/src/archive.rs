//! Deduplicated bulk checkpoints: one archive for thousands of
//! sessions.
//!
//! A fleet of scripted sessions replaying the same teleop trace used to
//! checkpoint as N self-contained snapshots, each materialising the
//! full script — O(sessions × trace) bytes. A [`FleetArchive`] stores
//! each distinct trace **once**, keyed by its content address, and the
//! per-session snapshots reference it through
//! [`SourceState::ScriptedRef`](crate::SourceState::ScriptedRef) — so
//! the archive is O(traces + sessions) and a thousand-session
//! checkpoint costs about as much as one. The `bytes_per_session`
//! scenario in `serve_throughput` measures the ratio into
//! `BENCH_serve.json`.
//!
//! # Streaming assembly (v2)
//!
//! Since format v2 the archive body is a contiguous run of
//! length-prefixed **binary v3 snapshot frames**
//! ([`SessionSnapshot::encode_into`]), not a decoded session list. That
//! makes the archive a *streaming* writer: `ServiceHandle::snapshot_fleet`
//! calls [`FleetArchive::push_part_bytes`] as each shard's reply
//! arrives — frames produced in shard-local scratch splice straight
//! into the archive with one `memcpy`, while the drain is still in
//! flight. [`FleetArchive::merge`] splices two archives the same way:
//! trace tables dedup by content address, part bytes concatenate, and
//! no session is re-decoded in between. Decoding is lazy —
//! [`FleetArchive::sessions`] parses frames only when a consumer
//! actually wants the snapshots back.
//!
//! Assembled by `ServiceHandle::snapshot_fleet`, revived by
//! `ServiceHandle::adopt_fleet` (which files the trace table into a
//! `foreco-store` [`Storage`](foreco_store::Storage) and sends each
//! session its claim). Whole archives also file into shared storage as
//! content-addressed blobs ([`FleetArchive::file_blob`]): two identical
//! fleet checkpoints dedup to one stored payload.
//!
//! The archive has its own format version, gated exactly like
//! [`SNAPSHOT_VERSION`](crate::SNAPSHOT_VERSION): an explicit `match`,
//! foreign versions rejected, and the v1 JSON form kept as a first-class
//! decode arm (legacy sessions are re-encoded into binary frames on the
//! way in, stamped with the current snapshot version).

use crate::snapshot::{
    put_rows, put_u32, put_u64, Reader, RestoreError, SessionSnapshot, SNAPSHOT_VERSION,
};
use foreco_store::{BlobHandle, ObjectId, Storage};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Current fleet-archive format version. v2 moved the session body from
/// a JSON list to length-prefixed binary snapshot frames; v1 JSON
/// archives still decode.
pub const FLEET_ARCHIVE_VERSION: u32 = 2;

/// Leading magic of every binary (v2+) archive. Deliberately not `{`:
/// the decoder dispatches legacy JSON documents on that byte.
pub const ARCHIVE_MAGIC: [u8; 4] = *b"FARC";

/// One session's contribution to a fleet archive, as produced by
/// [`Session::snapshot_for_fleet`](crate::Session::snapshot_for_fleet):
/// the snapshot plus, for scripted sources, the referenced trace —
/// content address and shared rows (a cheap `Arc` clone of the
/// session's script, not a copy).
pub type FleetSnapshotPart = (SessionSnapshot, Option<(ObjectId, Arc<Vec<Vec<f64>>>)>);

/// One distinct trace in an archive's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The trace's content address — what session snapshots reference.
    pub id: ObjectId,
    /// The command rows.
    pub commands: Vec<Vec<f64>>,
}

/// Mirror of the v1 JSON archive document — the legacy decode arm.
#[derive(Deserialize)]
struct ArchiveV1 {
    version: u32,
    traces: Vec<TraceEntry>,
    sessions: Vec<SessionSnapshot>,
}

/// A deduplicated bulk checkpoint (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetArchive {
    /// Each distinct scripted trace, exactly once, first-seen order.
    traces: Vec<TraceEntry>,
    /// Number of session frames in `parts`.
    count: usize,
    /// Length-prefixed binary v3 snapshot frames, back to back: for
    /// each session a `u64` LE frame length followed by the frame.
    parts: Vec<u8>,
}

impl FleetArchive {
    /// An empty archive ready for streaming assembly via
    /// [`FleetArchive::push_trace`] / [`FleetArchive::push_part_bytes`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of session frames in the archive.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the archive holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The deduplicated trace table, in first-seen order.
    pub fn traces(&self) -> &[TraceEntry] {
        &self.traces
    }

    /// The table entry for `id`, if present.
    pub fn trace(&self, id: ObjectId) -> Option<&TraceEntry> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// Adds a trace to the table unless its content address is already
    /// present. Returns whether the table grew.
    pub fn push_trace(&mut self, id: ObjectId, commands: &[Vec<f64>]) -> bool {
        if self.trace(id).is_some() {
            return false;
        }
        self.traces.push(TraceEntry {
            id,
            commands: commands.to_vec(),
        });
        true
    }

    /// Appends one session by encoding it into the archive body.
    pub fn push_part(&mut self, snapshot: &SessionSnapshot) {
        let at = self.parts.len();
        put_u64(&mut self.parts, 0); // length back-patched below
        snapshot.encode_into(&mut self.parts);
        let frame_len = (self.parts.len() - at - 8) as u64;
        self.parts[at..at + 8].copy_from_slice(&frame_len.to_le_bytes());
        self.count += 1;
    }

    /// Appends one session as a pre-encoded binary v3 frame — the
    /// streaming hand-off `snapshot_fleet` uses: shards encode into
    /// local scratch, the collector splices the bytes here without
    /// decoding them.
    pub fn push_part_bytes(&mut self, frame: &[u8]) {
        put_u64(&mut self.parts, frame.len() as u64);
        self.parts.extend_from_slice(frame);
        self.count += 1;
    }

    /// Iterates the raw session frames in insertion order, without
    /// decoding them.
    pub fn part_frames(&self) -> PartFrames<'_> {
        PartFrames { buf: &self.parts }
    }

    /// Decodes every session frame back into snapshots.
    ///
    /// # Errors
    /// A typed [`RestoreError`] if any frame is malformed (possible only
    /// for archives assembled from untrusted
    /// [`FleetArchive::push_part_bytes`] input — `from_bytes` validates
    /// frames at the structural level, not field by field).
    pub fn sessions(&self) -> Result<Vec<SessionSnapshot>, RestoreError> {
        self.part_frames()
            .map(SessionSnapshot::from_bytes)
            .collect()
    }

    /// Consumes the archive into its owned trace table and decoded
    /// sessions — the shape `adopt_fleet` wants: traces file into
    /// storage without a copy, sessions fan out to their shards.
    ///
    /// # Errors
    /// Same as [`FleetArchive::sessions`].
    pub fn dismantle(self) -> Result<(Vec<TraceEntry>, Vec<SessionSnapshot>), RestoreError> {
        let sessions = self.sessions()?;
        Ok((self.traces, sessions))
    }

    /// Assembles an archive from per-session parts as produced by
    /// [`Session::snapshot_for_fleet`](crate::Session::snapshot_for_fleet):
    /// each distinct trace id lands in the table once, in first-seen
    /// order (deterministic for a deterministic part order).
    pub fn build(parts: Vec<FleetSnapshotPart>) -> Self {
        let mut archive = Self::new();
        for (snapshot, trace) in parts {
            if let Some((id, commands)) = trace {
                archive.push_trace(id, &commands);
            }
            archive.push_part(&snapshot);
        }
        archive
    }

    /// Folds another archive into this one — trace tables dedup by
    /// content address, session frames splice without re-decoding.
    /// Incremental assembly for callers that checkpoint a fleet in
    /// waves (e.g. snapshotting each batch of sessions right after
    /// opening it, so none can complete before its checkpoint lands).
    pub fn merge(&mut self, other: FleetArchive) {
        for entry in other.traces {
            if self.trace(entry.id).is_none() {
                self.traces.push(entry);
            }
        }
        self.parts.extend_from_slice(&other.parts);
        self.count += other.count;
    }

    /// Appends the binary v2 archive frame to `buf` (not cleared —
    /// same appending contract as [`SessionSnapshot::encode_into`]).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&ARCHIVE_MAGIC);
        put_u32(buf, FLEET_ARCHIVE_VERSION);
        put_u64(buf, self.traces.len() as u64);
        for entry in &self.traces {
            let id = entry.id.as_u128();
            put_u64(buf, (id >> 64) as u64);
            put_u64(buf, id as u64);
            put_rows(buf, &entry.commands);
        }
        put_u64(buf, self.count as u64);
        put_u64(buf, self.parts.len() as u64);
        buf.extend_from_slice(&self.parts);
    }

    /// Serialises the archive to its portable byte form (the binary v2
    /// frame; same bit-exactness guarantees as
    /// [`SessionSnapshot::to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Parses an archive previously produced by
    /// [`FleetArchive::to_bytes`] — binary v2, or the legacy v1 JSON
    /// document (whose sessions are re-encoded into binary frames,
    /// stamped with the current snapshot version, on the way in).
    ///
    /// # Errors
    /// [`RestoreError::Decode`] on malformed bytes, typed frame errors
    /// on truncation/corruption, [`RestoreError::Version`] on a foreign
    /// archive version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        if bytes.first() == Some(&b'{') {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| RestoreError::Decode("archive is not UTF-8".into()))?;
            let doc: ArchiveV1 =
                serde_json::from_str(text).map_err(|e| RestoreError::Decode(e.to_string()))?;
            return match doc.version {
                1 => {
                    let mut archive = Self::new();
                    archive.traces = doc.traces;
                    for mut snapshot in doc.sessions {
                        snapshot.version = SNAPSHOT_VERSION;
                        archive.push_part(&snapshot);
                    }
                    Ok(archive)
                }
                FLEET_ARCHIVE_VERSION => Err(RestoreError::Decode(
                    "version 2 archives use the binary frame, not JSON".into(),
                )),
                found => Err(RestoreError::Version {
                    found,
                    expected: FLEET_ARCHIVE_VERSION,
                }),
            };
        }
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != ARCHIVE_MAGIC {
            return Err(RestoreError::BadMagic {
                found: magic.try_into().expect("4 bytes"),
            });
        }
        match r.u32()? {
            FLEET_ARCHIVE_VERSION => {}
            found => {
                return Err(RestoreError::Version {
                    found,
                    expected: FLEET_ARCHIVE_VERSION,
                })
            }
        }
        let n = r.len("archive trace table", 16)?;
        let mut traces = Vec::with_capacity(n);
        for _ in 0..n {
            let hi = r.u64()?;
            let lo = r.u64()?;
            traces.push(TraceEntry {
                id: ObjectId::from_u128(((hi as u128) << 64) | lo as u128),
                commands: r.rows()?,
            });
        }
        let count = r.usize("archive session count")?;
        let body_len = r.len("archive session body", 1)?;
        let parts = r.take(body_len)?.to_vec();
        if r.remaining() != 0 {
            return Err(RestoreError::TrailingBytes {
                expect: bytes.len() - r.remaining(),
                got: bytes.len(),
            });
        }
        // Structural pass over the body: `count` frames whose length
        // prefixes tile it exactly. Field-level validation is deferred
        // to `sessions()`.
        let mut walker = Reader::new(&parts);
        for _ in 0..count {
            let frame_len = walker.len("archive session frame", 1)?;
            walker.take(frame_len)?;
        }
        if walker.remaining() != 0 {
            return Err(RestoreError::TrailingBytes {
                expect: parts.len() - walker.remaining(),
                got: parts.len(),
            });
        }
        Ok(Self {
            traces,
            count,
            parts,
        })
    }

    /// Files the encoded archive into shared storage as a
    /// content-addressed blob: identical fleet checkpoints (same
    /// traces, same frames) dedup to a single stored payload, and the
    /// returned handle pins it for later [`FleetArchive::from_blob`].
    pub fn file_blob(&self, storage: &Storage) -> BlobHandle {
        storage.insert_blob(self.to_bytes())
    }

    /// Rehydrates an archive previously filed with
    /// [`FleetArchive::file_blob`].
    ///
    /// # Errors
    /// Same taxonomy as [`FleetArchive::from_bytes`].
    pub fn from_blob(handle: &BlobHandle) -> Result<Self, RestoreError> {
        Self::from_bytes(handle.bytes())
    }
}

/// Iterator over an archive's raw session frames (see
/// [`FleetArchive::part_frames`]).
pub struct PartFrames<'a> {
    buf: &'a [u8],
}

impl<'a> Iterator for PartFrames<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.buf.len() < 8 {
            return None;
        }
        let (len_bytes, rest) = self.buf.split_at(8);
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
        if rest.len() < len {
            // Unreachable for archives built through this API or
            // validated by `from_bytes`; stop rather than panic.
            self.buf = &[];
            return None;
        }
        let (frame, rest) = rest.split_at(len);
        self.buf = rest;
        Some(frame)
    }
}
