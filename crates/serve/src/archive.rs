//! Deduplicated bulk checkpoints: one archive for thousands of
//! sessions.
//!
//! A fleet of scripted sessions replaying the same teleop trace used to
//! checkpoint as N self-contained snapshots, each materialising the
//! full script — O(sessions × trace) bytes. A [`FleetArchive`] stores
//! each distinct trace **once**, keyed by its content address, and the
//! per-session snapshots reference it through
//! [`SourceState::ScriptedRef`](crate::SourceState::ScriptedRef) — so
//! the archive is O(traces + sessions) and a thousand-session
//! checkpoint costs about as much as one. The `bytes_per_session`
//! scenario in `serve_throughput` measures the ratio into
//! `BENCH_serve.json`.
//!
//! Assembled by `ServiceHandle::snapshot_fleet`, revived by
//! `ServiceHandle::adopt_fleet` (which files the trace table into a
//! `foreco-store` [`Storage`](foreco_store::Storage) and sends each
//! session its claim). The determinism contract is unchanged: a session
//! restored from an archive continues bit-identically to its donor.
//!
//! The archive has its own format version, gated exactly like
//! [`SNAPSHOT_VERSION`](crate::SNAPSHOT_VERSION): an explicit `match`,
//! foreign versions rejected.

use crate::snapshot::{RestoreError, SessionSnapshot};
use foreco_store::ObjectId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Current fleet-archive format version.
pub const FLEET_ARCHIVE_VERSION: u32 = 1;

/// One session's contribution to a fleet archive, as produced by
/// [`Session::snapshot_for_fleet`](crate::Session::snapshot_for_fleet):
/// the snapshot plus, for scripted sources, the referenced trace —
/// content address and shared rows (a cheap `Arc` clone of the
/// session's script, not a copy).
pub type FleetSnapshotPart = (SessionSnapshot, Option<(ObjectId, Arc<Vec<Vec<f64>>>)>);

/// One distinct trace in an archive's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The trace's content address — what session snapshots reference.
    pub id: ObjectId,
    /// The command rows.
    pub commands: Vec<Vec<f64>>,
}

/// A deduplicated bulk checkpoint (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetArchive {
    /// Archive format version ([`FLEET_ARCHIVE_VERSION`] at write time).
    pub version: u32,
    /// Each distinct scripted trace, exactly once.
    pub traces: Vec<TraceEntry>,
    /// Per-session snapshots; scripted sources reference `traces` by
    /// content address.
    pub sessions: Vec<SessionSnapshot>,
}

impl FleetArchive {
    /// Assembles an archive from per-session parts as produced by
    /// [`Session::snapshot_for_fleet`](crate::Session::snapshot_for_fleet):
    /// each distinct trace id lands in the table once, in first-seen
    /// order (deterministic for a deterministic part order).
    pub fn build(parts: Vec<FleetSnapshotPart>) -> Self {
        let mut traces: Vec<TraceEntry> = Vec::new();
        let mut sessions = Vec::with_capacity(parts.len());
        for (snapshot, trace) in parts {
            if let Some((id, commands)) = trace {
                if !traces.iter().any(|t| t.id == id) {
                    traces.push(TraceEntry {
                        id,
                        commands: (*commands).clone(),
                    });
                }
            }
            sessions.push(snapshot);
        }
        Self {
            version: FLEET_ARCHIVE_VERSION,
            traces,
            sessions,
        }
    }

    /// The table entry for `id`, if present.
    pub fn trace(&self, id: ObjectId) -> Option<&TraceEntry> {
        self.traces.iter().find(|t| t.id == id)
    }

    /// Folds another archive into this one — trace tables dedup by
    /// content address, sessions append. Incremental assembly for
    /// callers that checkpoint a fleet in waves (e.g. snapshotting each
    /// batch of sessions right after opening it, so none can complete
    /// before its checkpoint lands).
    pub fn merge(&mut self, other: FleetArchive) {
        for entry in other.traces {
            if self.trace(entry.id).is_none() {
                self.traces.push(entry);
            }
        }
        self.sessions.extend(other.sessions);
    }

    /// Serialises the archive to its portable byte form (JSON, UTF-8,
    /// same codec and bit-exactness guarantees as
    /// [`SessionSnapshot::to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("archive serialisation is infallible")
            .into_bytes()
    }

    /// Parses an archive previously produced by
    /// [`FleetArchive::to_bytes`].
    ///
    /// # Errors
    /// [`RestoreError::Decode`] on malformed bytes,
    /// [`RestoreError::Version`] on a foreign archive version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| RestoreError::Decode("archive is not UTF-8".into()))?;
        let archive: FleetArchive =
            serde_json::from_str(text).map_err(|e| RestoreError::Decode(e.to_string()))?;
        match archive.version {
            FLEET_ARCHIVE_VERSION => Ok(archive),
            found => Err(RestoreError::Version {
                found,
                expected: FLEET_ARCHIVE_VERSION,
            }),
        }
    }
}
