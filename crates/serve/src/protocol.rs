//! The command/event split between callers and shards.
//!
//! Callers talk to the service exclusively through [`SessionCommand`]s
//! sent via a `ServiceHandle` (`crate::ServiceHandle`), and observe it
//! exclusively through [`SessionEvent`]s drained from the service's
//! event receiver — the controller-handle pattern: no shared state, two
//! bounded `std::sync::mpsc` channels per shard, ownership of every
//! session confined to exactly one shard thread.

use crate::session::SessionReport;
use crate::snapshot::SessionSnapshot;
use crate::spec::{SessionId, SessionSpec};
use foreco_store::{ObjectId, TraceHandle};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

/// Instructions a caller sends into the service.
#[derive(Debug, Clone)]
pub enum SessionCommand {
    /// Materialise a new session on its home shard (boxed: a spec is an
    /// order of magnitude larger than the per-tick variants).
    Open(Box<SessionSpec>),
    /// Feed one operator command to a streamed session's inbox.
    Inject {
        /// Target session.
        id: SessionId,
        /// Joint-space command.
        command: Vec<f64>,
    },
    /// Declare one slot of a gated session lost (the ingress gateway's
    /// verdict for a wire gap, a reorder-horizon flush, or a bounced
    /// injection): the session's next consumed tick becomes the deadline
    /// miss the recovery engine covers. Ignored by non-gated sessions.
    InjectMiss {
        /// Target session.
        id: SessionId,
    },
    /// Deliver a §VII-C late command to a gated session: a payload whose
    /// slot was already flushed as missed resurfaced `age` ticks later.
    /// It consumes no tick — it patches the engine's forecast history so
    /// subsequent forecasts are seeded with truth. Ignored by non-gated
    /// sessions.
    InjectLate {
        /// Target session.
        id: SessionId,
        /// The late payload.
        command: Vec<f64>,
        /// Ticks between the command's slot and its arrival.
        age: usize,
    },
    /// Finish a streamed session: it drains its inbox, then reports.
    Close {
        /// Target session.
        id: SessionId,
    },
    /// Checkpoint a live session: the owning shard exports its complete
    /// state and emits [`SessionEvent::Snapshotted`]. The session keeps
    /// running, untouched.
    Snapshot {
        /// Target session.
        id: SessionId,
    },
    /// Move a live session to shard `to`: drain (finish the current
    /// tick), transfer (snapshot + hand the state to the target shard),
    /// resume (the target rehydrates and continues). Outputs are
    /// bit-identical to never having moved; the service's routing table
    /// follows the session so later commands find it.
    Migrate {
        /// Target session.
        id: SessionId,
        /// Destination shard index.
        to: usize,
    },
    /// Rehydrate a snapshotted session on the receiving shard — the
    /// transfer half of a migration, also sent directly by
    /// [`ServiceHandle::adopt`](crate::ServiceHandle::adopt) to revive a
    /// checkpoint from another process or an earlier run.
    Adopt {
        /// The state to rehydrate.
        snapshot: Box<SessionSnapshot>,
        /// Claim on the script a `ScriptedRef` snapshot references
        /// (`adopt_fleet` rides the claim along the channel, so the
        /// trace cannot be evicted between send and restore). `None`
        /// for self-contained snapshots.
        trace: Option<TraceHandle>,
    },
    /// Checkpoint a session for a bulk fleet archive: the shard replies
    /// on the dedicated channel instead of the event stream, with the
    /// scripted trace deduplicated out of the snapshot (see
    /// [`Session::snapshot_for_fleet`](crate::Session::snapshot_for_fleet)).
    /// `ServiceHandle::snapshot_fleet` fans this across all shards and
    /// assembles one archive.
    SnapshotInto {
        /// Target session.
        id: SessionId,
        /// Where to deliver the [`FleetPart`]. The caller sizes the
        /// channel to the request count, so shard sends never block.
        reply: SyncSender<FleetPart>,
    },
    /// Balancer directive: migrate up to `count` of this shard's
    /// *runnable* sessions to shard `to` (parked sessions cost nothing
    /// where they are, so only live work moves). The shard picks the
    /// sessions — highest runnable ids first, a deterministic choice —
    /// and drives each through the ordinary `Migrate` path, so every
    /// move is bit-invisible and the routing table stays authoritative.
    Rebalance {
        /// Destination shard index.
        to: usize,
        /// Upper bound on sessions to move.
        count: usize,
    },
    /// Stop the shard after finishing in-flight sessions' current tick.
    Shutdown,
}

/// One shard's reply to [`SessionCommand::SnapshotInto`].
#[derive(Debug, Clone)]
pub enum FleetPart {
    /// The session's archive-form snapshot, already encoded as a binary
    /// v3 frame in the shard's reusable scratch — the collector splices
    /// it into the [`FleetArchive`](crate::FleetArchive) without
    /// decoding (see
    /// [`FleetArchive::push_part_bytes`](crate::FleetArchive::push_part_bytes)).
    Snapshot {
        /// Session id (also carried inside the frame).
        id: SessionId,
        /// The encoded snapshot (scripted sources by reference).
        frame: Vec<u8>,
        /// The referenced trace payload — an `Arc` clone, shared with
        /// the live session, never a copy. `None` for live sources.
        trace: Option<(ObjectId, Arc<Vec<Vec<f64>>>)>,
    },
    /// No such session on the routed shard (unknown id, or it completed
    /// before the command arrived).
    Missing {
        /// The unmatched id.
        id: SessionId,
    },
    /// The session exists but cannot be exported (unsnapshotable
    /// forecaster). It keeps running.
    Failed {
        /// Session id.
        id: SessionId,
        /// Human-readable cause.
        reason: String,
    },
}

/// Observations the service emits.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The session was materialised on shard `shard`.
    Opened {
        /// Session id.
        id: SessionId,
        /// Owning shard index.
        shard: usize,
    },
    /// A command aimed at a full inbox was dropped — a loss event the
    /// session's recovery engine will cover by forecasting.
    CommandDropped {
        /// Session id.
        id: SessionId,
        /// The session's virtual tick at drop time.
        tick: u64,
    },
    /// A command addressed an unknown (or already completed) session.
    UnknownSession {
        /// The unmatched id.
        id: SessionId,
    },
    /// An `Open` reused a live session's id and was rejected (the
    /// running session is untouched).
    DuplicateSession {
        /// The contested id.
        id: SessionId,
    },
    /// A session was checkpointed in response to
    /// [`SessionCommand::Snapshot`].
    Snapshotted {
        /// Session id.
        id: SessionId,
        /// Shard that owns the session.
        shard: usize,
        /// The exported state (boxed: an order of magnitude larger than
        /// every other event).
        snapshot: Box<SessionSnapshot>,
    },
    /// A snapshot or migration was requested but the session's state
    /// cannot be exported (unsnapshotable forecaster). The session keeps
    /// running where it is.
    SnapshotFailed {
        /// Session id.
        id: SessionId,
        /// Human-readable cause.
        reason: String,
    },
    /// An adopted snapshot could not be rehydrated (version mismatch,
    /// corrupt state, wrong arm model). Nothing was created.
    RestoreFailed {
        /// Session id from the rejected snapshot.
        id: SessionId,
        /// Human-readable cause.
        reason: String,
    },
    /// A session left its shard as part of a migration; a matching
    /// [`SessionEvent::Restored`] follows from the destination.
    Migrated {
        /// Session id.
        id: SessionId,
        /// Shard the session left.
        from: usize,
        /// Shard the session is moving to.
        to: usize,
    },
    /// A session parked at a verified idle fixed point (left the run
    /// queue). Emitted **only while a lifecycle observer is attached**
    /// (see `telemetry::Telemetry::attach_observer`): parks are too
    /// frequent on gated fleets to narrate unconditionally. The park
    /// itself happens regardless — only the narration is gated — so
    /// session results are bit-identical with or without observers.
    Parked {
        /// Session id.
        id: SessionId,
        /// Shard the session parked on.
        shard: usize,
    },
    /// A session was rehydrated from a snapshot and resumed.
    Restored {
        /// Session id.
        id: SessionId,
        /// Shard now owning the session.
        shard: usize,
        /// Virtual tick the session resumed at.
        tick: u64,
    },
    /// The session ran to completion.
    Completed {
        /// Session id.
        id: SessionId,
        /// Final per-session accounting.
        report: SessionReport,
    },
    /// A shard exited its run loop (after `Shutdown` or handle drop).
    ShardTerminated {
        /// Shard index.
        shard: usize,
        /// Total session-ticks the shard advanced over its lifetime.
        ticks_advanced: u64,
    },
}

/// Why a handle operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The target shard's control channel is full (backpressure). The
    /// command was dropped; for `Inject` this is a loss event.
    Backpressure,
    /// The target shard has terminated.
    Disconnected,
    /// A migration named a shard index outside the pool.
    NoSuchShard {
        /// The requested destination.
        shard: usize,
        /// How many shards the pool has.
        shards: usize,
    },
    /// `adopt_fleet` was handed an archive whose session frames do not
    /// decode (possible only for archives spliced from untrusted bytes;
    /// nothing was adopted).
    CorruptArchive {
        /// The decoder's verdict.
        reason: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure => write!(f, "shard control channel full"),
            ServiceError::Disconnected => write!(f, "shard terminated"),
            ServiceError::NoSuchShard { shard, shards } => {
                write!(f, "no shard {shard} in a {shards}-shard pool")
            }
            ServiceError::CorruptArchive { reason } => {
                write!(f, "fleet archive does not decode: {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}
