//! The command/event split between callers and shards.
//!
//! Callers talk to the service exclusively through [`SessionCommand`]s
//! sent via a `ServiceHandle` (`crate::ServiceHandle`), and observe it
//! exclusively through [`SessionEvent`]s drained from the service's
//! event receiver — the controller-handle pattern: no shared state, two
//! bounded `std::sync::mpsc` channels per shard, ownership of every
//! session confined to exactly one shard thread.

use crate::session::SessionReport;
use crate::spec::{SessionId, SessionSpec};

/// Instructions a caller sends into the service.
#[derive(Debug, Clone)]
pub enum SessionCommand {
    /// Materialise a new session on its home shard (boxed: a spec is an
    /// order of magnitude larger than the per-tick variants).
    Open(Box<SessionSpec>),
    /// Feed one operator command to a streamed session's inbox.
    Inject {
        /// Target session.
        id: SessionId,
        /// Joint-space command.
        command: Vec<f64>,
    },
    /// Finish a streamed session: it drains its inbox, then reports.
    Close {
        /// Target session.
        id: SessionId,
    },
    /// Stop the shard after finishing in-flight sessions' current tick.
    Shutdown,
}

/// Observations the service emits.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The session was materialised on shard `shard`.
    Opened {
        /// Session id.
        id: SessionId,
        /// Owning shard index.
        shard: usize,
    },
    /// A command aimed at a full inbox was dropped — a loss event the
    /// session's recovery engine will cover by forecasting.
    CommandDropped {
        /// Session id.
        id: SessionId,
        /// The session's virtual tick at drop time.
        tick: u64,
    },
    /// A command addressed an unknown (or already completed) session.
    UnknownSession {
        /// The unmatched id.
        id: SessionId,
    },
    /// An `Open` reused a live session's id and was rejected (the
    /// running session is untouched).
    DuplicateSession {
        /// The contested id.
        id: SessionId,
    },
    /// The session ran to completion.
    Completed {
        /// Session id.
        id: SessionId,
        /// Final per-session accounting.
        report: SessionReport,
    },
    /// A shard exited its run loop (after `Shutdown` or handle drop).
    ShardTerminated {
        /// Shard index.
        shard: usize,
        /// Total session-ticks the shard advanced over its lifetime.
        ticks_advanced: u64,
    },
}

/// Why a handle operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The target shard's control channel is full (backpressure). The
    /// command was dropped; for `Inject` this is a loss event.
    Backpressure,
    /// The target shard has terminated.
    Disconnected,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure => write!(f, "shard control channel full"),
            ServiceError::Disconnected => write!(f, "shard terminated"),
        }
    }
}

impl std::error::Error for ServiceError {}
