//! The deterministic virtual 50 Hz clock every shard advances on.
//!
//! Sessions never read wall time: a session's notion of "now" is its
//! virtual tick index times `Ω`, exactly like the offline closed loop.
//! That is what makes a service run reproducible — the interleaving of
//! shard threads cannot leak into any session's trajectory — and
//! shard-count invariant, because each session's clock is its own.
//!
//! [`Pacing`] decides how virtual time relates to wall time: benchmarks
//! and tests run [`Pacing::Unpaced`] (as fast as the hardware allows),
//! while a demo fronting a real operator can hold the paper's real-time
//! 50 Hz with [`Pacing::RealTime`].

use std::time::{Duration, Instant};

/// The paper's control frequency.
pub const TICK_HZ: f64 = 50.0;

/// The command period `Ω` in seconds (20 ms).
pub const TICK_PERIOD: f64 = 1.0 / TICK_HZ;

/// A session- or shard-local virtual clock: a tick counter with a fixed
/// period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    tick: u64,
    period: f64,
}

impl VirtualClock {
    /// A clock at tick zero with period `Ω`.
    pub fn new(period: f64) -> Self {
        assert!(period > 0.0, "clock: period must be positive");
        Self { tick: 0, period }
    }

    /// The 50 Hz clock of the paper.
    pub fn at_50hz() -> Self {
        Self::new(TICK_PERIOD)
    }

    /// A clock resumed at `tick` (session snapshot restore).
    ///
    /// # Panics
    /// Panics if `period` is not positive.
    pub fn at_tick(period: f64, tick: u64) -> Self {
        let mut clock = Self::new(period);
        clock.tick = tick;
        clock
    }

    /// Current tick index.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Virtual seconds since the clock started.
    pub fn now(&self) -> f64 {
        self.tick as f64 * self.period
    }

    /// The period `Ω`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Advances one period and returns the new tick index.
    pub fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Advances `ticks` periods at once (integer-exact) and returns the
    /// new tick index. Used by the scheduler's parked-session catch-up:
    /// the tick counter is the only clock state, so batching is lossless.
    pub fn advance_by(&mut self, ticks: u64) -> u64 {
        self.tick += ticks;
        self.tick
    }
}

/// How a shard's virtual clock maps to wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Advance as fast as the hardware allows (benchmarks, tests,
    /// batch re-simulation).
    #[default]
    Unpaced,
    /// Hold each virtual tick to its wall-clock slot (live operation).
    RealTime,
}

/// Wall-clock governor used by shards running [`Pacing::RealTime`].
#[derive(Debug)]
pub struct Pacer {
    pacing: Pacing,
    epoch: Instant,
    ticks: u64,
    period: Duration,
}

impl Pacer {
    /// A pacer for the given mode and period (seconds).
    pub fn new(pacing: Pacing, period: f64) -> Self {
        Self {
            pacing,
            epoch: Instant::now(),
            ticks: 0,
            period: Duration::from_secs_f64(period),
        }
    }

    /// Re-anchors the pacer at the current instant. Call when resuming
    /// from an idle stretch: without this, a real-time pacer whose
    /// epoch is long past would skip sleeping for thousands of passes
    /// to "catch up" to wall time — an unpaced burst of spurious
    /// deadline misses for any live session.
    pub fn resync(&mut self) {
        self.epoch = Instant::now();
        self.ticks = 0;
    }

    /// Records one completed tick and, in real-time mode, sleeps until
    /// the next tick's wall-clock slot.
    pub fn tick_complete(&mut self) {
        self.ticks += 1;
        if self.pacing == Pacing::RealTime {
            // f64 multiply, not `Duration * u32`: the tick counter
            // outgrows u32 in ~994 days at 50 Hz and truncation would
            // silently disable pacing from then on.
            let due = self.epoch + self.period.mul_f64(self.ticks as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            } else if now - due > self.period {
                // More than one period behind (stall, suspend,
                // overloaded host): drop the backlog rather than
                // free-running to catch up.
                self.resync();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_by_period() {
        let mut c = VirtualClock::at_50hz();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.now(), 0.0);
        c.advance();
        c.advance();
        assert_eq!(c.tick(), 2);
        assert!((c.now() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn unpaced_pacer_does_not_sleep() {
        let mut p = Pacer::new(Pacing::Unpaced, TICK_PERIOD);
        let start = Instant::now();
        for _ in 0..1000 {
            p.tick_complete();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn realtime_pacer_holds_the_period() {
        let mut p = Pacer::new(Pacing::RealTime, 0.002);
        let start = Instant::now();
        for _ in 0..10 {
            p.tick_complete();
        }
        // Coarse lower bound only — upper bounds are flaky under load.
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "pacer did not pace"
        );
    }

    #[test]
    fn resumed_clock_continues_from_its_tick() {
        let c = VirtualClock::at_tick(TICK_PERIOD, 350);
        assert_eq!(c.tick(), 350);
        assert!((c.now() - 7.0).abs() < 1e-12, "350 ticks at 50 Hz = 7 s");
        let mut c = c;
        c.advance();
        assert_eq!(c.tick(), 351);
    }

    #[test]
    fn resync_re_anchors_the_epoch() {
        // The re-anchor-after-idle path: after resync() the pacer's
        // schedule restarts from "now", so the next ticks are paced at
        // the full period instead of replaying the idle backlog.
        let mut p = Pacer::new(Pacing::RealTime, 0.002);
        std::thread::sleep(Duration::from_millis(30));
        p.resync();
        let start = Instant::now();
        for _ in 0..5 {
            p.tick_complete();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(9),
            "resynced pacer must pace from its new epoch ({elapsed:?})"
        );
    }

    #[test]
    fn resync_is_harmless_for_unpaced_clocks() {
        let mut p = Pacer::new(Pacing::Unpaced, TICK_PERIOD);
        std::thread::sleep(Duration::from_millis(5));
        p.resync();
        let start = Instant::now();
        for _ in 0..1000 {
            p.tick_complete();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn stale_pacer_drops_backlog_instead_of_bursting() {
        // Simulate an idle stretch: the epoch falls far behind wall
        // time. Without backlog dropping, the next ~25 ticks would all
        // skip their sleeps (a catch-up burst).
        let mut p = Pacer::new(Pacing::RealTime, 0.002);
        std::thread::sleep(Duration::from_millis(50));
        p.tick_complete(); // detects the stall and resyncs
        let start = Instant::now();
        for _ in 0..5 {
            p.tick_complete();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(7),
            "post-stall ticks must be paced, not a catch-up burst"
        );
    }
}
