//! One hosted recovery loop: operator source → impairment → recovery →
//! PID robot, advanced one virtual tick at a time.
//!
//! [`Session::advance`] replicates the offline
//! `foreco_core::run_closed_loop` body *operation for operation* —
//! including the order of floating-point accumulation in the error
//! metrics — so a session hosted on any shard of the service produces
//! **bit-identical** per-session results to a solo closed-loop run. The
//! shard-invariance integration test pins that contract.
//!
//! Differences from the offline loop are purely structural:
//!
//! - the reference (perfect-channel) driver advances in lockstep with
//!   the executed driver instead of in a separate pass — both drivers
//!   are deterministic and independent, so their trajectories are
//!   unchanged;
//! - task-space error accumulates incrementally (same summation order
//!   as `trajectory_rmse_mm`) instead of over stored trajectories, and
//!   both drivers run with trail recording off — a session is O(1) in
//!   memory regardless of how long it runs, which is what lets one
//!   process hold thousands of arms;
//! - commands may come from a live bounded inbox instead of a recorded
//!   script, in which case an empty inbox at tick time *is* the miss.

use crate::archive::FleetSnapshotPart;
use crate::clock::VirtualClock;
use crate::inbox::{BoundedInbox, GatedInbox, GatedSlot, Offer};
use crate::snapshot::{
    compress_fates, expand_fates, RestoreError, SessionSnapshot, SnapshotError, SourceState,
    SNAPSHOT_VERSION,
};
use crate::spec::SharedForecaster;
use crate::spec::{ChannelSpec, SessionId, SessionSpec, SourceSpec};
use foreco_core::channel::{Arrival, Channel};
use foreco_core::{EngineSnapshot, EngineStateError, RecoveryEngine, RecoveryStats};
use foreco_forecast::HistoryView;
use foreco_robot::{ArmModel, DriverState, RobotDriver};
use foreco_store::{trace_object_id, Storage, TraceHandle};
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// How many fates a streamed session draws from its channel per batch.
/// Chunked draws keep burst structure intact within a batch while
/// avoiding unbounded pre-draw for endless streams.
const FATE_CHUNK: usize = 256;

/// Final accounting for one completed session. Deserialisable so the
/// `foreco-net` control plane can ship it back to remote operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Session id.
    pub id: SessionId,
    /// Virtual ticks executed.
    pub ticks: u64,
    /// Commands that missed their deadline (lost, late, or never sent).
    pub misses: usize,
    /// Commands dropped by inbox backpressure (streamed sessions).
    pub overflow_drops: u64,
    /// Task-space RMSE (mm) between executed and defined trajectories.
    pub rmse_mm: f64,
    /// Worst instantaneous deviation (mm).
    pub max_deviation_mm: f64,
    /// Recovery-engine counters (FoReCo sessions only).
    pub stats: Option<RecoveryStats>,
}

/// Scheduling verdict a session reports to its shard: when must this
/// session be polled again?
///
/// The verdict is *load-bearing* for the event-driven scheduler — a
/// session may only report [`Wake::ParkedUntil`] / [`Wake::AwaitingInput`]
/// from a **verified idle fixed point**, where one more idle tick would
/// change nothing but clocks and counters (engine in horizon-hold with a
/// saturated window, both drivers' PIDs settled to exact f64 no-ops, see
/// [`foreco_core::RecoveryEngine::idle_hold_is_identity`] and
/// [`foreco_robot::RobotDriver::hold_is_identity`]). That is what makes
/// [`Session::catch_up`] able to replay the skipped ticks' bookkeeping
/// exactly, keeping parked sessions bit-identical to eagerly ticked ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Poll again on the next scheduling pass (live traffic, draining,
    /// mid-transient, or still inside the forecast horizon).
    Runnable,
    /// Idle-stable, but a pending late command (§VII-C) falls due at
    /// this virtual tick: skip ticks until then, then poll.
    ParkedUntil(u64),
    /// Idle-stable with nothing scheduled: only new traffic
    /// ([`Session::offer`]) or a close can make the next tick differ, so
    /// don't poll until one arrives.
    AwaitingInput,
}

/// What one call to [`Session::advance`] did.
#[derive(Debug)]
pub enum Advance {
    /// The session consumed one virtual tick and continues; the payload
    /// tells the scheduler when to poll it next.
    Ticked(Wake),
    /// Nothing happened — **no tick was consumed** and no state changed.
    /// Only gated sessions report this: their clock is driven by ingress
    /// slots, and none was queued. The payload tells the scheduler when
    /// to poll again; unlike a parked idle-stable session, a gated wait
    /// accrues no backlog ([`Session::catch_up`] replays zero ticks).
    Idle(Wake),
    /// The session finished; it must be removed from its shard.
    Completed(Box<SessionReport>),
}

enum Source {
    Scripted {
        commands: Arc<Vec<Vec<f64>>>,
        fates: Vec<Arrival>,
        /// Store claim pinning a `SourceSpec::Stored` trace for the
        /// session's lifetime (acquired at build/restore, never on the
        /// tick path). `None` for recorded/replayed scripts.
        claim: Option<TraceHandle>,
    },
    Streamed {
        inbox: BoundedInbox,
        channel: Box<dyn Channel + Send>,
        /// Construction parameters of `channel`, kept so a snapshot can
        /// rebuild the same impairment model elsewhere.
        channel_spec: Box<ChannelSpec>,
        fate_buf: std::collections::VecDeque<Arrival>,
        closing: bool,
    },
    /// Flow-controlled socket ingress: one queued [`GatedSlot`] per
    /// virtual tick (late patches ride between ticks), an empty queue
    /// suspends virtual time instead of counting a miss.
    Gated {
        inbox: GatedInbox,
        channel: Box<dyn Channel + Send>,
        channel_spec: Box<ChannelSpec>,
        fate_buf: std::collections::VecDeque<Arrival>,
        closing: bool,
    },
}

/// A hosted recovery loop (see module docs).
pub struct Session {
    id: SessionId,
    source: Source,
    engine: Option<RecoveryEngine>,
    /// The trained forecaster this session shares with its siblings —
    /// the wrapper whose store `ObjectId` (content address) keys
    /// batched forecasting lanes, falling back to `Arc` pointer
    /// identity for unregistered models. `None` for baseline sessions
    /// and for engines restored without shared storage (deep-built
    /// weights batch with nobody, so they stay on the scalar path).
    shared_model: Option<SharedForecaster>,
    reference: RobotDriver,
    executed: RobotDriver,
    /// Late commands waiting to (maybe) patch FoReCo's history:
    /// (arrival time, tick index, payload) — §VII-C.
    pending_late: Vec<(f64, usize, Vec<f64>)>,
    /// Reusable buffer the engine's zero-allocation tick writes the
    /// injected command into (sized `dof`, lives for the session).
    injected: Vec<f64>,
    clock: VirtualClock,
    omega: f64,
    misses: usize,
    /// Running sum of squared task-space deviation (mm²), accumulated in
    /// `trajectory_rmse_mm` order.
    acc_sq_mm: f64,
    worst_mm: f64,
}

impl Session {
    /// Materialises a session from its spec on the given arm model.
    ///
    /// # Panics
    /// Panics if a recorded/replayed source has no commands, or if the
    /// engine dimensionality mismatches the arm.
    pub fn open(spec: &SessionSpec, model: &ArmModel) -> Self {
        let omega = spec.driver.period;
        let (source, start) = match &spec.source {
            SourceSpec::Recorded {
                skill,
                cycles,
                seed,
            } => {
                let commands = Arc::new(Dataset::record(*skill, *cycles, omega, *seed).commands);
                Self::scripted_source(commands, None, spec, model)
            }
            SourceSpec::Replayed(commands) => {
                Self::scripted_source(Arc::clone(commands), None, spec, model)
            }
            SourceSpec::Stored(handle) => Self::scripted_source(
                Arc::clone(handle.commands()),
                Some(handle.clone()),
                spec,
                model,
            ),
            SourceSpec::Streamed {
                initial,
                inbox_capacity,
            } => {
                let start = model.clamp(initial);
                (
                    Source::Streamed {
                        inbox: BoundedInbox::new(*inbox_capacity),
                        channel: spec.channel.build(),
                        channel_spec: Box::new(spec.channel.clone()),
                        fate_buf: std::collections::VecDeque::new(),
                        closing: false,
                    },
                    start,
                )
            }
            SourceSpec::Gated {
                initial,
                inbox_capacity,
            } => {
                let start = model.clamp(initial);
                (
                    Source::Gated {
                        inbox: GatedInbox::new(*inbox_capacity),
                        channel: spec.channel.build(),
                        channel_spec: Box::new(spec.channel.clone()),
                        fate_buf: std::collections::VecDeque::new(),
                        closing: false,
                    },
                    start,
                )
            }
        };
        let mut reference = RobotDriver::new(model.clone(), spec.driver, &start);
        let mut executed = RobotDriver::new(model.clone(), spec.driver, &start);
        reference.set_recording(false);
        executed.set_recording(false);
        Self {
            id: spec.id,
            source,
            injected: vec![0.0; model.dof()],
            engine: spec.recovery.build(start),
            shared_model: spec.recovery.shared_model(),
            reference,
            executed,
            pending_late: Vec::new(),
            clock: VirtualClock::new(omega),
            omega,
            misses: 0,
            acc_sq_mm: 0.0,
            worst_mm: 0.0,
        }
    }

    fn scripted_source(
        commands: Arc<Vec<Vec<f64>>>,
        claim: Option<TraceHandle>,
        spec: &SessionSpec,
        model: &ArmModel,
    ) -> (Source, Vec<f64>) {
        assert!(!commands.is_empty(), "session: no commands");
        let fates = spec.channel.build().fates(commands.len());
        let start = model.clamp(&commands[0]);
        (
            Source::Scripted {
                commands,
                fates,
                claim,
            },
            start,
        )
    }

    /// Session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Current virtual tick.
    pub fn tick(&self) -> u64 {
        self.clock.tick()
    }

    /// Offers a live command to a streamed or gated session's inbox.
    /// Returns the backpressure outcome; scripted sessions always report
    /// `Dropped`.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        match &mut self.source {
            Source::Streamed { inbox, .. } => inbox.offer(command),
            Source::Gated { inbox, .. } => inbox.offer(command),
            Source::Scripted { .. } => Offer::Dropped,
        }
    }

    /// Enqueues an explicit loss slot on a gated session — the wire said
    /// "this tick's command is gone", and the next consumed tick becomes
    /// the miss the engine forecasts over. `Dropped` for every other
    /// source (their losses are modelled elsewhere).
    pub fn offer_miss(&mut self) -> Offer {
        match &mut self.source {
            Source::Gated { inbox, .. } => {
                inbox.offer_miss();
                Offer::Accepted
            }
            _ => Offer::Dropped,
        }
    }

    /// Enqueues a §VII-C late patch on a gated session: a command whose
    /// slot was already flushed as missed resurfaced `age` ticks later.
    /// The patch consumes no tick; it amends the engine history just
    /// before the next slot is consumed. `Dropped` for other sources.
    pub fn offer_late(&mut self, command: Vec<f64>, age: usize) -> Offer {
        match &mut self.source {
            Source::Gated { inbox, .. } => inbox.offer_late(command, age),
            _ => Offer::Dropped,
        }
    }

    /// Marks a streamed/gated session closing: it drains its inbox and
    /// then completes. No-op for scripted sessions (they end with the
    /// script).
    pub fn close(&mut self) {
        match &mut self.source {
            Source::Streamed { closing, .. } | Source::Gated { closing, .. } => *closing = true,
            Source::Scripted { .. } => {}
        }
    }

    /// Advances one virtual tick.
    ///
    /// This is the service's hot path: in steady state (scripted replay
    /// or a live command already queued) it performs **zero heap
    /// allocations** — scripted commands are borrowed straight from the
    /// shared script, the engine ticks through
    /// [`RecoveryEngine::tick_into`] into the session-owned `injected`
    /// buffer, and both drivers update in place. The remaining
    /// allocator traffic is bounded and off the steady path: inbox
    /// hand-offs (owned at offer time), a fate-chunk refill every
    /// [`FATE_CHUNK`] streamed deliveries, and §VII-C pending-late
    /// bookkeeping.
    pub fn advance(&mut self) -> Advance {
        self.advance_batched(None)
    }

    /// The batched-sweep gather peek: `Some((model, history))` exactly
    /// when this session's *next* [`Session::advance`] is certain to be
    /// a tick-consuming deadline miss that the engine will cover with a
    /// fresh forecast over the returned history window — i.e. when a
    /// pre-computed lane row handed to [`Session::advance_batched`]
    /// will be consumed verbatim.
    ///
    /// Conservative by construction: any ambiguity (no shared model, no
    /// engine, a §VII-C late patch pending, engine in warmup or
    /// horizon-hold, a delivery due, a gated source whose misses are
    /// explicit wire verdicts) returns `None` and the session takes the
    /// scalar path, which is always bit-identical. The peek is only
    /// valid until the session is next mutated, so shards gather and
    /// advance within one pass, after timer wakes.
    pub(crate) fn batch_window(&self) -> Option<(&SharedForecaster, HistoryView<'_>)> {
        let model = self.shared_model.as_ref()?;
        let engine = self.engine.as_ref()?;
        // A pending late patch may splice the history between the gather
        // and the tick (`pending_late_drain` runs first in the miss arm).
        if !self.pending_late.is_empty() || !engine.miss_would_forecast() {
            return None;
        }
        let miss_next = match &self.source {
            Source::Scripted {
                commands, fates, ..
            } => {
                // Late deliveries are misses *now* (the payload is
                // queued for a future patch after the forecast), so both
                // Lost and Late qualify.
                let i = self.clock.tick() as usize;
                i < commands.len() && !fates[i].on_time()
            }
            Source::Streamed { inbox, closing, .. } => inbox.is_empty() && !*closing,
            // Gated misses are explicit wire verdicts; peeking would
            // race the gateway, so gated sessions never batch.
            Source::Gated { .. } => false,
        };
        if !miss_next {
            return None;
        }
        Some((model, engine.history_view()))
    }

    /// [`Session::advance`] with an optionally pre-computed forecast
    /// row from the shard's batched lane sweep. `prepared` must be the
    /// row a [`Session::batch_window`] peek on the current state was
    /// promised — the raw (pre-damping) forecast over that window —
    /// and the tick then routes through
    /// [`RecoveryEngine::tick_miss_prepared`], bit-identical to the
    /// scalar miss path.
    pub(crate) fn advance_batched(&mut self, prepared: Option<&[f64]>) -> Advance {
        // What does this tick deliver? `None` = deadline miss. Scripted
        // sessions borrow the command; live sources hand over the owned
        // buffer their offer already allocated.
        let (delivered, fate): (Option<Cow<'_, [f64]>>, Arrival) = match &mut self.source {
            Source::Scripted {
                commands, fates, ..
            } => {
                let i = self.clock.tick() as usize;
                if i >= commands.len() {
                    return Advance::Completed(Box::new(self.report()));
                }
                (Some(Cow::Borrowed(commands[i].as_slice())), fates[i])
            }
            Source::Streamed {
                inbox,
                channel,
                fate_buf,
                closing,
                ..
            } => {
                match inbox.take() {
                    Some(cmd) => {
                        if fate_buf.is_empty() {
                            fate_buf.extend(channel.fates(FATE_CHUNK));
                        }
                        let fate = fate_buf.pop_front().expect("chunk refilled above");
                        (Some(Cow::Owned(cmd)), fate)
                    }
                    // An empty inbox at tick time is itself the miss: the
                    // operator (or the backpressure drop) left this slot
                    // unfilled.
                    None => {
                        if *closing {
                            return Advance::Completed(Box::new(self.report()));
                        }
                        (None, Arrival::Lost)
                    }
                }
            }
            Source::Gated {
                inbox,
                channel,
                fate_buf,
                closing,
                ..
            } => loop {
                match inbox.take() {
                    // Late patches ride between ticks: amend the engine
                    // history and keep looking for a tick-consuming slot.
                    Some(GatedSlot::Late { command, age }) => {
                        if let Some(engine) = &mut self.engine {
                            engine.late_command(&command, age);
                        }
                    }
                    Some(GatedSlot::Command(cmd)) => {
                        if fate_buf.is_empty() {
                            fate_buf.extend(channel.fates(FATE_CHUNK));
                        }
                        let fate = fate_buf.pop_front().expect("chunk refilled above");
                        break (Some(Cow::Owned(cmd)), fate);
                    }
                    // The wire's explicit loss verdict for this slot
                    // (take() always yields single-slot units).
                    Some(GatedSlot::Miss { .. }) => break (None, Arrival::Lost),
                    // No verdict yet is *not* a miss: virtual time
                    // suspends until the gateway enqueues one (or the
                    // session closes).
                    None => {
                        if *closing {
                            return Advance::Completed(Box::new(self.report()));
                        }
                        return Advance::Idle(Wake::AwaitingInput);
                    }
                }
            },
        };

        let i = self.clock.tick() as usize;
        let now = (i as f64 + 1.0) * self.omega; // driver consumption instant

        // Reference driver: the defined trajectory (perfect channel).
        // Streamed misses have no command to define with — hold, like
        // the executed side's baseline.
        let ref_pos = {
            let sample = self.reference.tick(delivered.as_deref());
            sample.position_mm
        };

        // Executed driver: impairment + recovery, mirroring
        // `run_closed_loop` exactly.
        let exec_pos = match &mut self.engine {
            None => {
                // Baseline: repeat-last on every miss.
                let sample = match (delivered.as_deref(), fate.on_time()) {
                    (Some(cmd), true) => self.executed.tick(Some(cmd)),
                    _ => {
                        self.misses += 1;
                        self.executed.tick(None)
                    }
                };
                sample.position_mm
            }
            Some(engine) => {
                // Deliver late commands that have arrived by now (§VII-C).
                pending_late_drain(&mut self.pending_late, engine, now, i);
                match (delivered, fate.on_time()) {
                    (Some(cmd), true) => {
                        engine.tick_into(Some(&cmd), &mut self.injected);
                    }
                    (delivered, _) => {
                        self.misses += 1;
                        if let (Some(cmd), Arrival::Late(delay)) = (delivered, fate) {
                            self.pending_late.push((
                                i as f64 * self.omega + delay,
                                i,
                                cmd.into_owned(),
                            ));
                        }
                        match prepared {
                            Some(raw) => {
                                engine.tick_miss_prepared(raw, &mut self.injected);
                            }
                            None => {
                                engine.tick_into(None, &mut self.injected);
                            }
                        }
                    }
                }
                self.executed.tick(Some(&self.injected)).position_mm
            }
        };

        // Task-space error, accumulated in `trajectory_rmse_mm` /
        // `max_deviation_mm` operation order so the final report is
        // bit-identical to the offline metrics.
        self.acc_sq_mm += (exec_pos[0] - ref_pos[0]).powi(2)
            + (exec_pos[1] - ref_pos[1]).powi(2)
            + (exec_pos[2] - ref_pos[2]).powi(2);
        let d = ((exec_pos[0] - ref_pos[0]).powi(2)
            + (exec_pos[1] - ref_pos[1]).powi(2)
            + (exec_pos[2] - ref_pos[2]).powi(2))
        .sqrt();
        self.worst_mm = self.worst_mm.max(d);

        self.clock.advance();
        Advance::Ticked(self.wake_hint())
    }

    /// The scheduling verdict for this session's *next* tick, computable
    /// at any tick boundary (freshly opened, just advanced, or just
    /// restored from a snapshot). See [`Wake`] for the contract.
    pub fn wake_hint(&self) -> Wake {
        // Gated sessions are wire-driven: runnable exactly while slots
        // (or a close) are pending, awaiting input otherwise. They never
        // report `ParkedUntil` — their virtual time suspends while they
        // wait, so no wall-pass timer can ever fall due.
        if let Source::Gated { inbox, closing, .. } = &self.source {
            return if *closing || !inbox.is_empty() {
                Wake::Runnable
            } else {
                Wake::AwaitingInput
            };
        }
        if !self.idle_stable() {
            return Wake::Runnable;
        }
        let from = self.clock.tick();
        match self
            .pending_late
            .iter()
            .map(|(arrives, _, _)| first_fire_tick(*arrives, self.omega, from))
            .min()
        {
            Some(due) if due > from => Wake::ParkedUntil(due),
            Some(_) => Wake::Runnable, // a late command fires on the next tick
            None => Wake::AwaitingInput,
        }
    }

    /// True when the next tick, fed nothing, would change no state bit
    /// outside clocks and counters: streamed source with an empty inbox
    /// and not draining, engine (if any) at its hold identity, both
    /// drivers at their hold fixed points. Scripted sessions always have
    /// a next command, so they are never idle.
    fn idle_stable(&self) -> bool {
        match &self.source {
            // Gated sessions never reach this notion of idleness: their
            // parked state is "clock suspended", not "idle ticks elided".
            Source::Scripted { .. } | Source::Gated { .. } => return false,
            Source::Streamed { inbox, closing, .. } => {
                if !inbox.is_empty() || *closing {
                    return false;
                }
            }
        }
        match &self.engine {
            Some(engine) => {
                engine.idle_hold_is_identity()
                    && self.executed.hold_is_identity(Some(engine.held_command()))
                    && self.reference.hold_is_identity(None)
            }
            None => self.executed.hold_is_identity(None) && self.reference.hold_is_identity(None),
        }
    }

    /// Replays `ticks` idle ticks' bookkeeping at a verified idle fixed
    /// point, bit-identically to eager [`Session::advance`] calls: each
    /// skipped tick is a deadline miss covered by the engine's hold (or
    /// the baseline's repeat-last), the constant task-space deviation
    /// accumulates term by term in the eager summation order, and both
    /// drivers' clocks replay their per-tick `t += Ω` additions.
    ///
    /// The scheduler calls this when waking a parked session: the state
    /// after `catch_up(k)` equals the state after `k` eager idle
    /// advances, so parking is observationally invisible. Returns the
    /// ticks actually replayed — `ticks` for idle-stable sessions, `0`
    /// for gated ones, whose virtual clock was *suspended* while parked
    /// (no ticks happened, so there is nothing to replay).
    ///
    /// # Panics
    /// Panics (debug) when the session is neither gated nor idle-stable
    /// — catching up anywhere else would corrupt the determinism
    /// contract.
    pub fn catch_up(&mut self, ticks: u64) -> u64 {
        if matches!(self.source, Source::Gated { .. }) {
            return 0;
        }
        if ticks == 0 {
            return 0;
        }
        debug_assert!(self.idle_stable(), "catch_up outside the idle fixed point");
        // Positions are frozen at the fixed point, so the per-tick
        // deviation is one constant — computed by the same expression
        // `advance` evaluates, on the same (unchanged) joints.
        let exec_pos = self
            .executed
            .model()
            .chain
            .forward_mm(self.executed.joints());
        let ref_pos = self
            .reference
            .model()
            .chain
            .forward_mm(self.reference.joints());
        let d2 = (exec_pos[0] - ref_pos[0]).powi(2)
            + (exec_pos[1] - ref_pos[1]).powi(2)
            + (exec_pos[2] - ref_pos[2]).powi(2);
        let d = d2.sqrt();
        for _ in 0..ticks {
            // Term-by-term: f64 addition is not associative, and the
            // report must match the eager accumulation bit for bit.
            self.acc_sq_mm += d2;
        }
        // The park decision required at least one eager tick at this
        // state, so `worst_mm` has already absorbed `d`; max is a no-op
        // applied once for the whole span.
        self.worst_mm = self.worst_mm.max(d);
        self.misses += ticks as usize;
        if let Some(engine) = &mut self.engine {
            engine.apply_idle_holds(ticks);
        }
        self.reference.advance_time(ticks);
        self.executed.advance_time(ticks);
        self.clock.advance_by(ticks);
        ticks
    }

    fn report(&self) -> SessionReport {
        let n = self.clock.tick();
        let overflow_drops = match &self.source {
            Source::Streamed { inbox, .. } => inbox.dropped(),
            Source::Gated { inbox, .. } => inbox.dropped(),
            Source::Scripted { .. } => 0,
        };
        SessionReport {
            id: self.id,
            ticks: n,
            misses: self.misses,
            overflow_drops,
            rmse_mm: if n == 0 {
                0.0
            } else {
                (self.acc_sq_mm / n as f64).sqrt()
            },
            max_deviation_mm: self.worst_mm,
            stats: self.engine.as_ref().map(RecoveryEngine::stats),
        }
    }

    /// The arm model this session drives.
    pub fn model(&self) -> &ArmModel {
        self.executed.model()
    }

    /// Checkpoints the complete session to a [`SessionSnapshot`]: engine
    /// history, forecaster, PID/driver state, channel RNG, tick, and
    /// every accumulator. The session keeps running; restoring the
    /// snapshot anywhere continues it with bit-identical outputs (see
    /// the [`crate::snapshot`] module docs for the contract).
    ///
    /// # Errors
    /// [`SnapshotError::UnsupportedForecaster`] when the engine wraps a
    /// forecaster with no serialisable form (e.g. seq2seq).
    pub fn snapshot(&self) -> Result<SessionSnapshot, SnapshotError> {
        let engine = self.engine_snapshot()?;
        let source = match &self.source {
            Source::Scripted {
                commands, fates, ..
            } => SourceState::Scripted {
                commands: (**commands).clone(),
                fates: fates.clone(),
            },
            Source::Streamed {
                inbox,
                channel,
                channel_spec,
                fate_buf,
                closing,
            } => SourceState::Streamed {
                inbox: inbox.snapshot(),
                channel: channel_spec.clone(),
                channel_rng: channel.rng_state(),
                fate_buf: fate_buf.iter().copied().collect(),
                closing: *closing,
            },
            Source::Gated {
                inbox,
                channel,
                channel_spec,
                fate_buf,
                closing,
            } => SourceState::Gated {
                inbox: inbox.snapshot(),
                channel: channel_spec.clone(),
                channel_rng: channel.rng_state(),
                fate_buf: fate_buf.iter().copied().collect(),
                closing: *closing,
            },
        };
        Ok(self.snapshot_shell(source, engine))
    }

    /// Checkpoints for a bulk fleet archive: a scripted source is
    /// captured as [`SourceState::ScriptedRef`] — the trace's content
    /// address plus run-length-encoded fates — and the trace payload is
    /// returned alongside as a cheap `Arc` clone, so assembling an
    /// archive of N sessions over one trace costs O(traces), not
    /// O(sessions × trace), in both time and bytes. Non-scripted
    /// sessions fall back to their self-contained snapshot (`None`
    /// payload).
    ///
    /// # Errors
    /// Same as [`Session::snapshot`].
    pub fn snapshot_for_fleet(&self) -> Result<FleetSnapshotPart, SnapshotError> {
        match &self.source {
            Source::Scripted {
                commands,
                fates,
                claim,
            } => {
                let engine = self.engine_snapshot()?;
                let id = claim
                    .as_ref()
                    .map(TraceHandle::id)
                    .unwrap_or_else(|| trace_object_id(commands));
                let source = SourceState::ScriptedRef {
                    trace: id,
                    fates: compress_fates(fates),
                };
                Ok((
                    self.snapshot_shell(source, engine),
                    Some((id, Arc::clone(commands))),
                ))
            }
            _ => Ok((self.snapshot()?, None)),
        }
    }

    /// The engine layer of a snapshot.
    fn engine_snapshot(&self) -> Result<Option<EngineSnapshot>, SnapshotError> {
        match &self.engine {
            None => Ok(None),
            Some(engine) => match engine.snapshot() {
                Ok(snap) => Ok(Some(snap)),
                Err(EngineStateError::UnsupportedForecaster { name }) => {
                    Err(SnapshotError::UnsupportedForecaster { name })
                }
                Err(EngineStateError::Invalid { reason }) => {
                    unreachable!("live engine exported invalid state: {reason}")
                }
            },
        }
    }

    /// Everything in a snapshot that does not depend on how the source
    /// is encoded.
    fn snapshot_shell(
        &self,
        source: SourceState,
        engine: Option<EngineSnapshot>,
    ) -> SessionSnapshot {
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            id: self.id,
            tick: self.clock.tick(),
            period: self.omega,
            driver: *self.executed.config(),
            misses: self.misses,
            acc_sq_mm: self.acc_sq_mm,
            worst_mm: self.worst_mm,
            source,
            engine,
            pending_late: self.pending_late.clone(),
            reference: self.reference.export_state(),
            executed: self.executed.export_state(),
        }
    }

    /// Rehydrates a session from a snapshot onto `model`, continuing
    /// exactly where the snapshotted session left off.
    ///
    /// A [`SourceState::ScriptedRef`] snapshot (an archive entry) is
    /// rejected here — the script is not in the snapshot; claim it from
    /// storage and use [`Session::restore_stored`].
    ///
    /// # Errors
    /// [`RestoreError::Version`] on a foreign format version and
    /// [`RestoreError::Invalid`] when the snapshot violates session
    /// invariants (dimension mismatches against `model`, inconsistent
    /// script/fate lengths, out-of-range restore points, …).
    pub fn restore(snap: &SessionSnapshot, model: &ArmModel) -> Result<Self, RestoreError> {
        Self::restore_with(snap, model, None, None)
    }

    /// [`Session::restore`] with engine model weights resolved through
    /// shared storage: the snapshot's forecaster is content-addressed
    /// into `models`, so N same-model sessions restored on one store
    /// hold N claims on *one* resident copy instead of N deep clones —
    /// and land in the same batched forecasting lane. Forecasters the
    /// store cannot address (none of the snapshotable families today)
    /// fall back to the deep-built scalar path.
    ///
    /// # Errors
    /// As [`Session::restore`].
    pub fn restore_shared(
        snap: &SessionSnapshot,
        model: &ArmModel,
        models: &Storage,
    ) -> Result<Self, RestoreError> {
        Self::restore_with(snap, model, None, Some(models))
    }

    /// Rehydrates a [`SourceState::ScriptedRef`] snapshot, resolving the
    /// trace reference through `trace` — a claim on the referenced
    /// script, typically from [`foreco_store::Storage::get_trace`]. The
    /// restored session holds the claim for its lifetime.
    ///
    /// # Errors
    /// As [`Session::restore`], plus [`RestoreError::Invalid`] when
    /// `trace` is not the trace the snapshot references.
    pub fn restore_stored(
        snap: &SessionSnapshot,
        model: &ArmModel,
        trace: TraceHandle,
    ) -> Result<Self, RestoreError> {
        Self::restore_with(snap, model, Some(trace), None)
    }

    /// Shared body of the restore entries. `models` is the optional
    /// shared-storage route for engine weights (see
    /// [`Session::restore_shared`]).
    pub(crate) fn restore_with(
        snap: &SessionSnapshot,
        model: &ArmModel,
        trace: Option<TraceHandle>,
        models: Option<&Storage>,
    ) -> Result<Self, RestoreError> {
        match snap.version {
            // v1 layouts are a subset of v2 (no `ScriptedRef`), and v3
            // changed only the byte encoding, so one restore path
            // serves every legal version.
            1 | 2 | SNAPSHOT_VERSION => {}
            found => {
                return Err(RestoreError::Version {
                    found,
                    expected: SNAPSHOT_VERSION,
                })
            }
        }
        if !snap.period.is_finite() || snap.period <= 0.0 {
            return Err(RestoreError::Invalid("period must be positive".into()));
        }
        validate_driver_state(&snap.reference, model, "reference")?;
        validate_driver_state(&snap.executed, model, "executed")?;
        if let Some(bad) = snap
            .pending_late
            .iter()
            .find(|(_, _, payload)| payload.len() != model.dof())
        {
            return Err(RestoreError::Invalid(format!(
                "pending late command of dimension {} for a {}-DoF arm",
                bad.2.len(),
                model.dof()
            )));
        }
        let source = match &snap.source {
            SourceState::Scripted { commands, fates } => validated_scripted(
                Arc::new(commands.clone()),
                fates.clone(),
                None,
                snap.tick,
                model,
            )?,
            SourceState::ScriptedRef {
                trace: trace_id,
                fates,
            } => {
                let handle = trace.ok_or_else(|| {
                    RestoreError::Invalid(format!(
                        "scripted-ref snapshot needs trace {trace_id} claimed from storage \
                         (restore_stored / adopt_fleet)"
                    ))
                })?;
                if handle.id() != *trace_id {
                    return Err(RestoreError::Invalid(format!(
                        "trace {} is not the script this snapshot references ({trace_id})",
                        handle.id()
                    )));
                }
                let commands = Arc::clone(handle.commands());
                validated_scripted(
                    commands,
                    expand_fates(fates),
                    Some(handle),
                    snap.tick,
                    model,
                )?
            }
            SourceState::Streamed {
                inbox,
                channel,
                channel_rng,
                fate_buf,
                closing,
            } => {
                if inbox.capacity == 0 {
                    return Err(RestoreError::Invalid("inbox capacity of zero".into()));
                }
                if inbox.queue.len() > inbox.capacity {
                    return Err(RestoreError::Invalid(format!(
                        "{} queued commands in a capacity-{} inbox",
                        inbox.queue.len(),
                        inbox.capacity
                    )));
                }
                if let Some(bad) = inbox.queue.iter().find(|c| c.len() != model.dof()) {
                    return Err(RestoreError::Invalid(format!(
                        "queued command of dimension {} for a {}-DoF arm",
                        bad.len(),
                        model.dof()
                    )));
                }
                let mut rebuilt = channel.build();
                if let Some(state) = channel_rng {
                    rebuilt.restore_rng(*state);
                }
                Source::Streamed {
                    inbox: BoundedInbox::from_state(inbox),
                    channel: rebuilt,
                    channel_spec: channel.clone(),
                    fate_buf: fate_buf.iter().copied().collect(),
                    closing: *closing,
                }
            }
            SourceState::Gated {
                inbox,
                channel,
                channel_rng,
                fate_buf,
                closing,
            } => {
                if inbox.capacity == 0 {
                    return Err(RestoreError::Invalid("inbox capacity of zero".into()));
                }
                let commands = inbox
                    .queue
                    .iter()
                    .filter(|s| matches!(s, GatedSlot::Command(_)))
                    .count();
                if commands > inbox.capacity {
                    return Err(RestoreError::Invalid(format!(
                        "{commands} queued commands in a capacity-{} gated inbox",
                        inbox.capacity
                    )));
                }
                if let Some(bad) = inbox.queue.iter().find_map(|s| match s {
                    GatedSlot::Command(c) | GatedSlot::Late { command: c, .. }
                        if c.len() != model.dof() =>
                    {
                        Some(c.len())
                    }
                    _ => None,
                }) {
                    return Err(RestoreError::Invalid(format!(
                        "queued slot of dimension {bad} for a {}-DoF arm",
                        model.dof()
                    )));
                }
                if inbox
                    .queue
                    .iter()
                    .any(|s| matches!(s, GatedSlot::Miss { count: 0 }))
                {
                    // A zero-count run would consume a tick on take()
                    // while counting as zero slots everywhere else —
                    // a one-tick desync smuggled in through a crafted
                    // snapshot.
                    return Err(RestoreError::Invalid(
                        "gated miss run with a zero count".into(),
                    ));
                }
                let mut rebuilt = channel.build();
                if let Some(state) = channel_rng {
                    rebuilt.restore_rng(*state);
                }
                Source::Gated {
                    inbox: GatedInbox::from_state(inbox),
                    channel: rebuilt,
                    channel_spec: channel.clone(),
                    fate_buf: fate_buf.iter().copied().collect(),
                    closing: *closing,
                }
            }
        };
        let (engine, shared_model) = match &snap.engine {
            None => (None, None),
            Some(engine_snap) => {
                if engine_snap.history.first().map(Vec::len) != Some(model.dof()) {
                    return Err(RestoreError::Invalid(
                        "engine dimensionality mismatches the arm".into(),
                    ));
                }
                match models.and_then(|store| {
                    // Content-address the snapshotted weights: same
                    // model ⇒ same resident copy, claimed not cloned.
                    // One transient build pays for the address; the
                    // resident Arc is what the engine keeps.
                    store
                        .insert_model(Arc::from(engine_snap.forecaster.build()))
                        .ok()
                }) {
                    Some(claim) => {
                        let shared = SharedForecaster::from_handle(claim);
                        let engine = RecoveryEngine::from_snapshot_with(
                            engine_snap.clone(),
                            Box::new(shared.clone()),
                        )?;
                        // The session keeps the wrapper (claim included)
                        // so its lane keys by the model's content
                        // address, not a reallocatable pointer.
                        (Some(engine), Some(shared))
                    }
                    None => (
                        Some(RecoveryEngine::from_snapshot(engine_snap.clone())?),
                        None,
                    ),
                }
            }
        };
        Ok(Self {
            id: snap.id,
            source,
            engine,
            shared_model,
            injected: vec![0.0; model.dof()],
            reference: RobotDriver::from_state(model.clone(), snap.driver, &snap.reference),
            executed: RobotDriver::from_state(model.clone(), snap.driver, &snap.executed),
            pending_late: snap.pending_late.clone(),
            clock: VirtualClock::at_tick(snap.period, snap.tick),
            omega: snap.period,
            misses: snap.misses,
            acc_sq_mm: snap.acc_sq_mm,
            worst_mm: snap.worst_mm,
        })
    }
}

/// Validates and builds a scripted source at restore time — shared by
/// the inline `Scripted` and by-reference `ScriptedRef` decode paths,
/// so both enforce identical invariants.
fn validated_scripted(
    commands: Arc<Vec<Vec<f64>>>,
    fates: Vec<Arrival>,
    claim: Option<TraceHandle>,
    tick: u64,
    model: &ArmModel,
) -> Result<Source, RestoreError> {
    if commands.is_empty() {
        return Err(RestoreError::Invalid(
            "scripted source without commands".into(),
        ));
    }
    if let Some(bad) = commands.iter().find(|c| c.len() != model.dof()) {
        return Err(RestoreError::Invalid(format!(
            "scripted command of dimension {} for a {}-DoF arm",
            bad.len(),
            model.dof()
        )));
    }
    if fates.len() != commands.len() {
        return Err(RestoreError::Invalid(format!(
            "{} fates for {} commands",
            fates.len(),
            commands.len()
        )));
    }
    if tick as usize > commands.len() {
        return Err(RestoreError::Invalid(format!(
            "tick {tick} beyond the {}-command script",
            commands.len()
        )));
    }
    Ok(Source::Scripted {
        commands,
        fates,
        claim,
    })
}

/// Pre-checks a driver state against the target arm so restore returns
/// an error instead of tripping `RobotDriver::from_state`'s panics.
fn validate_driver_state(
    state: &DriverState,
    model: &ArmModel,
    which: &str,
) -> Result<(), RestoreError> {
    let dof = model.dof();
    if state.joints.len() != dof || state.last_command.len() != dof || state.pids.len() != dof {
        return Err(RestoreError::Invalid(format!(
            "{which} driver shape ({} joints, {} command dims, {} PIDs) mismatches the {dof}-DoF arm",
            state.joints.len(),
            state.last_command.len(),
            state.pids.len()
        )));
    }
    if !model.within_limits(&state.joints) {
        return Err(RestoreError::Invalid(format!(
            "{which} driver pose violates joint limits"
        )));
    }
    Ok(())
}

/// The first tick index `i ≥ from` whose drain instant `(i+1)·Ω`
/// reaches `arrives` — i.e. when [`pending_late_drain`] would deliver a
/// late command. Computed against the *exact* f64 predicate the drain
/// uses (an analytic `ceil` seeds the search, then the predicate is
/// verified both ways), so a parked span can never skip a due patch.
fn first_fire_tick(arrives: f64, omega: f64, from: u64) -> u64 {
    let estimate = (arrives / omega - 1.0).ceil();
    let mut i = if estimate.is_finite() && estimate > from as f64 {
        estimate as u64
    } else {
        from
    };
    // Guard against rounding in either direction of the estimate.
    while (i as f64 + 1.0) * omega < arrives {
        i += 1;
    }
    while i > from && (i as f64) * omega >= arrives {
        i -= 1;
    }
    i
}

/// Mirrors the `pending_late.retain` block of `run_closed_loop`.
fn pending_late_drain(
    pending: &mut Vec<(f64, usize, Vec<f64>)>,
    engine: &mut RecoveryEngine,
    now: f64,
    i: usize,
) {
    pending.retain(|(arrives, idx, payload)| {
        if *arrives <= now {
            let age = i.saturating_sub(*idx);
            engine.late_command(payload, age);
            false
        } else {
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, RecoverySpec, SessionSpec, SharedForecaster, SourceSpec};
    use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
    use foreco_forecast::{MovingAverage, Var};
    use foreco_robot::niryo_one;
    use foreco_teleop::{Dataset, Skill};

    fn trained_var() -> Var {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
        Var::fit_differenced(&train, 5, 1e-6).unwrap()
    }

    #[test]
    fn scripted_session_matches_solo_closed_loop() {
        let model = niryo_one();
        let var = trained_var();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 321);
        let channel = ChannelSpec::ControlledLoss {
            burst_len: 8,
            burst_prob: 0.01,
            seed: 5,
        };
        let spec = SessionSpec::new(
            9,
            SourceSpec::replay(&test),
            channel.clone(),
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var.clone()),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut session = Session::open(&spec, &model);
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };

        let fates = channel.build().fates(test.commands.len());
        let engine = RecoveryEngine::new(
            Box::new(var),
            RecoveryConfig::for_model(&model),
            model.clamp(&test.commands[0]),
        );
        let solo = run_closed_loop(
            &model,
            &test.commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            spec.driver,
        );
        assert_eq!(report.ticks as usize, test.commands.len());
        assert_eq!(report.misses, solo.misses);
        assert_eq!(report.stats, solo.stats);
        assert_eq!(
            report.rmse_mm.to_bits(),
            solo.rmse_mm.to_bits(),
            "rmse must be bit-identical"
        );
        assert_eq!(
            report.max_deviation_mm.to_bits(),
            solo.max_deviation_mm.to_bits(),
            "max deviation must be bit-identical"
        );
    }

    #[test]
    fn baseline_session_matches_solo_closed_loop() {
        let model = niryo_one();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 654);
        let channel = ChannelSpec::ControlledLoss {
            burst_len: 10,
            burst_prob: 0.02,
            seed: 3,
        };
        let spec = SessionSpec::new(
            1,
            SourceSpec::replay(&test),
            channel.clone(),
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };
        let fates = channel.build().fates(test.commands.len());
        let solo = run_closed_loop(
            &model,
            &test.commands,
            &fates,
            RecoveryMode::Baseline,
            spec.driver,
        );
        assert_eq!(report.misses, solo.misses);
        assert_eq!(report.rmse_mm.to_bits(), solo.rmse_mm.to_bits());
        assert!(report.stats.is_none());
    }

    #[test]
    fn streamed_session_covers_missing_ticks() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            2,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::Ideal,
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(MovingAverage::new(2, home.len())),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut session = Session::open(&spec, &model);
        // Feed two commands, then starve it for three ticks.
        session.offer(home.clone());
        session.offer(home.clone());
        for _ in 0..5 {
            assert!(matches!(session.advance(), Advance::Ticked(_)));
        }
        session.close();
        let report = match session.advance() {
            Advance::Completed(report) => report,
            other => panic!("closing session with empty inbox must complete, got {other:?}"),
        };
        assert_eq!(report.ticks, 5);
        assert_eq!(report.misses, 3);
        let stats = report.stats.unwrap();
        assert_eq!(stats.delivered, 2);
        assert_eq!(
            stats.forecasts + stats.warmup_repeats + stats.horizon_holds,
            3,
            "every starved tick covered by the engine"
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Run one session straight through; run a twin that is frozen to
        // bytes mid-run and rehydrated. Final reports must match bit for
        // bit — the session-level form of the determinism contract.
        let model = niryo_one();
        let var = trained_var();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 77);
        let spec = SessionSpec::new(
            4,
            SourceSpec::replay(&test),
            ChannelSpec::ControlledLoss {
                burst_len: 6,
                burst_prob: 0.015,
                seed: 21,
            },
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut straight = Session::open(&spec, &model);
        let mut resumed = Session::open(&spec, &model);
        for _ in 0..test.commands.len() / 3 {
            assert!(matches!(resumed.advance(), Advance::Ticked(_)));
        }
        let bytes = resumed.snapshot().expect("VAR is snapshotable").to_bytes();
        let snap = crate::snapshot::SessionSnapshot::from_bytes(&bytes).expect("decode");
        let mut resumed = Session::restore(&snap, &model).expect("restore");
        assert_eq!(resumed.tick() as usize, test.commands.len() / 3);

        let finish = |s: &mut Session| loop {
            if let Advance::Completed(report) = s.advance() {
                break report;
            }
        };
        let a = finish(&mut straight);
        let b = finish(&mut resumed);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rmse_mm.to_bits(), b.rmse_mm.to_bits());
        assert_eq!(a.max_deviation_mm.to_bits(), b.max_deviation_mm.to_bits());
    }

    #[test]
    fn streamed_snapshot_carries_inbox_and_channel_state() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            5,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::ControlledLoss {
                burst_len: 3,
                burst_prob: 0.3,
                seed: 9,
            },
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(MovingAverage::new(2, home.len())),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut original = Session::open(&spec, &model);
        original.offer(home.clone());
        original.offer(home.clone());
        original.offer(home.clone());
        for _ in 0..2 {
            original.advance();
        }
        // One command still queued, channel RNG mid-stream.
        let snap = original.snapshot().unwrap();
        match &snap.source {
            crate::snapshot::SourceState::Streamed {
                inbox, channel_rng, ..
            } => {
                assert_eq!(inbox.queue.len(), 1);
                assert_eq!(inbox.accepted, 3);
                assert!(channel_rng.is_some(), "loss channel must export RNG");
            }
            other => panic!("expected streamed source state, got {other:?}"),
        }
        // Through bytes, so the raw RNG words exercise the lossless
        // big-integer path of the serde shim.
        let snap = crate::snapshot::SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        let mut restored = Session::restore(&snap, &model).expect("restore");
        // Drive both twins identically: starve, then close.
        for _ in 0..3 {
            original.advance();
            restored.advance();
        }
        original.close();
        restored.close();
        let finish = |s: &mut Session| loop {
            if let Advance::Completed(report) = s.advance() {
                break report;
            }
        };
        let a = finish(&mut original);
        let b = finish(&mut restored);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.overflow_drops, b.overflow_drops);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rmse_mm.to_bits(), b.rmse_mm.to_bits());
    }

    #[test]
    fn restore_rejects_foreign_versions_and_wrong_arms() {
        let model = niryo_one();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 13);
        let spec = SessionSpec::new(
            6,
            SourceSpec::replay(&test),
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let session = Session::open(&spec, &model);
        let mut snap = session.snapshot().unwrap();

        let restore_err =
            |snap: &crate::snapshot::SessionSnapshot, model: &ArmModel| match Session::restore(
                snap, model,
            ) {
                Err(e) => e,
                Ok(_) => panic!("restore must fail"),
            };
        let mut future = snap.clone();
        future.version = crate::snapshot::SNAPSHOT_VERSION + 1;
        let err = restore_err(&future, &model);
        assert!(matches!(err, RestoreError::Version { .. }), "{err}");
        // from_bytes applies the same gate.
        assert!(matches!(
            crate::snapshot::SessionSnapshot::from_bytes(&future.to_bytes()),
            Err(RestoreError::Version { .. })
        ));

        // A corrupt payload anywhere in the source must be rejected up
        // front, not panic the owning shard on the first tick.
        let mut bad_script = snap.clone();
        if let crate::snapshot::SourceState::Scripted { commands, .. } = &mut bad_script.source {
            commands[0].pop();
        }
        let err = restore_err(&bad_script, &model);
        assert!(matches!(err, RestoreError::Invalid(_)), "{err}");

        let mut bad_late = snap.clone();
        bad_late.pending_late.push((0.1, 2, vec![0.0; 3]));
        let err = restore_err(&bad_late, &model);
        assert!(matches!(err, RestoreError::Invalid(_)), "{err}");

        snap.executed.joints.pop();
        let err = restore_err(&snap, &model);
        assert!(matches!(err, RestoreError::Invalid(_)), "{err}");
        // Errors are boxable for assertion ergonomics downstream.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("mismatches"));
    }

    /// Drives a streamed session with `advance` until it reports a
    /// non-runnable wake, returning how many ticks that took.
    fn run_until_parked(session: &mut Session, budget: usize) -> usize {
        for i in 0..budget {
            match session.advance() {
                Advance::Ticked(Wake::Runnable) => {}
                Advance::Ticked(_) | Advance::Idle(_) => return i + 1,
                Advance::Completed(_) => panic!("session completed while starving"),
            }
        }
        panic!("session never parked within {budget} ticks");
    }

    #[test]
    fn park_catch_up_is_bit_identical_to_eager_idle_ticks() {
        // The core scheduler contract: starve a streamed session to its
        // idle fixed point, then let one twin tick eagerly through a long
        // idle span while the other skips it with catch_up. Both then see
        // the same resumed traffic; the final reports must match bit for
        // bit — including the f64 accumulators and driver clocks.
        let model = niryo_one();
        let home = model.home();
        for foreco in [true, false] {
            let recovery = if foreco {
                RecoverySpec::FoReCo {
                    forecaster: SharedForecaster::new(trained_var()),
                    config: RecoveryConfig::for_model(&model),
                }
            } else {
                RecoverySpec::Baseline
            };
            let spec = SessionSpec::new(
                7,
                SourceSpec::Streamed {
                    initial: home.clone(),
                    inbox_capacity: 8,
                },
                ChannelSpec::ControlledLoss {
                    burst_len: 4,
                    burst_prob: 0.05,
                    seed: 11,
                },
                recovery,
            );
            let mut eager = Session::open(&spec, &model);
            let mut parked = Session::open(&spec, &model);
            // Some live traffic first so the drivers build real state.
            let drive = |s: &mut Session| {
                for k in 0..24u64 {
                    let mut cmd = home.clone();
                    cmd[0] += 0.01 * (k % 5) as f64;
                    s.offer(cmd);
                    s.advance();
                }
            };
            drive(&mut eager);
            drive(&mut parked);
            // Starve both to the fixed point (identical tick counts).
            let a = run_until_parked(&mut eager, 200_000);
            let b = run_until_parked(&mut parked, 200_000);
            assert_eq!(a, b, "twins must park at the same tick");
            assert_eq!(parked.wake_hint(), Wake::AwaitingInput);

            // Idle span: one twin ticks, the other catches up.
            const SPAN: u64 = 5_003;
            for _ in 0..SPAN {
                assert!(matches!(eager.advance(), Advance::Ticked(_)));
            }
            parked.catch_up(SPAN);
            assert_eq!(parked.tick(), eager.tick());

            // Wake both with the same traffic, then drain and compare.
            for s in [&mut eager, &mut parked] {
                let mut cmd = home.clone();
                cmd[1] -= 0.02;
                s.offer(cmd.clone());
                s.offer(cmd);
                for _ in 0..40 {
                    s.advance();
                }
                s.close();
            }
            let finish = |s: &mut Session| loop {
                if let Advance::Completed(report) = s.advance() {
                    break report;
                }
            };
            let (ra, rb) = (finish(&mut eager), finish(&mut parked));
            assert_eq!(ra.ticks, rb.ticks, "foreco={foreco}");
            assert_eq!(ra.misses, rb.misses, "foreco={foreco}");
            assert_eq!(ra.stats, rb.stats, "foreco={foreco}");
            assert_eq!(
                ra.rmse_mm.to_bits(),
                rb.rmse_mm.to_bits(),
                "foreco={foreco}: rmse {} vs {}",
                ra.rmse_mm,
                rb.rmse_mm
            );
            assert_eq!(
                ra.max_deviation_mm.to_bits(),
                rb.max_deviation_mm.to_bits(),
                "foreco={foreco}"
            );
        }
    }

    #[test]
    fn wake_hint_tracks_traffic_and_close() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            8,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        // Fresh session: the first tick still writes PID derivative
        // memory, so it must not claim to be parkable.
        assert_eq!(session.wake_hint(), Wake::Runnable);
        let parked_at = run_until_parked(&mut session, 10_000);
        assert!(parked_at >= 1);
        assert_eq!(session.wake_hint(), Wake::AwaitingInput);
        // Traffic is a wake source…
        session.offer(home.clone());
        assert_eq!(session.wake_hint(), Wake::Runnable);
        assert!(matches!(session.advance(), Advance::Ticked(_)));
        // …consumed, the session settles straight back to parked (the
        // command equals the held pose, so the fixed point survives).
        assert_eq!(session.wake_hint(), Wake::AwaitingInput);
        // Closing is a wake source too: the session must drain + report.
        session.close();
        assert_eq!(session.wake_hint(), Wake::Runnable);
        assert!(matches!(session.advance(), Advance::Completed(_)));
    }

    #[test]
    fn parked_until_wakes_exactly_at_the_late_patch_tick() {
        // A §VII-C late command whose arrival instant lies beyond the
        // park point is the one scheduled event that can change a parked
        // session's state: the wake hint must name its exact due tick,
        // and skipping to that tick must be bit-identical to ticking
        // through. Built synthetically through the snapshot (the only
        // way to plant a far-future pending arrival deterministically).
        let model = niryo_one();
        let home = model.home();
        let mut config = RecoveryConfig::for_model(&model);
        config.use_late_commands = true;
        let spec = SessionSpec::new(
            10,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::Ideal,
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(MovingAverage::new(2, home.len())),
                config,
            },
        );
        let mut donor = Session::open(&spec, &model);
        donor.offer(home.clone());
        donor.offer(home.clone());
        donor.advance();
        donor.advance();
        run_until_parked(&mut donor, 10_000);
        let t0 = donor.tick();
        let mut snap = donor.snapshot().expect("MA is snapshotable");
        // A command lost at tick 1 resurfaces mid-way through tick
        // index t0+40 — long after the session parked.
        let arrives = (t0 + 40) as f64 * 0.02 + 0.013;
        snap.pending_late.push((arrives, 1, home.clone()));

        let mut eager = Session::restore(&snap, &model).expect("restore");
        let mut parked = Session::restore(&snap, &model).expect("restore");
        let due = match parked.wake_hint() {
            Wake::ParkedUntil(due) => due,
            other => panic!("expected a timed park, got {other:?}"),
        };
        assert_eq!(due, t0 + 40, "wake must land on the drain tick");

        // Eager twin ticks through the idle span; parked twin jumps to
        // the due tick, then both process it (the drain fires) and
        // drain out together.
        for _ in 0..due - t0 {
            assert!(matches!(eager.advance(), Advance::Ticked(_)));
        }
        parked.catch_up(due - t0);
        assert_eq!(parked.tick(), due);
        assert!(matches!(eager.advance(), Advance::Ticked(_)));
        assert!(matches!(parked.advance(), Advance::Ticked(_)));
        // The pending entry is consumed: nothing scheduled remains.
        assert_eq!(eager.wake_hint(), Wake::AwaitingInput);
        assert_eq!(parked.wake_hint(), Wake::AwaitingInput);
        for s in [&mut eager, &mut parked] {
            s.close();
        }
        let finish = |s: &mut Session| loop {
            if let Advance::Completed(report) = s.advance() {
                break report;
            }
        };
        let (a, b) = (finish(&mut eager), finish(&mut parked));
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rmse_mm.to_bits(), b.rmse_mm.to_bits());
    }

    #[test]
    fn first_fire_tick_matches_the_drain_predicate_exactly() {
        // The park-until computation must agree with pending_late_drain's
        // `arrives <= (i+1)·Ω` test at the boundary, or a parked span
        // could skip a due late command.
        let omega = 0.02;
        for k in 1..400u64 {
            let arrives = k as f64 * 0.00731 + 0.0003;
            for from in [0u64, 1, 5, 1000] {
                let i = first_fire_tick(arrives, omega, from);
                assert!(i >= from);
                assert!(
                    (i as f64 + 1.0) * omega >= arrives,
                    "fire tick {i} does not reach arrival {arrives}"
                );
                if i > from {
                    assert!(
                        (i as f64) * omega < arrives,
                        "tick {} already fires for arrival {arrives}",
                        i - 1
                    );
                }
            }
        }
        // Exact-boundary case: arrival lands precisely on a drain instant.
        let i = first_fire_tick(10.0 * omega, omega, 0);
        assert!((i as f64 + 1.0) * omega >= 10.0 * omega);
        assert!(i == 0 || (i as f64) * omega < 10.0 * omega);
    }

    #[test]
    fn scripted_sessions_never_park() {
        let model = niryo_one();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 99);
        let spec = SessionSpec::new(
            9,
            SourceSpec::replay(&test),
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        assert_eq!(session.wake_hint(), Wake::Runnable);
        while let Advance::Ticked(wake) = session.advance() {
            assert_eq!(wake, Wake::Runnable);
        }
    }

    /// The gated sessions' enabling property for socket ingress: the
    /// slot sequence alone determines every output — how advance() calls
    /// interleave with slot arrivals (the race a real network injects)
    /// must not change a single bit.
    #[test]
    fn gated_outputs_depend_only_on_the_slot_sequence() {
        let model = niryo_one();
        let home = model.home();
        let mut config = RecoveryConfig::for_model(&model);
        config.use_late_commands = true;
        let spec = SessionSpec::new(
            11,
            SourceSpec::Gated {
                initial: home.clone(),
                inbox_capacity: 512,
            },
            ChannelSpec::Ideal,
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(trained_var()),
                config,
            },
        );
        // One slot timeline with commands, losses, and a late patch.
        enum Step {
            Cmd(Vec<f64>),
            Miss,
            Late(Vec<f64>, usize),
        }
        let timeline: Vec<Step> = (0..120u64)
            .map(|k| {
                let mut cmd = home.clone();
                cmd[0] += 0.01 * (k % 7) as f64;
                cmd[2] -= 0.005 * (k % 3) as f64;
                match k % 9 {
                    3 | 4 => Step::Miss,
                    5 => Step::Late(cmd, 2),
                    _ => Step::Cmd(cmd),
                }
            })
            .collect();
        let feed = |s: &mut Session, step: &Step| match step {
            Step::Cmd(c) => {
                s.offer(c.clone());
            }
            Step::Miss => {
                s.offer_miss();
            }
            Step::Late(c, age) => {
                s.offer_late(c.clone(), *age);
            }
        };
        // Twin A: every slot arrives before any tick runs.
        let mut batched = Session::open(&spec, &model);
        for step in &timeline {
            feed(&mut batched, step);
        }
        // Twin B: the shard races ahead — several advances (hitting the
        // empty-queue Idle path) between every arrival.
        let mut raced = Session::open(&spec, &model);
        for step in &timeline {
            for _ in 0..3 {
                if let Advance::Ticked(_) | Advance::Completed(_) = raced.advance() {
                    // keep consuming; Completed is impossible pre-close
                }
            }
            feed(&mut raced, step);
            raced.advance();
        }
        let finish = |s: &mut Session| {
            s.close();
            loop {
                if let Advance::Completed(report) = s.advance() {
                    break report;
                }
            }
        };
        let (a, b) = (finish(&mut batched), finish(&mut raced));
        assert_eq!(a.ticks, b.ticks, "virtual time must be slot-driven");
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.as_ref().unwrap().late_patches > 0, "late path ran");
        assert_eq!(a.rmse_mm.to_bits(), b.rmse_mm.to_bits());
        assert_eq!(a.max_deviation_mm.to_bits(), b.max_deviation_mm.to_bits());
        // Miss slots are the losses; ticks count only tick-consuming slots.
        let consuming = timeline
            .iter()
            .filter(|s| !matches!(s, Step::Late(..)))
            .count();
        assert_eq!(a.ticks as usize, consuming);
    }

    #[test]
    fn gated_empty_queue_suspends_virtual_time() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            12,
            SourceSpec::Gated {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        assert_eq!(session.wake_hint(), Wake::AwaitingInput);
        for _ in 0..5 {
            assert!(matches!(
                session.advance(),
                Advance::Idle(Wake::AwaitingInput)
            ));
        }
        assert_eq!(session.tick(), 0, "no slot, no tick");
        // A suspended wait accrues no backlog: catch_up replays nothing.
        assert_eq!(session.catch_up(1_000), 0);
        assert_eq!(session.tick(), 0);
        session.offer(home.clone());
        assert_eq!(session.wake_hint(), Wake::Runnable);
        assert!(matches!(session.advance(), Advance::Ticked(_)));
        assert_eq!(session.tick(), 1);
        // Misses consume ticks too — they are the slot's verdict.
        session.offer_miss();
        assert!(matches!(session.advance(), Advance::Ticked(_)));
        assert_eq!(session.tick(), 2);
        session.close();
        let report = match session.advance() {
            Advance::Completed(report) => report,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(report.ticks, 2);
        assert_eq!(report.misses, 1);
    }

    #[test]
    fn gated_snapshot_restore_resumes_bit_identically() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            13,
            SourceSpec::Gated {
                initial: home.clone(),
                inbox_capacity: 64,
            },
            // A composed impairment channel on top of the wire verdicts:
            // the RNG state must survive the round trip.
            ChannelSpec::ControlledLoss {
                burst_len: 3,
                burst_prob: 0.1,
                seed: 17,
            },
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(MovingAverage::new(2, home.len())),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let drive = |s: &mut Session, base: u64, n: u64| {
            for k in 0..n {
                let mut cmd = home.clone();
                cmd[1] += 0.008 * ((base + k) % 5) as f64;
                if (base + k).is_multiple_of(6) {
                    s.offer_miss();
                } else {
                    s.offer(cmd);
                }
                s.advance();
            }
        };
        let mut original = Session::open(&spec, &model);
        drive(&mut original, 0, 40);
        // Leave slots queued so the snapshot carries a live queue.
        original.offer(home.clone());
        original.offer_miss();
        let bytes = original.snapshot().expect("snapshotable").to_bytes();
        let snap = crate::snapshot::SessionSnapshot::from_bytes(&bytes).expect("decode");
        let mut restored = Session::restore(&snap, &model).expect("restore");
        for s in [&mut original, &mut restored] {
            s.advance();
            s.advance();
            drive(s, 40, 30);
            s.close();
        }
        let finish = |s: &mut Session| loop {
            if let Advance::Completed(report) = s.advance() {
                break report;
            }
        };
        let (a, b) = (finish(&mut original), finish(&mut restored));
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.rmse_mm.to_bits(), b.rmse_mm.to_bits());
    }

    #[test]
    fn gated_restore_rejects_zero_count_miss_runs() {
        // A crafted snapshot with `Miss { count: 0 }` would consume a
        // tick on take() while counting as zero slots in the gateway's
        // adopt arithmetic — a smuggled one-tick desync. Restore must
        // reject it up front.
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            14,
            SourceSpec::Gated {
                initial: home.clone(),
                inbox_capacity: 8,
            },
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        session.offer(home.clone());
        let mut snap = session.snapshot().unwrap();
        match &mut snap.source {
            crate::snapshot::SourceState::Gated { inbox, .. } => {
                inbox.queue.push(crate::inbox::GatedSlot::Miss { count: 0 });
            }
            other => panic!("expected gated source state, got {other:?}"),
        }
        let err = match Session::restore(&snap, &model) {
            Err(e) => e,
            Ok(_) => panic!("zero-count miss run must be rejected"),
        };
        assert!(matches!(err, RestoreError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("zero count"));
    }

    #[test]
    fn streamed_overflow_counts_drops() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            3,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 2,
            },
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        assert_eq!(session.offer(home.clone()), Offer::Accepted);
        assert_eq!(session.offer(home.clone()), Offer::Accepted);
        assert_eq!(session.offer(home.clone()), Offer::Dropped);
        session.close();
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };
        assert_eq!(report.overflow_drops, 1);
        assert_eq!(report.ticks, 2);
    }
}
