//! One hosted recovery loop: operator source → impairment → recovery →
//! PID robot, advanced one virtual tick at a time.
//!
//! [`Session::advance`] replicates the offline
//! `foreco_core::run_closed_loop` body *operation for operation* —
//! including the order of floating-point accumulation in the error
//! metrics — so a session hosted on any shard of the service produces
//! **bit-identical** per-session results to a solo closed-loop run. The
//! shard-invariance integration test pins that contract.
//!
//! Differences from the offline loop are purely structural:
//!
//! - the reference (perfect-channel) driver advances in lockstep with
//!   the executed driver instead of in a separate pass — both drivers
//!   are deterministic and independent, so their trajectories are
//!   unchanged;
//! - task-space error accumulates incrementally (same summation order
//!   as `trajectory_rmse_mm`) instead of over stored trajectories, and
//!   both drivers run with trail recording off — a session is O(1) in
//!   memory regardless of how long it runs, which is what lets one
//!   process hold thousands of arms;
//! - commands may come from a live bounded inbox instead of a recorded
//!   script, in which case an empty inbox at tick time *is* the miss.

use crate::clock::VirtualClock;
use crate::inbox::{BoundedInbox, Offer};
use crate::spec::{SessionId, SessionSpec, SourceSpec};
use foreco_core::channel::{Arrival, Channel};
use foreco_core::{RecoveryEngine, RecoveryStats};
use foreco_robot::{ArmModel, RobotDriver};
use foreco_teleop::Dataset;
use serde::Serialize;
use std::sync::Arc;

/// How many fates a streamed session draws from its channel per batch.
/// Chunked draws keep burst structure intact within a batch while
/// avoiding unbounded pre-draw for endless streams.
const FATE_CHUNK: usize = 256;

/// Final accounting for one completed session.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionReport {
    /// Session id.
    pub id: SessionId,
    /// Virtual ticks executed.
    pub ticks: u64,
    /// Commands that missed their deadline (lost, late, or never sent).
    pub misses: usize,
    /// Commands dropped by inbox backpressure (streamed sessions).
    pub overflow_drops: u64,
    /// Task-space RMSE (mm) between executed and defined trajectories.
    pub rmse_mm: f64,
    /// Worst instantaneous deviation (mm).
    pub max_deviation_mm: f64,
    /// Recovery-engine counters (FoReCo sessions only).
    pub stats: Option<RecoveryStats>,
}

/// What one call to [`Session::advance`] did.
#[derive(Debug)]
pub enum Advance {
    /// The session consumed one virtual tick and continues.
    Ticked,
    /// The session finished; it must be removed from its shard.
    Completed(Box<SessionReport>),
}

enum Source {
    Scripted {
        commands: Arc<Vec<Vec<f64>>>,
        fates: Vec<Arrival>,
    },
    Streamed {
        inbox: BoundedInbox,
        channel: Box<dyn Channel + Send>,
        fate_buf: std::collections::VecDeque<Arrival>,
        closing: bool,
    },
}

/// A hosted recovery loop (see module docs).
pub struct Session {
    id: SessionId,
    source: Source,
    engine: Option<RecoveryEngine>,
    reference: RobotDriver,
    executed: RobotDriver,
    /// Late commands waiting to (maybe) patch FoReCo's history:
    /// (arrival time, tick index, payload) — §VII-C.
    pending_late: Vec<(f64, usize, Vec<f64>)>,
    clock: VirtualClock,
    omega: f64,
    misses: usize,
    /// Running sum of squared task-space deviation (mm²), accumulated in
    /// `trajectory_rmse_mm` order.
    acc_sq_mm: f64,
    worst_mm: f64,
}

impl Session {
    /// Materialises a session from its spec on the given arm model.
    ///
    /// # Panics
    /// Panics if a recorded/replayed source has no commands, or if the
    /// engine dimensionality mismatches the arm.
    pub fn open(spec: &SessionSpec, model: &ArmModel) -> Self {
        let omega = spec.driver.period;
        let (source, start) = match &spec.source {
            SourceSpec::Recorded {
                skill,
                cycles,
                seed,
            } => {
                let commands = Arc::new(Dataset::record(*skill, *cycles, omega, *seed).commands);
                Self::scripted_source(commands, spec, model)
            }
            SourceSpec::Replayed(commands) => {
                Self::scripted_source(Arc::clone(commands), spec, model)
            }
            SourceSpec::Streamed {
                initial,
                inbox_capacity,
            } => {
                let start = model.clamp(initial);
                (
                    Source::Streamed {
                        inbox: BoundedInbox::new(*inbox_capacity),
                        channel: spec.channel.build(),
                        fate_buf: std::collections::VecDeque::new(),
                        closing: false,
                    },
                    start,
                )
            }
        };
        let mut reference = RobotDriver::new(model.clone(), spec.driver, &start);
        let mut executed = RobotDriver::new(model.clone(), spec.driver, &start);
        reference.set_recording(false);
        executed.set_recording(false);
        Self {
            id: spec.id,
            source,
            engine: spec.recovery.build(start),
            reference,
            executed,
            pending_late: Vec::new(),
            clock: VirtualClock::new(omega),
            omega,
            misses: 0,
            acc_sq_mm: 0.0,
            worst_mm: 0.0,
        }
    }

    fn scripted_source(
        commands: Arc<Vec<Vec<f64>>>,
        spec: &SessionSpec,
        model: &ArmModel,
    ) -> (Source, Vec<f64>) {
        assert!(!commands.is_empty(), "session: no commands");
        let fates = spec.channel.build().fates(commands.len());
        let start = model.clamp(&commands[0]);
        (Source::Scripted { commands, fates }, start)
    }

    /// Session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Current virtual tick.
    pub fn tick(&self) -> u64 {
        self.clock.tick()
    }

    /// Offers a live command to a streamed session's inbox. Returns the
    /// backpressure outcome; scripted sessions always report `Dropped`.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        match &mut self.source {
            Source::Streamed { inbox, .. } => inbox.offer(command),
            Source::Scripted { .. } => Offer::Dropped,
        }
    }

    /// Marks a streamed session closing: it drains its inbox and then
    /// completes. No-op for scripted sessions (they end with the script).
    pub fn close(&mut self) {
        if let Source::Streamed { closing, .. } = &mut self.source {
            *closing = true;
        }
    }

    /// Advances one virtual tick.
    pub fn advance(&mut self) -> Advance {
        // What does this tick deliver? `None` = deadline miss.
        let (delivered, fate, exhausted) = match &mut self.source {
            Source::Scripted { commands, fates } => {
                let i = self.clock.tick() as usize;
                if i >= commands.len() {
                    return Advance::Completed(Box::new(self.report()));
                }
                (Some(commands[i].clone()), fates[i], false)
            }
            Source::Streamed {
                inbox,
                channel,
                fate_buf,
                closing,
            } => {
                match inbox.take() {
                    Some(cmd) => {
                        if fate_buf.is_empty() {
                            fate_buf.extend(channel.fates(FATE_CHUNK));
                        }
                        let fate = fate_buf.pop_front().expect("chunk refilled above");
                        (Some(cmd), fate, false)
                    }
                    // An empty inbox at tick time is itself the miss: the
                    // operator (or the backpressure drop) left this slot
                    // unfilled.
                    None => (None, Arrival::Lost, *closing),
                }
            }
        };
        if exhausted {
            return Advance::Completed(Box::new(self.report()));
        }

        let i = self.clock.tick() as usize;
        let now = (i as f64 + 1.0) * self.omega; // driver consumption instant

        // Reference driver: the defined trajectory (perfect channel).
        // Streamed misses have no command to define with — hold, like
        // the executed side's baseline.
        let ref_pos = {
            let sample = self.reference.tick(delivered.as_deref());
            sample.position_mm
        };

        // Executed driver: impairment + recovery, mirroring
        // `run_closed_loop` exactly.
        let exec_pos = match &mut self.engine {
            None => {
                // Baseline: repeat-last on every miss.
                let sample = match (&delivered, fate.on_time()) {
                    (Some(cmd), true) => self.executed.tick(Some(cmd)),
                    _ => {
                        self.misses += 1;
                        self.executed.tick(None)
                    }
                };
                sample.position_mm
            }
            Some(engine) => {
                // Deliver late commands that have arrived by now (§VII-C).
                pending_late_drain(&mut self.pending_late, engine, now, i);
                let outcome = match (delivered, fate.on_time()) {
                    (Some(cmd), true) => engine.tick(Some(cmd)),
                    (delivered, _) => {
                        self.misses += 1;
                        if let (Some(cmd), Arrival::Late(delay)) = (delivered, fate) {
                            self.pending_late
                                .push((i as f64 * self.omega + delay, i, cmd));
                        }
                        engine.tick(None)
                    }
                };
                self.executed.tick(Some(&outcome.command)).position_mm
            }
        };

        // Task-space error, accumulated in `trajectory_rmse_mm` /
        // `max_deviation_mm` operation order so the final report is
        // bit-identical to the offline metrics.
        self.acc_sq_mm += (exec_pos[0] - ref_pos[0]).powi(2)
            + (exec_pos[1] - ref_pos[1]).powi(2)
            + (exec_pos[2] - ref_pos[2]).powi(2);
        let d = ((exec_pos[0] - ref_pos[0]).powi(2)
            + (exec_pos[1] - ref_pos[1]).powi(2)
            + (exec_pos[2] - ref_pos[2]).powi(2))
        .sqrt();
        self.worst_mm = self.worst_mm.max(d);

        self.clock.advance();
        Advance::Ticked
    }

    fn report(&self) -> SessionReport {
        let n = self.clock.tick();
        let overflow_drops = match &self.source {
            Source::Streamed { inbox, .. } => inbox.dropped(),
            Source::Scripted { .. } => 0,
        };
        SessionReport {
            id: self.id,
            ticks: n,
            misses: self.misses,
            overflow_drops,
            rmse_mm: if n == 0 {
                0.0
            } else {
                (self.acc_sq_mm / n as f64).sqrt()
            },
            max_deviation_mm: self.worst_mm,
            stats: self.engine.as_ref().map(RecoveryEngine::stats),
        }
    }

    /// The arm model this session drives.
    pub fn model(&self) -> &ArmModel {
        self.executed.model()
    }
}

/// Mirrors the `pending_late.retain` block of `run_closed_loop`.
fn pending_late_drain(
    pending: &mut Vec<(f64, usize, Vec<f64>)>,
    engine: &mut RecoveryEngine,
    now: f64,
    i: usize,
) {
    pending.retain(|(arrives, idx, payload)| {
        if *arrives <= now {
            let age = i.saturating_sub(*idx);
            engine.late_command(payload.clone(), age);
            false
        } else {
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelSpec, RecoverySpec, SessionSpec, SharedForecaster, SourceSpec};
    use foreco_core::{run_closed_loop, RecoveryConfig, RecoveryEngine, RecoveryMode};
    use foreco_forecast::{MovingAverage, Var};
    use foreco_robot::niryo_one;
    use foreco_teleop::{Dataset, Skill};

    fn trained_var() -> Var {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
        Var::fit_differenced(&train, 5, 1e-6).unwrap()
    }

    #[test]
    fn scripted_session_matches_solo_closed_loop() {
        let model = niryo_one();
        let var = trained_var();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 321);
        let channel = ChannelSpec::ControlledLoss {
            burst_len: 8,
            burst_prob: 0.01,
            seed: 5,
        };
        let spec = SessionSpec::new(
            9,
            SourceSpec::replay(&test),
            channel.clone(),
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(var.clone()),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut session = Session::open(&spec, &model);
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };

        let fates = channel.build().fates(test.commands.len());
        let engine = RecoveryEngine::new(
            Box::new(var),
            RecoveryConfig::for_model(&model),
            model.clamp(&test.commands[0]),
        );
        let solo = run_closed_loop(
            &model,
            &test.commands,
            &fates,
            RecoveryMode::FoReCo(engine),
            spec.driver,
        );
        assert_eq!(report.ticks as usize, test.commands.len());
        assert_eq!(report.misses, solo.misses);
        assert_eq!(report.stats, solo.stats);
        assert_eq!(
            report.rmse_mm.to_bits(),
            solo.rmse_mm.to_bits(),
            "rmse must be bit-identical"
        );
        assert_eq!(
            report.max_deviation_mm.to_bits(),
            solo.max_deviation_mm.to_bits(),
            "max deviation must be bit-identical"
        );
    }

    #[test]
    fn baseline_session_matches_solo_closed_loop() {
        let model = niryo_one();
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 654);
        let channel = ChannelSpec::ControlledLoss {
            burst_len: 10,
            burst_prob: 0.02,
            seed: 3,
        };
        let spec = SessionSpec::new(
            1,
            SourceSpec::replay(&test),
            channel.clone(),
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };
        let fates = channel.build().fates(test.commands.len());
        let solo = run_closed_loop(
            &model,
            &test.commands,
            &fates,
            RecoveryMode::Baseline,
            spec.driver,
        );
        assert_eq!(report.misses, solo.misses);
        assert_eq!(report.rmse_mm.to_bits(), solo.rmse_mm.to_bits());
        assert!(report.stats.is_none());
    }

    #[test]
    fn streamed_session_covers_missing_ticks() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            2,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 4,
            },
            ChannelSpec::Ideal,
            RecoverySpec::FoReCo {
                forecaster: SharedForecaster::new(MovingAverage::new(2, home.len())),
                config: RecoveryConfig::for_model(&model),
            },
        );
        let mut session = Session::open(&spec, &model);
        // Feed two commands, then starve it for three ticks.
        session.offer(home.clone());
        session.offer(home.clone());
        for _ in 0..5 {
            assert!(matches!(session.advance(), Advance::Ticked));
        }
        session.close();
        let report = match session.advance() {
            Advance::Completed(report) => report,
            Advance::Ticked => panic!("closing session with empty inbox must complete"),
        };
        assert_eq!(report.ticks, 5);
        assert_eq!(report.misses, 3);
        let stats = report.stats.unwrap();
        assert_eq!(stats.delivered, 2);
        assert_eq!(
            stats.forecasts + stats.warmup_repeats + stats.horizon_holds,
            3,
            "every starved tick covered by the engine"
        );
    }

    #[test]
    fn streamed_overflow_counts_drops() {
        let model = niryo_one();
        let home = model.home();
        let spec = SessionSpec::new(
            3,
            SourceSpec::Streamed {
                initial: home.clone(),
                inbox_capacity: 2,
            },
            ChannelSpec::Ideal,
            RecoverySpec::Baseline,
        );
        let mut session = Session::open(&spec, &model);
        assert_eq!(session.offer(home.clone()), Offer::Accepted);
        assert_eq!(session.offer(home.clone()), Offer::Accepted);
        assert_eq!(session.offer(home.clone()), Offer::Dropped);
        session.close();
        let report = loop {
            if let Advance::Completed(report) = session.advance() {
                break report;
            }
        };
        assert_eq!(report.overflow_drops, 1);
        assert_eq!(report.ticks, 2);
    }
}
