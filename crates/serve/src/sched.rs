//! The event-driven shard scheduler's data structures: a hierarchical
//! timer wheel keyed on the shard's scheduling pass (one pass = one
//! [`VirtualClock`](crate::VirtualClock) tick slot for every runnable
//! session) and the per-shard load accounting the rebalancing policy
//! reads.
//!
//! # Timer wheel
//!
//! [`TimerWheel`] is the classic hashed hierarchical wheel (Varghese &
//! Lauck): `LEVELS` rings of `SLOTS` buckets each, level `k` spanning
//! `SLOTS^(k+1)` passes at a granularity of `SLOTS^k`. Insertion is
//! O(1); advancing fires level-0 buckets and cascades a higher-level
//! bucket only when the ring below wraps. Entries carry their exact due
//! pass, so a cascade or an over-wide bucket can never fire early — an
//! entry pulled before its pass is simply re-hashed closer in. The
//! service uses it to wake parked sessions whose next state change is a
//! *scheduled* event (a §VII-C late command falling due) rather than
//! traffic; granularity is exactly one pass at level 0, so wakes land on
//! the precise tick the session named in
//! [`Wake::ParkedUntil`](crate::session::Wake::ParkedUntil).
//!
//! # Load accounting
//!
//! Each shard publishes [`ShardLoad`] counters (lock-free atomics) that
//! a [`ServiceHandle`](crate::ServiceHandle) snapshots into
//! [`ShardLoadSummary`](crate::metrics::ShardLoadSummary) values — the
//! inputs of the balancer policy and of the idle-heavy benchmark's
//! `wakeups_per_tick` evidence.

use crate::metrics::ShardLoadSummary;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a shard decides which sessions to advance on each pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Advance every live session on every pass — the flat sweep of the
    /// original runtime. O(total sessions) per tick; kept as the ground
    /// truth the event-driven scheduler is property-tested against.
    Eager,
    /// Wake-on-work: a run queue of runnable sessions plus a
    /// [`TimerWheel`] for scheduled wakes. Sessions at a verified idle
    /// fixed point park and cost zero work per pass until traffic, a
    /// close, or a timer fires; their skipped ticks are replayed exactly
    /// by `Session::catch_up`. O(active sessions) per tick.
    #[default]
    EventDriven,
}

impl Scheduler {
    /// True for [`Scheduler::EventDriven`].
    pub fn event_driven(self) -> bool {
        matches!(self, Scheduler::EventDriven)
    }
}

/// Buckets per wheel level (64 keeps slot math to shifts and masks).
const SLOTS: usize = 64;
/// Bits per level (`log2(SLOTS)`).
const LEVEL_BITS: u32 = 6;
/// Wheel levels: spans 64⁴ ≈ 16.7 M passes — ~93 h of 50 Hz virtual
/// time — before the top ring has to recycle entries through re-hashing.
const LEVELS: usize = 4;

/// One parked timer: the session to wake and the exact pass it is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    due: u64,
    id: u64,
}

/// Hierarchical timer wheel over scheduling passes (see module docs).
#[derive(Debug)]
pub struct TimerWheel {
    /// The pass the wheel has been advanced through.
    now: u64,
    /// `LEVELS × SLOTS` buckets of pending entries.
    levels: Vec<Vec<Vec<Entry>>>,
    /// Live entries across all buckets.
    len: usize,
}

impl TimerWheel {
    /// An empty wheel anchored at pass `now`.
    pub fn new(now: u64) -> Self {
        Self {
            now,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            len: 0,
        }
    }

    /// Pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timer is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pass the wheel has been advanced through.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Re-anchors an **empty** wheel at pass `now` without walking the
    /// intermediate slots. An empty wheel is not advanced by the shard
    /// (firing nothing costs nothing), so its anchor can fall
    /// arbitrarily far behind the pass counter; syncing before the
    /// first insertion keeps the next [`TimerWheel::advance`] O(gap to
    /// the due pass) instead of O(passes since the wheel was last
    /// non-empty). No-op when `now` is in the wheel's past.
    ///
    /// # Panics
    /// Panics (debug) when timers are pending — jumping the anchor over
    /// live entries could fire them early or never.
    pub fn sync(&mut self, now: u64) {
        debug_assert!(self.is_empty(), "sync would skip pending timers");
        if self.is_empty() && now > self.now {
            self.now = now;
        }
    }

    /// Schedules `id` to fire at pass `due`. A due pass at or before the
    /// current one fires on the next [`TimerWheel::advance`] step.
    pub fn insert(&mut self, due: u64, id: u64) {
        let due = due.max(self.now + 1);
        let (level, slot) = self.place(due);
        self.levels[level][slot].push(Entry { due, id });
        self.len += 1;
    }

    /// Bucket placement for a due pass: the finest level whose span
    /// still reaches it (entries beyond the top ring's span park in the
    /// top ring and re-hash as it rotates).
    fn place(&self, due: u64) -> (usize, usize) {
        let delta = due - self.now;
        for level in 0..LEVELS {
            let span = 1u64 << (LEVEL_BITS * (level as u32 + 1));
            if delta < span || level == LEVELS - 1 {
                let slot = ((due >> (LEVEL_BITS * level as u32)) as usize) & (SLOTS - 1);
                return (level, slot);
            }
        }
        unreachable!("last level accepts any delta");
    }

    /// Advances the wheel through pass `to`, appending every fired
    /// session id to `fired` (callers sort before processing — bucket
    /// order is insertion order, which is not part of the contract).
    pub fn advance(&mut self, to: u64, fired: &mut Vec<u64>) {
        while self.now < to {
            self.now += 1;
            let slot = (self.now as usize) & (SLOTS - 1);
            self.drain_bucket(0, slot, fired);
            // Cascade: each time a ring wraps, re-hash the next ring's
            // current bucket — its entries now land closer in (or fire).
            for level in 1..LEVELS {
                let shifted = self.now >> (LEVEL_BITS * level as u32);
                if (self.now >> (LEVEL_BITS * (level as u32 - 1))) & (SLOTS as u64 - 1) != 0 {
                    break;
                }
                let slot = (shifted as usize) & (SLOTS - 1);
                self.drain_bucket(level, slot, fired);
            }
        }
    }

    /// Empties one bucket: due entries fire, the rest re-hash.
    fn drain_bucket(&mut self, level: usize, slot: usize, fired: &mut Vec<u64>) {
        if self.levels[level][slot].is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.levels[level][slot]);
        for entry in entries {
            self.len -= 1;
            if entry.due <= self.now {
                fired.push(entry.id);
            } else {
                self.insert(entry.due, entry.id);
            }
        }
    }

    /// The earliest pending due pass, if any — what an otherwise idle
    /// shard fast-forwards (or sleeps) to. O(buckets + entries); timers
    /// are rare relative to passes, so a scan beats the bookkeeping of a
    /// running minimum.
    pub fn next_due(&self) -> Option<u64> {
        self.levels.iter().flatten().flatten().map(|e| e.due).min()
    }

    /// Removes every pending timer for `id` (session completed or
    /// migrated away while parked). Returns how many were dropped.
    pub fn cancel(&mut self, id: u64) -> usize {
        let mut dropped = 0;
        for ring in &mut self.levels {
            for bucket in ring {
                let before = bucket.len();
                bucket.retain(|e| e.id != id);
                dropped += before - bucket.len();
            }
        }
        self.len -= dropped;
        dropped
    }
}

/// Lock-free per-shard load counters, published by the shard worker and
/// read by handles and the balancer. Cumulative counters only ever grow;
/// gauge-like fields (`sessions`, `runnable`, `parked`) are overwritten
/// each pass.
#[derive(Debug, Default)]
pub struct ShardLoad {
    /// Live sessions owned by the shard (gauge).
    pub sessions: AtomicU64,
    /// Sessions in the run queue after the last pass (gauge).
    pub runnable: AtomicU64,
    /// Sessions parked (timer or awaiting input) after the last pass
    /// (gauge).
    pub parked: AtomicU64,
    /// Scheduling passes executed (counter).
    pub passes: AtomicU64,
    /// Session advances performed (counter) — the numerator of
    /// `wakeups_per_tick`.
    pub wakeups: AtomicU64,
    /// Parked sessions woken by the timer wheel (counter).
    pub timer_wakeups: AtomicU64,
    /// Parked sessions woken by operator traffic (`Inject`/`Close`);
    /// administrative syncs (snapshot, migration, shutdown) are not
    /// counted (counter).
    pub traffic_wakeups: AtomicU64,
    /// Sessions migrated away by this shard (counter).
    pub migrated_out: AtomicU64,
    /// Sessions adopted by this shard (counter).
    pub migrated_in: AtomicU64,
}

impl ShardLoad {
    /// A point-in-time copy for shard `index`.
    pub fn summary(&self, index: usize) -> ShardLoadSummary {
        ShardLoadSummary {
            shard: index,
            sessions: self.sessions.load(Ordering::Relaxed),
            runnable: self.runnable.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            timer_wakeups: self.timer_wakeups.load(Ordering::Relaxed),
            traffic_wakeups: self.traffic_wakeups.load(Ordering::Relaxed),
            migrated_out: self.migrated_out.load(Ordering::Relaxed),
            migrated_in: self.migrated_in.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_all(wheel: &mut TimerWheel, to: u64) -> Vec<(u64, u64)> {
        // Advance pass by pass so each firing can be stamped with the
        // pass it fired on.
        let mut fired = Vec::new();
        while wheel.now() < to {
            let mut ids = Vec::new();
            wheel.advance(wheel.now() + 1, &mut ids);
            let pass = wheel.now();
            fired.extend(ids.into_iter().map(|id| (pass, id)));
        }
        fired
    }

    #[test]
    fn fires_exactly_on_the_due_pass() {
        let mut wheel = TimerWheel::new(0);
        // Spread dues across every level: within 64, within 64², within
        // 64³, and deep into the top ring.
        let dues = [1u64, 63, 64, 65, 4095, 4096, 262143, 262145, 300000];
        for (id, &due) in dues.iter().enumerate() {
            wheel.insert(due, id as u64);
        }
        assert_eq!(wheel.len(), dues.len());
        assert_eq!(wheel.next_due(), Some(1));
        let fired = fire_all(&mut wheel, 300001);
        assert!(wheel.is_empty());
        let mut expected: Vec<(u64, u64)> = dues
            .iter()
            .enumerate()
            .map(|(id, &due)| (due, id as u64))
            .collect();
        expected.sort_unstable();
        let mut got = fired;
        got.sort_unstable();
        assert_eq!(got, expected, "every timer must fire on its own pass");
    }

    #[test]
    fn past_due_fires_on_next_step() {
        let mut wheel = TimerWheel::new(500);
        wheel.insert(3, 7); // long past: clamped to now+1
        let mut fired = Vec::new();
        wheel.advance(501, &mut fired);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn bulk_advance_equals_stepped_advance() {
        let seeds: Vec<u64> = (0..200).map(|k| (k * 97 + 13) % 9000 + 1).collect();
        let mut bulk = TimerWheel::new(0);
        let mut stepped = TimerWheel::new(0);
        for (id, &due) in seeds.iter().enumerate() {
            bulk.insert(due, id as u64);
            stepped.insert(due, id as u64);
        }
        let mut bulk_fired = Vec::new();
        bulk.advance(10_000, &mut bulk_fired);
        let mut step_fired = Vec::new();
        for pass in 1..=10_000u64 {
            stepped.advance(pass, &mut step_fired);
        }
        bulk_fired.sort_unstable();
        step_fired.sort_unstable();
        assert_eq!(bulk_fired, step_fired);
        assert!(bulk.is_empty() && stepped.is_empty());
    }

    #[test]
    fn next_due_tracks_cascades() {
        let mut wheel = TimerWheel::new(0);
        wheel.insert(70, 1); // level 1 initially
        wheel.insert(130, 2);
        assert_eq!(wheel.next_due(), Some(70));
        let mut fired = Vec::new();
        wheel.advance(69, &mut fired);
        assert!(fired.is_empty(), "nothing due yet: {fired:?}");
        assert_eq!(wheel.next_due(), Some(70), "cascade must not lose timers");
        wheel.advance(70, &mut fired);
        assert_eq!(fired, vec![1]);
        assert_eq!(wheel.next_due(), Some(130));
    }

    #[test]
    fn sync_re_anchors_an_empty_wheel_cheaply() {
        // A wheel that sat empty for millions of passes must not walk
        // them all when the next timer goes in: sync jumps the anchor,
        // and the subsequent advance is O(gap to due).
        let mut wheel = TimerWheel::new(0);
        wheel.sync(5_000_000);
        assert_eq!(wheel.now(), 5_000_000);
        wheel.insert(5_000_017, 9);
        let started = std::time::Instant::now();
        let mut fired = Vec::new();
        wheel.advance(5_000_017, &mut fired);
        assert_eq!(fired, vec![9]);
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "advance walked the stale gap"
        );
        // Syncing backwards is a no-op.
        wheel.sync(3);
        assert_eq!(wheel.now(), 5_000_017);
    }

    #[test]
    fn cancel_drops_all_timers_for_an_id() {
        let mut wheel = TimerWheel::new(0);
        wheel.insert(10, 1);
        wheel.insert(5000, 1);
        wheel.insert(20, 2);
        assert_eq!(wheel.cancel(1), 2);
        assert_eq!(wheel.len(), 1);
        let mut fired = Vec::new();
        wheel.advance(6000, &mut fired);
        assert_eq!(fired, vec![2]);
    }

    #[test]
    fn load_summary_snapshots_counters() {
        let load = ShardLoad::default();
        load.sessions.store(12, Ordering::Relaxed);
        load.runnable.store(3, Ordering::Relaxed);
        load.parked.store(9, Ordering::Relaxed);
        load.passes.store(100, Ordering::Relaxed);
        load.wakeups.store(320, Ordering::Relaxed);
        let s = load.summary(2);
        assert_eq!(s.shard, 2);
        assert_eq!(s.sessions, 12);
        assert_eq!(s.parked, 9);
        assert!((s.wakeups_per_pass() - 3.2).abs() < 1e-12);
        assert!((s.runnable_ratio() - 0.25).abs() < 1e-12);
    }
}
