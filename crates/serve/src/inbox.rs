//! The bounded per-session command inbox — where backpressure becomes
//! the paper's loss event.
//!
//! A streamed session receives operator commands through a fixed-capacity
//! queue. When the queue is full the newest command is **dropped**, not
//! queued: a teleoperation command is only useful in its 20 ms slot, so
//! buffering beyond the robot's consumption rate would trade loss for
//! lag — the exact trade the paper rejects (§II: late commands are as
//! useless as lost ones). The drop surfaces to the recovery engine as a
//! miss on the tick that would have consumed it, and FoReCo forecasts
//! the gap — the drop policy *is* the loss model.
//!
//! The inbox is also the scheduler's primary **wake source**: a parked
//! session (one whose empty-inbox tick is a verified state no-op, see
//! [`Wake`](crate::session::Wake)) leaves the run queue entirely, and
//! the arrival of a command through `SessionCommand::Inject` is what
//! pulls it back in — the owning shard replays the skipped ticks
//! exactly, then lets the session consume the command on the tick it
//! arrived at.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Serialisable form of a [`BoundedInbox`] for session snapshots:
/// capacity, the queued (not-yet-consumed) commands, and the lifetime
/// accept/drop counters that feed `SessionReport::overflow_drops`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InboxState {
    /// Maximum queued commands.
    pub capacity: usize,
    /// Queued commands, oldest first.
    pub queue: Vec<Vec<f64>>,
    /// Commands accepted since construction.
    pub accepted: u64,
    /// Commands dropped by backpressure since construction.
    pub dropped: u64,
}

/// Outcome of offering a command to the inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Queued for the next free tick.
    Accepted,
    /// Inbox full: the command was dropped (a loss event).
    Dropped,
}

/// Fixed-capacity FIFO of joint-space commands.
#[derive(Debug)]
pub struct BoundedInbox {
    queue: VecDeque<Vec<f64>>,
    capacity: usize,
    accepted: u64,
    dropped: u64,
}

impl BoundedInbox {
    /// An empty inbox holding at most `capacity` commands.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "inbox: capacity must be ≥ 1");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offers a command; full inboxes drop it.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            Offer::Dropped
        } else {
            self.queue.push_back(command);
            self.accepted += 1;
            Offer::Accepted
        }
    }

    /// Takes the oldest queued command, if any (one per tick).
    pub fn take(&mut self) -> Option<Vec<f64>> {
        self.queue.pop_front()
    }

    /// Commands currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Commands accepted since construction.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Commands dropped by backpressure since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the inbox for checkpointing.
    pub fn snapshot(&self) -> InboxState {
        InboxState {
            capacity: self.capacity,
            queue: self.queue.iter().cloned().collect(),
            accepted: self.accepted,
            dropped: self.dropped,
        }
    }

    /// Rebuilds an inbox from exported state.
    ///
    /// # Panics
    /// Panics if the state's capacity is zero or the queue exceeds it.
    pub fn from_state(state: &InboxState) -> Self {
        assert!(state.capacity >= 1, "inbox restore: capacity must be ≥ 1");
        assert!(
            state.queue.len() <= state.capacity,
            "inbox restore: queue longer than capacity"
        );
        Self {
            queue: state.queue.iter().cloned().collect(),
            capacity: state.capacity,
            accepted: state.accepted,
            dropped: state.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full_then_drops() {
        let mut inbox = BoundedInbox::new(2);
        assert_eq!(inbox.offer(vec![1.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![2.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.accepted(), 2);
        assert_eq!(inbox.dropped(), 1);
    }

    #[test]
    fn drains_fifo() {
        let mut inbox = BoundedInbox::new(3);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), Some(vec![2.0]));
        assert_eq!(inbox.take(), None);
        assert!(inbox.is_empty());
    }

    #[test]
    fn drop_frees_no_slot() {
        let mut inbox = BoundedInbox::new(1);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]); // dropped
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), None, "dropped command must not appear");
    }

    #[test]
    fn counters_survive_refill_cycles() {
        // Overflow accounting is lifetime accounting: draining the queue
        // must never reset or double-count accepted/dropped.
        let mut inbox = BoundedInbox::new(2);
        for round in 0..5u64 {
            assert_eq!(inbox.offer(vec![0.1]), Offer::Accepted);
            assert_eq!(inbox.offer(vec![0.2]), Offer::Accepted);
            assert_eq!(inbox.offer(vec![0.3]), Offer::Dropped);
            assert_eq!(inbox.offer(vec![0.4]), Offer::Dropped);
            while inbox.take().is_some() {}
            assert_eq!(inbox.accepted(), (round + 1) * 2);
            assert_eq!(inbox.dropped(), (round + 1) * 2);
        }
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
    }

    #[test]
    fn drain_reopens_capacity_exactly() {
        // A full inbox accepts again after exactly one take — the
        // boundary where an off-by-one would either leak a slot or
        // wrongly drop.
        let mut inbox = BoundedInbox::new(2);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.offer(vec![4.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![5.0]), Offer::Dropped);
        assert_eq!(inbox.take(), Some(vec![2.0]));
        assert_eq!(inbox.take(), Some(vec![4.0]));
        assert_eq!(inbox.dropped(), 2);
        assert_eq!(inbox.accepted(), 3);
    }

    #[test]
    fn snapshot_round_trip_preserves_queue_and_counters() {
        let mut inbox = BoundedInbox::new(3);
        inbox.offer(vec![1.0, 2.0]);
        inbox.offer(vec![3.0, 4.0]);
        inbox.offer(vec![5.0, 6.0]);
        inbox.offer(vec![7.0, 8.0]); // dropped
        inbox.take();
        let state = inbox.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: InboxState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = BoundedInbox::from_state(&back);
        assert_eq!(restored.len(), inbox.len());
        assert_eq!(restored.accepted(), 3);
        assert_eq!(restored.dropped(), 1);
        assert_eq!(restored.take(), inbox.take());
        assert_eq!(restored.take(), inbox.take());
        assert_eq!(restored.take(), None);
        // And the drop policy picks up where it left off.
        restored.offer(vec![9.0, 9.0]);
        assert_eq!(restored.accepted(), 4);
    }

    #[test]
    #[should_panic(expected = "queue longer than capacity")]
    fn from_state_rejects_overfull_queue() {
        BoundedInbox::from_state(&InboxState {
            capacity: 1,
            queue: vec![vec![0.0], vec![1.0]],
            accepted: 2,
            dropped: 0,
        });
    }
}
