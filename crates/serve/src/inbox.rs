//! The bounded per-session command inbox — where backpressure becomes
//! the paper's loss event.
//!
//! A streamed session receives operator commands through a fixed-capacity
//! queue. When the queue is full the newest command is **dropped**, not
//! queued: a teleoperation command is only useful in its 20 ms slot, so
//! buffering beyond the robot's consumption rate would trade loss for
//! lag — the exact trade the paper rejects (§II: late commands are as
//! useless as lost ones). The drop surfaces to the recovery engine as a
//! miss on the tick that would have consumed it, and FoReCo forecasts
//! the gap — the drop policy *is* the loss model.
//!
//! The inbox is also the scheduler's primary **wake source**: a parked
//! session (one whose empty-inbox tick is a verified state no-op, see
//! [`Wake`](crate::session::Wake)) leaves the run queue entirely, and
//! the arrival of a command through `SessionCommand::Inject` is what
//! pulls it back in — the owning shard replays the skipped ticks
//! exactly, then lets the session consume the command on the tick it
//! arrived at.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Serialisable form of a [`BoundedInbox`] for session snapshots:
/// capacity, the queued (not-yet-consumed) commands, and the lifetime
/// accept/drop counters that feed `SessionReport::overflow_drops`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InboxState {
    /// Maximum queued commands.
    pub capacity: usize,
    /// Queued commands, oldest first.
    pub queue: Vec<Vec<f64>>,
    /// Commands accepted since construction.
    pub accepted: u64,
    /// Commands dropped by backpressure since construction.
    pub dropped: u64,
}

/// Outcome of offering a command to the inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Queued for the next free tick.
    Accepted,
    /// Inbox full: the command was dropped (a loss event).
    Dropped,
}

/// Fixed-capacity FIFO of joint-space commands.
#[derive(Debug)]
pub struct BoundedInbox {
    queue: VecDeque<Vec<f64>>,
    capacity: usize,
    accepted: u64,
    dropped: u64,
}

impl BoundedInbox {
    /// An empty inbox holding at most `capacity` commands.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "inbox: capacity must be ≥ 1");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offers a command; full inboxes drop it.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            Offer::Dropped
        } else {
            self.queue.push_back(command);
            self.accepted += 1;
            Offer::Accepted
        }
    }

    /// Takes the oldest queued command, if any (one per tick).
    pub fn take(&mut self) -> Option<Vec<f64>> {
        self.queue.pop_front()
    }

    /// Commands currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Commands accepted since construction.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Commands dropped by backpressure since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the inbox for checkpointing.
    pub fn snapshot(&self) -> InboxState {
        InboxState {
            capacity: self.capacity,
            queue: self.queue.iter().cloned().collect(),
            accepted: self.accepted,
            dropped: self.dropped,
        }
    }

    /// Rebuilds an inbox from exported state.
    ///
    /// # Panics
    /// Panics if the state's capacity is zero or the queue exceeds it.
    pub fn from_state(state: &InboxState) -> Self {
        assert!(state.capacity >= 1, "inbox restore: capacity must be ≥ 1");
        assert!(
            state.queue.len() <= state.capacity,
            "inbox restore: queue longer than capacity"
        );
        Self {
            queue: state.queue.iter().cloned().collect(),
            capacity: state.capacity,
            accepted: state.accepted,
            dropped: state.dropped,
        }
    }
}

/// One entry of a [`GatedInbox`]: the ingress gateway's verdict for one
/// virtual tick slot (plus tickless late patches riding between slots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatedSlot {
    /// The slot's command arrived (in order) — the session consumes it
    /// on the tick this slot maps to.
    Command(Vec<f64>),
    /// `count` consecutive slots' commands are lost (wire gaps the
    /// gateway flushed, or bounced/overflowed injections): each is a
    /// deadline-miss tick the recovery engine covers. Runs are
    /// coalesced so a long outage costs one queue entry, not one per
    /// slot — [`GatedInbox::take`] always hands back single-slot units
    /// (`count == 1`).
    Miss {
        /// Consecutive lost slots in this run (≥ 1).
        count: u64,
    },
    /// A command that resurfaced after its slot was already flushed as
    /// missed (§VII-C): consumes **no** tick — it patches the engine
    /// history just before the next slot's tick, `age` ticks after the
    /// slot it was meant for.
    Late {
        /// The late payload.
        command: Vec<f64>,
        /// Ticks between the command's slot and its arrival.
        age: usize,
    },
}

/// Serialisable form of a [`GatedInbox`] for session snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatedInboxState {
    /// Maximum queued *command* slots (miss markers ride free: they
    /// carry no payload and must keep the slot timeline aligned).
    pub capacity: usize,
    /// Queued slots, oldest first.
    pub queue: Vec<GatedSlot>,
    /// Command slots accepted since construction.
    pub accepted: u64,
    /// Commands dropped (converted to misses, or late patches refused)
    /// by backpressure since construction.
    pub dropped: u64,
}

/// The flow-controlled ingress queue behind [`SourceSpec::Gated`]
/// (`crate::SourceSpec::Gated`) sessions.
///
/// Unlike [`BoundedInbox`], where an empty queue at tick time *is* the
/// miss, a gated session's virtual clock advances only as slots are
/// consumed — an empty gated inbox means "no network verdict yet", and
/// the session parks without ticking. Losses are therefore **explicit**
/// ([`GatedSlot::Miss`], enqueued by the gateway for wire gaps and
/// overflow), which is what makes a session fed over a real socket
/// bit-identical to one fed in-process: the slot sequence, not the race
/// between socket threads and shard clocks, determines every tick.
///
/// Backpressure still bounds memory: at `capacity` queued command
/// payloads a further command is dropped and a miss takes its place
/// (payload-free, so the timeline stays aligned); late patches are
/// refused beyond a `2 × capacity` entry bound; and consecutive misses
/// coalesce into one run-counted entry. Every miss run borders a
/// non-miss entry, so the queue holds O(`capacity`) entries no matter
/// how hard a client floods it.
#[derive(Debug)]
pub struct GatedInbox {
    queue: VecDeque<GatedSlot>,
    commands: usize,
    capacity: usize,
    accepted: u64,
    dropped: u64,
}

impl GatedInbox {
    /// An empty gated inbox holding at most `capacity` command slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "gated inbox: capacity must be ≥ 1");
        Self {
            queue: VecDeque::new(),
            commands: 0,
            capacity,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offers a command slot; at capacity the payload is dropped and a
    /// miss marker preserves the slot timeline.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        if self.commands >= self.capacity {
            self.dropped += 1;
            self.push_miss();
            Offer::Dropped
        } else {
            self.commands += 1;
            self.accepted += 1;
            self.queue.push_back(GatedSlot::Command(command));
            Offer::Accepted
        }
    }

    /// Enqueues an explicit miss slot (always accepted: it is the loss;
    /// consecutive misses coalesce, so acceptance costs O(1) memory).
    pub fn offer_miss(&mut self) {
        self.push_miss();
    }

    fn push_miss(&mut self) {
        if let Some(GatedSlot::Miss { count }) = self.queue.back_mut() {
            *count += 1;
        } else {
            self.queue.push_back(GatedSlot::Miss { count: 1 });
        }
    }

    /// Offers a §VII-C late patch; refused (dropped) when the queue is
    /// saturated (command capacity spent, or the `2 × capacity` entry
    /// bound reached) — a lost patch is semantically a loss staying a
    /// loss.
    pub fn offer_late(&mut self, command: Vec<f64>, age: usize) -> Offer {
        if self.commands >= self.capacity || self.queue.len() >= 2 * self.capacity {
            self.dropped += 1;
            Offer::Dropped
        } else {
            self.queue.push_back(GatedSlot::Late { command, age });
            Offer::Accepted
        }
    }

    /// Takes the oldest queued slot, if any, always as a single-slot
    /// unit (a coalesced miss run yields one `Miss { count: 1 }` per
    /// call).
    pub fn take(&mut self) -> Option<GatedSlot> {
        if let Some(GatedSlot::Miss { count }) = self.queue.front_mut() {
            if *count > 1 {
                *count -= 1;
                return Some(GatedSlot::Miss { count: 1 });
            }
        }
        let slot = self.queue.pop_front();
        if matches!(slot, Some(GatedSlot::Command(_))) {
            self.commands -= 1;
        }
        slot
    }

    /// Queue entries currently held (a coalesced miss run counts once,
    /// however many slots it spans).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Command slots accepted since construction.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Payloads dropped by backpressure since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the inbox for checkpointing.
    pub fn snapshot(&self) -> GatedInboxState {
        GatedInboxState {
            capacity: self.capacity,
            queue: self.queue.iter().cloned().collect(),
            accepted: self.accepted,
            dropped: self.dropped,
        }
    }

    /// Rebuilds a gated inbox from exported state.
    ///
    /// # Panics
    /// Panics if the state's capacity is zero or its queue holds more
    /// command slots than the capacity admits.
    pub fn from_state(state: &GatedInboxState) -> Self {
        assert!(
            state.capacity >= 1,
            "gated inbox restore: capacity must be ≥ 1"
        );
        let commands = state
            .queue
            .iter()
            .filter(|s| matches!(s, GatedSlot::Command(_)))
            .count();
        assert!(
            commands <= state.capacity,
            "gated inbox restore: queue longer than capacity"
        );
        Self {
            queue: state.queue.iter().cloned().collect(),
            commands,
            capacity: state.capacity,
            accepted: state.accepted,
            dropped: state.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full_then_drops() {
        let mut inbox = BoundedInbox::new(2);
        assert_eq!(inbox.offer(vec![1.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![2.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.accepted(), 2);
        assert_eq!(inbox.dropped(), 1);
    }

    #[test]
    fn drains_fifo() {
        let mut inbox = BoundedInbox::new(3);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), Some(vec![2.0]));
        assert_eq!(inbox.take(), None);
        assert!(inbox.is_empty());
    }

    #[test]
    fn drop_frees_no_slot() {
        let mut inbox = BoundedInbox::new(1);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]); // dropped
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), None, "dropped command must not appear");
    }

    #[test]
    fn counters_survive_refill_cycles() {
        // Overflow accounting is lifetime accounting: draining the queue
        // must never reset or double-count accepted/dropped.
        let mut inbox = BoundedInbox::new(2);
        for round in 0..5u64 {
            assert_eq!(inbox.offer(vec![0.1]), Offer::Accepted);
            assert_eq!(inbox.offer(vec![0.2]), Offer::Accepted);
            assert_eq!(inbox.offer(vec![0.3]), Offer::Dropped);
            assert_eq!(inbox.offer(vec![0.4]), Offer::Dropped);
            while inbox.take().is_some() {}
            assert_eq!(inbox.accepted(), (round + 1) * 2);
            assert_eq!(inbox.dropped(), (round + 1) * 2);
        }
        assert!(inbox.is_empty());
        assert_eq!(inbox.len(), 0);
    }

    #[test]
    fn drain_reopens_capacity_exactly() {
        // A full inbox accepts again after exactly one take — the
        // boundary where an off-by-one would either leak a slot or
        // wrongly drop.
        let mut inbox = BoundedInbox::new(2);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.offer(vec![4.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![5.0]), Offer::Dropped);
        assert_eq!(inbox.take(), Some(vec![2.0]));
        assert_eq!(inbox.take(), Some(vec![4.0]));
        assert_eq!(inbox.dropped(), 2);
        assert_eq!(inbox.accepted(), 3);
    }

    #[test]
    fn snapshot_round_trip_preserves_queue_and_counters() {
        let mut inbox = BoundedInbox::new(3);
        inbox.offer(vec![1.0, 2.0]);
        inbox.offer(vec![3.0, 4.0]);
        inbox.offer(vec![5.0, 6.0]);
        inbox.offer(vec![7.0, 8.0]); // dropped
        inbox.take();
        let state = inbox.snapshot();
        let json = serde_json::to_string(&state).unwrap();
        let back: InboxState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = BoundedInbox::from_state(&back);
        assert_eq!(restored.len(), inbox.len());
        assert_eq!(restored.accepted(), 3);
        assert_eq!(restored.dropped(), 1);
        assert_eq!(restored.take(), inbox.take());
        assert_eq!(restored.take(), inbox.take());
        assert_eq!(restored.take(), None);
        // And the drop policy picks up where it left off.
        restored.offer(vec![9.0, 9.0]);
        assert_eq!(restored.accepted(), 4);
    }

    #[test]
    #[should_panic(expected = "queue longer than capacity")]
    fn from_state_rejects_overfull_queue() {
        BoundedInbox::from_state(&InboxState {
            capacity: 1,
            queue: vec![vec![0.0], vec![1.0]],
            accepted: 2,
            dropped: 0,
        });
    }

    #[test]
    fn gated_overflow_converts_commands_to_misses() {
        // The slot timeline must stay aligned through backpressure: a
        // dropped payload leaves a miss marker in its place.
        let mut inbox = GatedInbox::new(2);
        assert_eq!(inbox.offer(vec![1.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![2.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.len(), 3, "the dropped slot still occupies a slot");
        assert_eq!(inbox.dropped(), 1);
        assert_eq!(inbox.take(), Some(GatedSlot::Command(vec![1.0])));
        assert_eq!(inbox.take(), Some(GatedSlot::Command(vec![2.0])));
        assert_eq!(inbox.take(), Some(GatedSlot::Miss { count: 1 }));
        assert_eq!(inbox.take(), None);
    }

    #[test]
    fn gated_late_patches_ride_free_but_respect_capacity() {
        let mut inbox = GatedInbox::new(1);
        assert_eq!(inbox.offer(vec![1.0]), Offer::Accepted);
        // Miss markers and late patches don't consume command capacity…
        inbox.offer_miss();
        assert_eq!(inbox.offer_late(vec![9.0], 2), Offer::Dropped);
        assert_eq!(inbox.dropped(), 1, "late patch refused at capacity");
        // …and capacity reopens when a command is consumed.
        assert_eq!(inbox.take(), Some(GatedSlot::Command(vec![1.0])));
        assert_eq!(
            inbox.offer_late(vec![9.0], 2),
            Offer::Accepted,
            "capacity freed"
        );
        assert_eq!(inbox.take(), Some(GatedSlot::Miss { count: 1 }));
        assert_eq!(
            inbox.take(),
            Some(GatedSlot::Late {
                command: vec![9.0],
                age: 2
            })
        );
    }

    #[test]
    fn gated_miss_runs_coalesce_and_bound_the_queue() {
        // A flood of over-capacity commands and explicit misses must
        // cost O(1) queue entries per run, not one per slot — the
        // memory bound behind "backpressure still bounds memory".
        let mut inbox = GatedInbox::new(2);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        for _ in 0..10_000 {
            assert_eq!(inbox.offer(vec![9.9]), Offer::Dropped);
            inbox.offer_miss();
        }
        assert_eq!(inbox.len(), 3, "one coalesced run after the commands");
        assert_eq!(inbox.dropped(), 10_000);
        // Late patches respect the entry bound too.
        assert_eq!(inbox.offer_late(vec![9.0], 1), Offer::Dropped);
        // Consumption yields single-slot units, 20 000 of them.
        inbox.take();
        inbox.take();
        let mut misses = 0u64;
        while let Some(slot) = inbox.take() {
            assert_eq!(slot, GatedSlot::Miss { count: 1 });
            misses += 1;
        }
        assert_eq!(misses, 20_000);
    }

    #[test]
    fn gated_snapshot_round_trip() {
        let mut inbox = GatedInbox::new(3);
        inbox.offer(vec![1.0, 2.0]);
        inbox.offer_miss();
        inbox.offer_miss(); // coalesces with the previous miss
        inbox.offer_late(vec![3.0, 4.0], 1);
        inbox.offer(vec![5.0, 6.0]);
        let state = inbox.snapshot();
        assert_eq!(state.queue.len(), 4, "runs stay coalesced in snapshots");
        let json = serde_json::to_string(&state).unwrap();
        let back: GatedInboxState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let mut restored = GatedInbox::from_state(&back);
        assert_eq!(restored.len(), inbox.len());
        while let Some(slot) = inbox.take() {
            assert_eq!(restored.take(), Some(slot));
        }
        assert_eq!(restored.take(), None);
        // Command accounting survives: two queued commands were restored
        // and drained, so a third offer fits again.
        assert_eq!(restored.offer(vec![7.0, 8.0]), Offer::Accepted);
    }
}
