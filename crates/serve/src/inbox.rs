//! The bounded per-session command inbox — where backpressure becomes
//! the paper's loss event.
//!
//! A streamed session receives operator commands through a fixed-capacity
//! queue. When the queue is full the newest command is **dropped**, not
//! queued: a teleoperation command is only useful in its 20 ms slot, so
//! buffering beyond the robot's consumption rate would trade loss for
//! lag — the exact trade the paper rejects (§II: late commands are as
//! useless as lost ones). The drop surfaces to the recovery engine as a
//! miss on the tick that would have consumed it, and FoReCo forecasts
//! the gap — the drop policy *is* the loss model.

use std::collections::VecDeque;

/// Outcome of offering a command to the inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Queued for the next free tick.
    Accepted,
    /// Inbox full: the command was dropped (a loss event).
    Dropped,
}

/// Fixed-capacity FIFO of joint-space commands.
#[derive(Debug)]
pub struct BoundedInbox {
    queue: VecDeque<Vec<f64>>,
    capacity: usize,
    accepted: u64,
    dropped: u64,
}

impl BoundedInbox {
    /// An empty inbox holding at most `capacity` commands.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "inbox: capacity must be ≥ 1");
        Self {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Offers a command; full inboxes drop it.
    pub fn offer(&mut self, command: Vec<f64>) -> Offer {
        if self.queue.len() >= self.capacity {
            self.dropped += 1;
            Offer::Dropped
        } else {
            self.queue.push_back(command);
            self.accepted += 1;
            Offer::Accepted
        }
    }

    /// Takes the oldest queued command, if any (one per tick).
    pub fn take(&mut self) -> Option<Vec<f64>> {
        self.queue.pop_front()
    }

    /// Commands currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Commands accepted since construction.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Commands dropped by backpressure since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full_then_drops() {
        let mut inbox = BoundedInbox::new(2);
        assert_eq!(inbox.offer(vec![1.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![2.0]), Offer::Accepted);
        assert_eq!(inbox.offer(vec![3.0]), Offer::Dropped);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.accepted(), 2);
        assert_eq!(inbox.dropped(), 1);
    }

    #[test]
    fn drains_fifo() {
        let mut inbox = BoundedInbox::new(3);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]);
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), Some(vec![2.0]));
        assert_eq!(inbox.take(), None);
        assert!(inbox.is_empty());
    }

    #[test]
    fn drop_frees_no_slot() {
        let mut inbox = BoundedInbox::new(1);
        inbox.offer(vec![1.0]);
        inbox.offer(vec![2.0]); // dropped
        assert_eq!(inbox.take(), Some(vec![1.0]));
        assert_eq!(inbox.take(), None, "dropped command must not appear");
    }
}
