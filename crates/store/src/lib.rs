//! Refcounted, content-addressed shared storage for the FoReCo fleet.
//!
//! A million scripted sessions replaying the same teleop trace, or
//! sharing the same trained VAR, should pay for **one** copy — not N.
//! [`Storage`] is the substrate that makes that true: a clonable,
//! thread-safe store with
//!
//! - **content-addressed identity** — an object's [`ObjectId`] is a
//!   stable 128-bit hash over its canonical bytes (for traces, the
//!   [`f64::to_bits`] patterns of every command; for models, the
//!   canonical serialized [`ForecasterState`]). Inserting the same
//!   content twice yields the same id and the same resident object, so
//!   dedup is automatic and bit-exact: `-0.0` and `+0.0` are *different*
//!   content, two bit-identical NaN payloads are the *same* content;
//! - **per-object refcounts via RAII claims** — every lookup or insert
//!   returns a handle ([`TraceHandle`], [`ModelHandle`], [`BlobHandle`])
//!   that claims the object. Cloning a handle adds a claim, dropping one
//!   releases it, and the object is evicted from the store the moment
//!   its last claim drops. There is no manual free and no GC pause;
//! - **typed indexes** for the three object kinds the fleet shares:
//!   teleop traces (`Vec<Vec<f64>>` command streams), trained forecaster
//!   models (`Arc<dyn Forecaster>`), and opaque blobs (engine-history /
//!   snapshot bytes).
//!
//! Claims are **never** taken on a session's tick path: `foreco-serve`
//! acquires them at session build / restore and holds them for the
//! session's lifetime, so the zero-allocation steady-state contract is
//! untouched.
//!
//! # Example
//!
//! ```
//! use foreco_store::Storage;
//! use foreco_teleop::{Dataset, Skill};
//!
//! let store = Storage::new();
//! let ds = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
//!
//! // N sessions over one dataset cost one resident copy…
//! let a = store.insert_trace(&ds.commands);
//! let b = store.insert_trace(&ds.commands);
//! assert_eq!(a.id(), b.id());
//! assert_eq!(store.stats().traces.objects, 1);
//! assert_eq!(store.stats().traces.claims, 2);
//!
//! // …and the trace is evicted exactly when the last claim drops.
//! drop(a);
//! assert_eq!(store.stats().traces.objects, 1);
//! drop(b);
//! assert_eq!(store.stats().traces.objects, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard};

use foreco_forecast::{Forecaster, ForecasterState};
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};

/// Stable 128-bit content address of a stored object.
///
/// Computed with FNV-1a over the object's canonical bytes (see the
/// module docs), with a per-kind domain tag so a trace and a blob with
/// identical bytes still live under unrelated ids. The id is what a
/// dedup-aware snapshot archive serializes in place of the payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId {
    hi: u64,
    lo: u64,
}

impl ObjectId {
    /// The id as one 128-bit integer.
    pub fn as_u128(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Reconstructs an id from its [`ObjectId::as_u128`] form — the
    /// inverse needed by binary codecs that carry ids as two raw
    /// little-endian words instead of JSON objects.
    pub fn from_u128(v: u128) -> Self {
        Self {
            hi: (v >> 64) as u64,
            lo: v as u64,
        }
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({:016x}{:016x})", self.hi, self.lo)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// 128-bit FNV-1a over a byte stream.
struct Hasher128(u128);

impl Hasher128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    fn new(domain: &str) -> Self {
        let mut h = Hasher128(Self::OFFSET);
        h.bytes(domain.as_bytes());
        h
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> ObjectId {
        ObjectId {
            hi: (self.0 >> 64) as u64,
            lo: self.0 as u64,
        }
    }
}

/// Content address of a teleop trace: length-prefixed rows of
/// [`f64::to_bits`] patterns. This is the id [`Storage::insert_trace`]
/// files the trace under, exposed so callers (the v2 snapshot encoder)
/// can address a trace they hold only as rows.
pub fn trace_object_id(commands: &[Vec<f64>]) -> ObjectId {
    let mut h = Hasher128::new("foreco-store/trace/v1");
    h.u64(commands.len() as u64);
    for row in commands {
        h.u64(row.len() as u64);
        for &v in row {
            h.u64(v.to_bits());
        }
    }
    h.finish()
}

/// Content address of a trained forecaster model: a hash over the
/// canonical bytes of its exported [`ForecasterState`].
pub fn model_object_id(state: &ForecasterState) -> ObjectId {
    let mut h = Hasher128::new("foreco-store/model/v1");
    h.bytes(&state.canonical_bytes());
    h.finish()
}

/// Content address of an opaque blob.
pub fn blob_object_id(bytes: &[u8]) -> ObjectId {
    let mut h = Hasher128::new("foreco-store/blob/v1");
    h.u64(bytes.len() as u64);
    h.bytes(bytes);
    h.finish()
}

/// True when two traces are the same *bits* (NaN-safe, `-0.0`-exact) —
/// the equality the content address stands for, which `f64::eq` is not.
fn trace_bits_eq(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra
                    .iter()
                    .zip(rb)
                    .all(|(va, vb)| va.to_bits() == vb.to_bits())
        })
}

/// Approximate heap footprint of a trace, for [`StoreStats`] byte
/// accounting (row headers + payload doubles).
fn trace_resident_bytes(commands: &[Vec<f64>]) -> usize {
    std::mem::size_of::<Vec<Vec<f64>>>()
        + std::mem::size_of_val(commands)
        + commands.iter().map(|r| r.len() * 8).sum::<usize>()
}

/// One refcounted object in an index.
struct Slot<T> {
    payload: T,
    claims: u64,
    bytes: usize,
}

/// Counters for one object kind, snapshotted into [`StoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Objects currently resident.
    pub objects: usize,
    /// Outstanding claims across all resident objects.
    pub claims: u64,
    /// Approximate resident heap bytes of the payloads.
    pub resident_bytes: usize,
    /// Inserts that stored a new object.
    pub inserts: u64,
    /// Inserts deduplicated against an already-resident object.
    pub dedup_hits: u64,
    /// Objects evicted because their last claim dropped.
    pub evictions: u64,
}

/// A typed refcounted index: id → slot plus the kind's counters.
struct Index<T> {
    slots: HashMap<ObjectId, Slot<T>>,
    inserts: u64,
    dedup_hits: u64,
    evictions: u64,
}

impl<T> Default for Index<T> {
    fn default() -> Self {
        Self {
            slots: HashMap::new(),
            inserts: 0,
            dedup_hits: 0,
            evictions: 0,
        }
    }
}

impl<T: Clone> Index<T> {
    /// Dedup path of an insert: claims the resident payload under `id`,
    /// if any. `verify` guards against a 128-bit hash collision by
    /// comparing actual content.
    fn claim_dedup(&mut self, id: ObjectId, verify: impl FnOnce(&T) -> bool) -> Option<T> {
        let slot = self.slots.get_mut(&id)?;
        assert!(
            verify(&slot.payload),
            "foreco-store: content-hash collision on {id} — distinct payloads, one id"
        );
        slot.claims += 1;
        self.dedup_hits += 1;
        Some(slot.payload.clone())
    }

    /// Miss path of an insert: stores a new payload under `id` with one
    /// claim. Only call after [`Index::claim_dedup`] returned `None`.
    fn insert_new(&mut self, id: ObjectId, payload: T, bytes: usize) -> T {
        self.slots.insert(
            id,
            Slot {
                payload: payload.clone(),
                claims: 1,
                bytes,
            },
        );
        self.inserts += 1;
        payload
    }

    /// Claims an already-resident object, returning its payload.
    fn claim(&mut self, id: ObjectId) -> Option<T> {
        self.slots.get_mut(&id).map(|slot| {
            slot.claims += 1;
            slot.payload.clone()
        })
    }

    /// Adds one claim to an object a live handle already guards.
    fn reclaim(&mut self, id: ObjectId) {
        self.slots
            .get_mut(&id)
            .expect("foreco-store: claimed object missing from index")
            .claims += 1;
    }

    /// Drops one claim; evicts the object when it was the last.
    fn release(&mut self, id: ObjectId) {
        let slot = self
            .slots
            .get_mut(&id)
            .expect("foreco-store: released object missing from index");
        slot.claims -= 1;
        if slot.claims == 0 {
            self.slots.remove(&id);
            self.evictions += 1;
        }
    }

    fn stats(&self) -> KindStats {
        KindStats {
            objects: self.slots.len(),
            claims: self.slots.values().map(|s| s.claims).sum(),
            resident_bytes: self.slots.values().map(|s| s.bytes).sum(),
            inserts: self.inserts,
            dedup_hits: self.dedup_hits,
            evictions: self.evictions,
        }
    }
}

/// Resident model payload: the forecaster plus the canonical state
/// bytes its id was derived from (kept for collision verification).
#[derive(Clone)]
struct ModelSlot {
    forecaster: Arc<dyn Forecaster>,
    canonical: Arc<Vec<u8>>,
}

/// The three typed indexes behind one [`Storage`].
#[derive(Default)]
struct StoreInner {
    traces: Mutex<Index<Arc<Vec<Vec<f64>>>>>,
    models: Mutex<Index<ModelSlot>>,
    blobs: Mutex<Index<Arc<Vec<u8>>>>,
}

/// Locks an index, recovering from a poisoned mutex: the indexes hold
/// plain counters and payloads, always consistent between operations,
/// so a panicking claimant cannot corrupt them.
fn lock<T>(m: &Mutex<Index<T>>) -> MutexGuard<'_, Index<T>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Errors from [`Storage`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The forecaster cannot export a [`ForecasterState`], so it has no
    /// canonical bytes to address it by (e.g. the seq2seq network).
    UnsupportedModel {
        /// `Forecaster::name()` of the offending model.
        name: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnsupportedModel { name } => write!(
                f,
                "forecaster '{name}' does not export a state and cannot be content-addressed"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Snapshot of the store's counters, one [`KindStats`] per index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Teleop trace index.
    pub traces: KindStats,
    /// Trained forecaster model index.
    pub models: KindStats,
    /// Opaque blob index.
    pub blobs: KindStats,
}

impl StoreStats {
    /// Total resident payload bytes across all indexes.
    pub fn resident_bytes(&self) -> usize {
        self.traces.resident_bytes + self.models.resident_bytes + self.blobs.resident_bytes
    }
}

/// Clonable, thread-safe, content-addressed shared storage (see the
/// module docs). Clones share the same underlying indexes.
#[derive(Clone, Default)]
pub struct Storage {
    inner: Arc<StoreInner>,
}

impl fmt::Debug for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Storage")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Storage {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or dedups) a teleop trace, claiming it. The rows are
    /// copied only when the content is new; a dedup hit costs one hash
    /// pass and zero copies.
    pub fn insert_trace(&self, commands: &[Vec<f64>]) -> TraceHandle {
        let id = trace_object_id(commands);
        let mut index = lock(&self.inner.traces);
        let payload = match index.claim_dedup(id, |resident| trace_bits_eq(resident, commands)) {
            Some(resident) => resident,
            None => {
                let bytes = trace_resident_bytes(commands);
                index.insert_new(id, Arc::new(commands.to_vec()), bytes)
            }
        };
        drop(index);
        TraceHandle {
            store: Arc::clone(&self.inner),
            id,
            payload,
        }
    }

    /// Like [`Storage::insert_trace`], but takes ownership of the rows
    /// so a fresh insert performs no copy at all.
    pub fn insert_trace_owned(&self, commands: Vec<Vec<f64>>) -> TraceHandle {
        let id = trace_object_id(&commands);
        let mut index = lock(&self.inner.traces);
        let payload = match index.claim_dedup(id, |resident| trace_bits_eq(resident, &commands)) {
            Some(resident) => resident,
            None => {
                let bytes = trace_resident_bytes(&commands);
                index.insert_new(id, Arc::new(commands), bytes)
            }
        };
        drop(index);
        TraceHandle {
            store: Arc::clone(&self.inner),
            id,
            payload,
        }
    }

    /// Inserts a recorded dataset's command stream, consuming the
    /// dataset so the rows move into the store without a copy (pairs
    /// with [`Dataset::into_commands`]).
    pub fn insert_dataset(&self, dataset: Dataset) -> TraceHandle {
        self.insert_trace_owned(dataset.into_commands())
    }

    /// Claims an already-resident trace by id.
    pub fn get_trace(&self, id: ObjectId) -> Option<TraceHandle> {
        lock(&self.inner.traces)
            .claim(id)
            .map(|payload| TraceHandle {
                store: Arc::clone(&self.inner),
                id,
                payload,
            })
    }

    /// Registers (or dedups) a trained forecaster model, claiming it.
    /// Identity is the canonical bytes of its exported
    /// [`ForecasterState`], so two independently trained but
    /// bit-identical models resolve to one resident object.
    pub fn insert_model(&self, forecaster: Arc<dyn Forecaster>) -> Result<ModelHandle, StoreError> {
        let state = forecaster
            .export_state()
            .ok_or_else(|| StoreError::UnsupportedModel {
                name: forecaster.name().to_string(),
            })?;
        let canonical = state.canonical_bytes();
        let id = model_object_id(&state);
        let mut index = lock(&self.inner.models);
        let slot = match index.claim_dedup(id, |resident| *resident.canonical == canonical) {
            Some(resident) => resident,
            None => {
                let bytes = canonical.len();
                index.insert_new(
                    id,
                    ModelSlot {
                        forecaster,
                        canonical: Arc::new(canonical),
                    },
                    bytes,
                )
            }
        };
        drop(index);
        Ok(ModelHandle {
            store: Arc::clone(&self.inner),
            id,
            payload: slot.forecaster,
        })
    }

    /// Claims an already-registered model by id.
    pub fn get_model(&self, id: ObjectId) -> Option<ModelHandle> {
        lock(&self.inner.models).claim(id).map(|slot| ModelHandle {
            store: Arc::clone(&self.inner),
            id,
            payload: slot.forecaster,
        })
    }

    /// Inserts (or dedups) an opaque blob — serialized engine histories,
    /// snapshot bytes — claiming it.
    pub fn insert_blob(&self, bytes: Vec<u8>) -> BlobHandle {
        let id = blob_object_id(&bytes);
        let mut index = lock(&self.inner.blobs);
        let payload = match index.claim_dedup(id, |resident| **resident == bytes) {
            Some(resident) => resident,
            None => {
                let len = bytes.len();
                index.insert_new(id, Arc::new(bytes), len)
            }
        };
        drop(index);
        BlobHandle {
            store: Arc::clone(&self.inner),
            id,
            payload,
        }
    }

    /// Claims an already-resident blob by id.
    pub fn get_blob(&self, id: ObjectId) -> Option<BlobHandle> {
        lock(&self.inner.blobs).claim(id).map(|payload| BlobHandle {
            store: Arc::clone(&self.inner),
            id,
            payload,
        })
    }

    /// Current counters across all three indexes.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            traces: lock(&self.inner.traces).stats(),
            models: lock(&self.inner.models).stats(),
            blobs: lock(&self.inner.blobs).stats(),
        }
    }
}

/// Generates an RAII claim handle over one typed index.
macro_rules! claim_handle {
    ($(#[$meta:meta])* $name:ident, $payload:ty, $index:ident, $debug_extra:ident) => {
        $(#[$meta])*
        pub struct $name {
            store: Arc<StoreInner>,
            id: ObjectId,
            payload: $payload,
        }

        impl $name {
            /// The content address this handle claims.
            pub fn id(&self) -> ObjectId {
                self.id
            }
        }

        impl Clone for $name {
            fn clone(&self) -> Self {
                lock(&self.store.$index).reclaim(self.id);
                Self {
                    store: Arc::clone(&self.store),
                    id: self.id,
                    payload: self.payload.clone(),
                }
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                lock(&self.store.$index).release(self.id);
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("id", &self.id)
                    .field(stringify!($debug_extra), &self.$debug_extra())
                    .finish()
            }
        }
    };
}

claim_handle!(
    /// RAII claim over a resident teleop trace. The trace stays in the
    /// store for as long as any clone of this handle lives; dropping the
    /// last clone evicts it. Claims are taken at session build time,
    /// never on the tick path.
    TraceHandle,
    Arc<Vec<Vec<f64>>>,
    traces,
    rows
);

claim_handle!(
    /// RAII claim over a registered forecaster model.
    ModelHandle,
    Arc<dyn Forecaster>,
    models,
    name
);

claim_handle!(
    /// RAII claim over a resident opaque blob.
    BlobHandle,
    Arc<Vec<u8>>,
    blobs,
    len
);

impl TraceHandle {
    /// The shared command rows (cheap to clone: an `Arc` bump).
    pub fn commands(&self) -> &Arc<Vec<Vec<f64>>> {
        &self.payload
    }

    /// Number of command rows.
    pub fn rows(&self) -> usize {
        self.payload.len()
    }
}

impl Deref for TraceHandle {
    type Target = [Vec<f64>];

    fn deref(&self) -> &Self::Target {
        &self.payload
    }
}

impl ModelHandle {
    /// The shared forecaster.
    pub fn forecaster(&self) -> &Arc<dyn Forecaster> {
        &self.payload
    }

    /// `Forecaster::name()` of the registered model.
    pub fn name(&self) -> &'static str {
        self.payload.name()
    }
}

impl BlobHandle {
    /// The shared bytes.
    pub fn bytes(&self) -> &Arc<Vec<u8>> {
        &self.payload
    }

    /// Blob length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the blob is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl Deref for BlobHandle {
    type Target = [u8];

    fn deref(&self) -> &Self::Target {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_forecast::MovingAverage;
    use foreco_teleop::Skill;

    fn trace(k: f64) -> Vec<Vec<f64>> {
        (0..4).map(|i| vec![k + i as f64, k * 2.0]).collect()
    }

    #[test]
    fn dedup_shares_one_resident_object() {
        let store = Storage::new();
        let a = store.insert_trace(&trace(1.0));
        let b = store.insert_trace(&trace(1.0));
        let c = store.insert_trace(&trace(2.0));
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert!(Arc::ptr_eq(a.commands(), b.commands()));
        let s = store.stats().traces;
        assert_eq!((s.objects, s.claims, s.inserts, s.dedup_hits), (2, 3, 2, 1));
    }

    #[test]
    fn eviction_happens_exactly_at_last_claim_drop() {
        let store = Storage::new();
        let a = store.insert_trace(&trace(1.0));
        let id = a.id();
        let b = a.clone();
        let c = store.get_trace(id).expect("resident");
        drop(a);
        drop(c);
        assert_eq!(store.stats().traces.objects, 1, "claim still outstanding");
        drop(b);
        let s = store.stats().traces;
        assert_eq!((s.objects, s.evictions), (0, 1));
        assert!(store.get_trace(id).is_none(), "evicted trace is gone");
        assert_eq!(s.resident_bytes, 0);
    }

    #[test]
    fn negative_zero_is_distinct_content_and_nan_bits_dedup() {
        let store = Storage::new();
        let pos = store.insert_trace(&[vec![0.0]]);
        let neg = store.insert_trace(&[vec![-0.0]]);
        assert_ne!(pos.id(), neg.id(), "-0.0 and +0.0 are different bits");
        let nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let n1 = store.insert_trace(&[vec![nan]]);
        let n2 = store.insert_trace(&[vec![nan]]);
        assert_eq!(n1.id(), n2.id(), "bit-identical NaNs are one object");
        assert_eq!(store.stats().traces.objects, 3);
    }

    #[test]
    fn models_register_once_per_content() {
        let store = Storage::new();
        let a = store
            .insert_model(Arc::new(MovingAverage::new(5, 6)))
            .expect("register");
        let b = store
            .insert_model(Arc::new(MovingAverage::new(5, 6)))
            .expect("register");
        assert_eq!(a.id(), b.id());
        assert!(Arc::ptr_eq(a.forecaster(), b.forecaster()));
        let c = store
            .insert_model(Arc::new(MovingAverage::new(4, 6)))
            .expect("register");
        assert_ne!(a.id(), c.id());
        assert_eq!(store.stats().models.objects, 2);
    }

    #[test]
    fn blobs_round_trip_and_dedup() {
        let store = Storage::new();
        let a = store.insert_blob(vec![1, 2, 3]);
        let b = store.insert_blob(vec![1, 2, 3]);
        assert_eq!(a.id(), b.id());
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(store.get_blob(a.id()).expect("resident").len(), 3);
        assert_eq!(store.stats().blobs.objects, 1);
    }

    #[test]
    fn dataset_moves_in_without_copy() {
        let ds = Dataset::record(Skill::Inexperienced, 1, 0.02, 8);
        let by_ref_id = trace_object_id(&ds.commands);
        let rows = ds.len();
        let store = Storage::new();
        let handle = store.insert_dataset(ds);
        assert_eq!(handle.id(), by_ref_id);
        assert_eq!(handle.rows(), rows);
    }

    #[test]
    fn clones_of_the_store_share_indexes() {
        let store = Storage::new();
        let twin = store.clone();
        let h = store.insert_trace(&trace(3.0));
        assert!(twin.get_trace(h.id()).is_some());
        assert_eq!(twin.stats().traces.dedup_hits, 0);
    }

    #[test]
    fn object_id_serde_round_trips_exactly() {
        let id = trace_object_id(&trace(4.0));
        let json = serde_json::to_string(&id).expect("encode");
        let back: ObjectId = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, id);
    }

    #[test]
    fn object_id_u128_round_trips_exactly() {
        let id = trace_object_id(&trace(5.0));
        assert_eq!(ObjectId::from_u128(id.as_u128()), id);
        assert_eq!(ObjectId::from_u128(0).as_u128(), 0);
        assert_eq!(ObjectId::from_u128(u128::MAX).as_u128(), u128::MAX);
    }
}
