//! Property suite for the shared store's refcounting contract.
//!
//! Three invariants carry the whole subsystem, so they get randomized
//! coverage rather than a handful of examples:
//!
//! 1. **claims are conserved** — under arbitrary interleavings of
//!    clone/claim/drop across threads, the live claim count equals the
//!    number of outstanding handles, never more, never less;
//! 2. **eviction happens exactly at the last drop** — an object is
//!    resident while any claim exists and gone the moment none does
//!    (no early eviction, no leak);
//! 3. **identity is content, bit for bit** — `-0.0` and `+0.0` are
//!    different objects, while bit-identical NaN payloads are one.
//!
//! Run with a fixed case count via `PROPTEST_CASES` (CI pins it); the
//! concurrency cases only bite under `--release`, which is how the CI
//! store job runs them.

use foreco_store::{trace_object_id, Storage, TraceHandle};
use proptest::prelude::*;

/// A trace whose rows depend deterministically on `seed` (so distinct
/// seeds give distinct content, equal seeds bit-equal content).
fn trace(seed: u64, rows: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|r| {
            (0..dims)
                .map(|d| ((seed ^ (r as u64 * 31 + d as u64)) % 1000) as f64 * 0.001)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(16))]

    /// Claims are conserved across concurrent clone/claim/drop storms:
    /// `threads` workers each claim the same trace `per_thread` times
    /// (mixing fresh content-claims with handle clones), hold them all,
    /// then drop them all. While any worker holds a claim the object is
    /// resident; after the join-and-drop the store is empty.
    #[test]
    fn concurrent_claims_are_conserved(
        seed in 0u64..1_000,
        threads in 2usize..6,
        per_thread in 1usize..8,
        rows in 1usize..12,
    ) {
        let store = Storage::new();
        let rows_data = trace(seed, rows, 3);
        let root = store.insert_trace(&rows_data);
        let id = root.id();

        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let store = store.clone();
                let rows_data = rows_data.clone();
                let root = root.clone();
                std::thread::spawn(move || -> Vec<TraceHandle> {
                    (0..per_thread)
                        .map(|k| {
                            // Alternate acquisition paths: content
                            // re-insert (dedup hit) vs handle clone
                            // (reclaim) vs id lookup.
                            match (t + k) % 3 {
                                0 => store.insert_trace(&rows_data),
                                1 => root.clone(),
                                _ => store.get_trace(id).expect("resident while root lives"),
                            }
                        })
                        .collect()
                })
            })
            .collect();
        let held: Vec<Vec<TraceHandle>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();

        // Every path landed on the same object, and the claim count is
        // exactly the outstanding handles (root + all workers').
        let stats = store.stats();
        prop_assert_eq!(stats.traces.objects, 1);
        prop_assert_eq!(stats.traces.claims, 1 + (threads * per_thread) as u64);
        for handles in &held {
            for h in handles {
                prop_assert_eq!(h.id(), id);
            }
        }

        // Drop the workers' claims concurrently; the root keeps the
        // object alive through the storm.
        let droppers: Vec<_> = held
            .into_iter()
            .map(|handles| std::thread::spawn(move || drop(handles)))
            .collect();
        for d in droppers {
            d.join().unwrap();
        }
        let stats = store.stats();
        prop_assert_eq!(stats.traces.objects, 1);
        prop_assert_eq!(stats.traces.claims, 1);
        prop_assert!(store.get_trace(id).is_some());

        // Last claim drops → eviction, exactly then.
        drop(root);
        let stats = store.stats();
        prop_assert_eq!(stats.traces.objects, 0);
        prop_assert_eq!(stats.traces.claims, 0);
        prop_assert_eq!(stats.traces.evictions, 1);
        prop_assert_eq!(stats.resident_bytes(), 0);
        prop_assert!(store.get_trace(id).is_none());
    }

    /// Eviction timing under a random drop order: N claims on one
    /// object, dropped in a seed-determined order — the object stays
    /// resident until the very last drop and is gone right after.
    #[test]
    fn eviction_exactly_at_last_claim_drop(
        seed in 0u64..1_000,
        claims in 1usize..10,
        rows in 1usize..8,
    ) {
        let store = Storage::new();
        let rows_data = trace(seed, rows, 2);
        let mut handles: Vec<TraceHandle> =
            (0..claims).map(|_| store.insert_trace(&rows_data)).collect();
        let id = handles[0].id();
        prop_assert_eq!(store.stats().traces.inserts, 1);
        prop_assert_eq!(store.stats().traces.dedup_hits, (claims - 1) as u64);

        // Seed-determined drop order.
        while handles.len() > 1 {
            let pick = (seed as usize + handles.len()) % handles.len();
            handles.swap_remove(pick);
            // Still resident: claims remain.
            prop_assert!(store.get_trace(id).is_some(), "evicted early");
            prop_assert_eq!(store.stats().traces.objects, 1);
        }
        drop(handles);
        prop_assert!(store.get_trace(id).is_none(), "leaked after last drop");
        prop_assert_eq!(store.stats().traces.objects, 0);
        prop_assert_eq!(store.stats().traces.evictions, 1);
    }

    /// Content addressing is bit addressing: traces differing only in a
    /// `-0.0` vs `+0.0` cell are distinct objects, while two traces
    /// carrying the same NaN bit pattern are one.
    #[test]
    fn identity_is_bitwise(
        seed in 0u64..1_000,
        rows in 1usize..8,
        cell in 0usize..4,
    ) {
        let store = Storage::new();
        let base = trace(seed, rows, 4);
        let row = seed as usize % rows;

        let mut pos = base.clone();
        pos[row][cell] = 0.0;
        let mut neg = base.clone();
        neg[row][cell] = -0.0;
        let a = store.insert_trace(&pos);
        let b = store.insert_trace(&neg);
        prop_assert_ne!(a.id(), b.id(), "-0.0 must be distinct content");
        prop_assert_eq!(store.stats().traces.objects, 2);

        let mut nan = base.clone();
        nan[row][cell] = f64::NAN;
        let c = store.insert_trace(&nan);
        let d = store.insert_trace(&nan);
        prop_assert_eq!(c.id(), d.id(), "bit-identical NaN payloads must dedup");
        prop_assert_eq!(trace_object_id(&nan), c.id());
        prop_assert_eq!(store.stats().traces.objects, 3);
        prop_assert_eq!(store.stats().traces.dedup_hits, 1);
    }
}
