//! The non-802.11 interference source.
//!
//! The paper sweeps two knobs in Fig. 8: the probability that the
//! interferer activates (`p_if`, 1–5 %) and how long it stays active
//! (`T_if`, 10–100 slots). We model it as an on/off renewal process on the
//! slot lattice: in any slot where the interferer is idle it turns on with
//! probability `p_if`, and once on it emits for exactly `T_if` slots —
//! corrupting every 802.11 frame it overlaps (the jammer of §VI-D-2 does
//! not carrier-sense).

use serde::{Deserialize, Serialize};

/// On/off interference source description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// Per-idle-slot activation probability `p_if` in `[0, 1]`.
    pub prob: f64,
    /// Burst duration `T_if` in slots (≥ 1 when `prob > 0`).
    pub duration_slots: u32,
}

impl Interference {
    /// Creates an interference source.
    ///
    /// # Panics
    /// Panics if `prob` is outside `[0, 1]` or `prob > 0` with a zero
    /// duration.
    pub fn new(prob: f64, duration_slots: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "p_if must be in [0,1], got {prob}"
        );
        assert!(
            prob == 0.0 || duration_slots >= 1,
            "active interferer needs duration ≥ 1 slot"
        );
        Self {
            prob,
            duration_slots,
        }
    }

    /// No interference at all (the paper's baseline channel).
    pub fn none() -> Self {
        Self {
            prob: 0.0,
            duration_slots: 0,
        }
    }

    /// Stationary fraction of slots covered by a burst.
    ///
    /// Renewal argument: a cycle is a geometric idle period of mean
    /// `1/p_if` slots followed by a burst of `T_if` slots, so
    /// `cov = T_if / (T_if + 1/p_if) = p_if·T_if / (1 + p_if·T_if)`.
    pub fn coverage(&self) -> f64 {
        if self.prob == 0.0 {
            return 0.0;
        }
        let pt = self.prob * self.duration_slots as f64;
        pt / (1.0 + pt)
    }

    /// Probability that a burst **starts during** a transmission spanning
    /// `tx_slots` slots: `1 − (1−p_if)^tx_slots`.
    ///
    /// This is the per-attempt corruption probability for a
    /// carrier-sensing station: it never *begins* a transmission inside an
    /// ongoing burst (CCA reports busy and the backoff counter freezes),
    /// so only bursts igniting mid-frame can hit it. `T_if` therefore
    /// degrades the link through counter freezing and queue build-up, not
    /// through this term.
    pub fn mid_frame_hit_probability(&self, tx_slots: u32) -> f64 {
        if self.prob == 0.0 {
            return 0.0;
        }
        1.0 - (1.0 - self.prob).powi(tx_slots as i32)
    }

    /// Probability that a transmission spanning `tx_slots` slots overlaps
    /// a burst **when the transmitter cannot sense the interferer**: a
    /// burst is already on when it starts (`coverage`), or one starts in
    /// any of its slots. Kept for non-carrier-sensing what-if analyses.
    pub fn hit_probability(&self, tx_slots: u32) -> f64 {
        if self.prob == 0.0 {
            return 0.0;
        }
        let cov = self.coverage();
        let start_during = self.mid_frame_hit_probability(tx_slots);
        cov + (1.0 - cov) * start_during
    }

    /// True when the source never emits.
    pub fn is_none(&self) -> bool {
        self.prob == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_covers_nothing() {
        let i = Interference::none();
        assert_eq!(i.coverage(), 0.0);
        assert_eq!(i.hit_probability(100), 0.0);
        assert!(i.is_none());
    }

    #[test]
    fn coverage_hand_checked() {
        // p_if = 0.05, T_if = 100 → cov = 5/6.
        let i = Interference::new(0.05, 100);
        assert!((i.coverage() - 5.0 / 6.0).abs() < 1e-12);
        // p_if = 0.01, T_if = 10 → cov = 0.1/1.1.
        let i = Interference::new(0.01, 10);
        assert!((i.coverage() - 0.1 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn coverage_monotone_in_both_knobs() {
        let base = Interference::new(0.02, 50).coverage();
        assert!(Interference::new(0.04, 50).coverage() > base);
        assert!(Interference::new(0.02, 100).coverage() > base);
    }

    #[test]
    fn hit_probability_bounds_and_monotonicity() {
        let i = Interference::new(0.025, 50);
        let h1 = i.hit_probability(1);
        let h10 = i.hit_probability(10);
        assert!(h1 > i.coverage(), "hit prob includes mid-frame starts");
        assert!(h10 > h1, "longer frames are hit more often");
        assert!(h10 < 1.0);
    }

    #[test]
    fn full_time_jammer_hits_everything() {
        let i = Interference::new(1.0, 1000);
        assert!(i.coverage() > 0.999);
        assert!(i.hit_probability(1) > 0.999);
    }

    #[test]
    #[should_panic(expected = "p_if")]
    fn invalid_probability_rejected() {
        Interference::new(1.5, 10);
    }
}
