//! IEEE 802.11 wireless substrate for the FoReCo reproduction.
//!
//! The paper's simulation study (§V) derives the wireless delay `ΔW(c_i)`
//! of every control command from an analytical model of the 802.11
//! Distributed Coordination Function (DCF) extended with a **non-802.11
//! interference source** (Bosch et al. 2020, the paper's \[7\]), and feeds
//! the resulting per-retransmission delays into a **G/HEXP/1/Q** queue.
//! That model is not public; this crate rebuilds the pipeline:
//!
//! - [`Params`]: 802.11 MAC/PHY timing parameters with the defaults
//!   documented in DESIGN.md §5 (DSSS-style, 11 Mb/s data rate);
//! - [`Interference`]: an on/off interferer that activates per idle slot
//!   with probability `p_if` and stays active `T_if` slots — exactly the
//!   two knobs swept in the paper's Fig. 8;
//! - [`DcfModel`]: the Bianchi-style fixed point with retry limit and
//!   interference, yielding the attempt-failure probability `p`, the
//!   per-retransmission probabilities `a_j`, the expected delays
//!   `E_j[ΔW] = Ts + j·Tc + σ̃ Σ_{k≤j}(W_k−1)/2` (paper eq. 20), and the
//!   RTX-limit loss probability `a_{m+2} = p^{m+2}` of Lemma 1;
//! - [`SlotSimulator`]: an independent slot-level DCF simulator (binary
//!   exponential backoff, freezing, the same interferer) used by the test
//!   suite to validate the analytical model;
//! - [`WirelessLink`]: the G/HEXP/1/Q command pipe — deterministic
//!   arrivals every `Ω`, hyperexponential service over the `a_j`/`E_j`
//!   phases, finite access-point queue `Q`, producing the per-command
//!   [`CommandFate`]s consumed by the closed-loop experiments.
//!
//! The Appendix results (unbounded delay, violated causality assumption)
//! are exercised in this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytical;
mod interference;
mod link;
mod params;
mod slotsim;

pub use analytical::{DcfModel, DcfSolution};
pub use interference::Interference;
pub use link::{CommandFate, LinkConfig, WirelessLink};
pub use params::Params;
pub use slotsim::{SlotSimulator, SlotSimulatorReport};
