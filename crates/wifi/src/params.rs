//! IEEE 802.11 MAC/PHY timing parameters.

use serde::{Deserialize, Serialize};

/// MAC/PHY parameters of an 802.11 DCF link.
///
/// All durations are in **seconds**, sizes in bits, rates in bit/s.
/// Defaults ([`Params::default_paper`]) model a 2.4 GHz DSSS/CCK network at
/// 11 Mb/s — the closest public parameter set to the testbed's 802.11n AP
/// constrained by the Niryo's Raspberry Pi 3 radio; the FoReCo paper defers
/// its exact values to "[7, Table 2]", which it does not reprint, so the
/// set below is documented in DESIGN.md §5 and overridable field by field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Idle backoff slot duration σ.
    pub slot: f64,
    /// Short inter-frame space.
    pub sifs: f64,
    /// DCF inter-frame space.
    pub difs: f64,
    /// Minimum contention window `W₀` (number of slots).
    pub cw_min: u32,
    /// Number of window-doubling stages `m'` (CWmax = 2^m'·W₀).
    pub backoff_stages: u32,
    /// Maximum number of *re*-transmissions. The paper allows "up to 6
    /// re-transmissions" (Fig. 4), i.e. 7 attempts in total; a frame that
    /// fails all of them is lost with probability `a_{m+2} = p^{m+2}`.
    pub max_retx: u32,
    /// PHY preamble + header duration (sent at a fixed rate).
    pub phy_header: f64,
    /// MAC header + FCS size in bits.
    pub mac_header_bits: u32,
    /// Payload size in bits (a FoReCo joint-state command ≈ 100 bytes of
    /// ROS serialisation).
    pub payload_bits: u32,
    /// ACK frame size in bits.
    pub ack_bits: u32,
    /// Data rate for MAC payloads.
    pub data_rate: f64,
    /// Basic rate used by ACKs.
    pub basic_rate: f64,
}

impl Params {
    /// The parameter set used throughout the reproduction (DESIGN.md §5).
    pub fn default_paper() -> Self {
        Self {
            slot: 20e-6,
            sifs: 10e-6,
            difs: 50e-6,
            cw_min: 32,
            backoff_stages: 5,
            max_retx: 6,
            phy_header: 96e-6, // short DSSS preamble + PLCP header
            mac_header_bits: 34 * 8,
            payload_bits: 100 * 8,
            ack_bits: 14 * 8,
            data_rate: 11e6,
            basic_rate: 2e6,
        }
    }

    /// Contention window of backoff stage `j`: `min(2^j·W₀, 2^m'·W₀)`.
    pub fn cw(&self, stage: u32) -> u32 {
        let capped = stage.min(self.backoff_stages);
        self.cw_min.saturating_mul(1 << capped)
    }

    /// Duration of the data frame on air (PHY header + MAC+payload bits).
    pub fn t_data(&self) -> f64 {
        self.phy_header + (self.mac_header_bits + self.payload_bits) as f64 / self.data_rate
    }

    /// Duration of the ACK on air.
    pub fn t_ack(&self) -> f64 {
        self.phy_header + self.ack_bits as f64 / self.basic_rate
    }

    /// Channel occupancy of a **successful** exchange:
    /// `Ts = DIFS + T_data + SIFS + T_ack`.
    pub fn t_success(&self) -> f64 {
        self.difs + self.t_data() + self.sifs + self.t_ack()
    }

    /// Channel occupancy of a **failed** attempt (collision or
    /// interference hit): the full data frame plus the ACK-timeout wait,
    /// `Tc = DIFS + T_data + SIFS + T_ack` — the sender cannot know the
    /// frame died and waits out the whole exchange window (EIFS-style).
    pub fn t_collision(&self) -> f64 {
        self.t_success()
    }

    /// Number of whole backoff slots a data transmission spans (used by
    /// interference-overlap computations).
    pub fn tx_slots(&self) -> u32 {
        (self.t_data() / self.slot).ceil() as u32
    }

    /// Validates internal consistency; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.slot > 0.0 && self.sifs > 0.0 && self.difs > 0.0) {
            return Err("slot/SIFS/DIFS must be positive".into());
        }
        if self.cw_min < 2 {
            return Err("CWmin must be at least 2".into());
        }
        if self.data_rate <= 0.0 || self.basic_rate <= 0.0 {
            return Err("rates must be positive".into());
        }
        if self.payload_bits == 0 {
            return Err("payload must be non-empty".into());
        }
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::default_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(Params::default_paper().validate(), Ok(()));
    }

    #[test]
    fn contention_window_doubles_then_caps() {
        let p = Params::default_paper();
        assert_eq!(p.cw(0), 32);
        assert_eq!(p.cw(1), 64);
        assert_eq!(p.cw(5), 1024);
        assert_eq!(p.cw(6), 1024); // capped at 2^5·32
        assert_eq!(p.cw(12), 1024);
    }

    #[test]
    fn frame_durations_hand_checked() {
        let p = Params::default_paper();
        // T_data = 96 µs + 134·8 / 11e6 ≈ 96 + 97.45 µs.
        let expected_data = 96e-6 + 1072.0 / 11e6;
        assert!((p.t_data() - expected_data).abs() < 1e-12);
        // T_ack = 96 µs + 112 / 2e6 = 152 µs.
        assert!((p.t_ack() - 152e-6).abs() < 1e-12);
        // Ts ≈ 50 + 193.45 + 10 + 152 ≈ 405 µs: sane sub-millisecond value.
        assert!(p.t_success() > 300e-6 && p.t_success() < 600e-6);
    }

    #[test]
    fn tx_spans_multiple_slots() {
        let p = Params::default_paper();
        assert!(p.tx_slots() >= 5, "data frame should span several slots");
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut p = Params::default_paper();
        p.cw_min = 1;
        assert!(p.validate().is_err());
        let mut p = Params::default_paper();
        p.slot = 0.0;
        assert!(p.validate().is_err());
        let mut p = Params::default_paper();
        p.payload_bits = 0;
        assert!(p.validate().is_err());
    }
}
