//! Bianchi-style analytical model of 802.11 DCF with a retry limit and a
//! non-802.11 interference source.
//!
//! This reproduces the role of the paper's \[7\] (Bosch et al. 2020): given
//! the number of contending stations, the MAC parameters and the
//! interferer, derive
//!
//! - `p` — probability an *attempt* fails (collision with another station
//!   or an interference burst igniting mid-frame; stations carrier-sense,
//!   so they never start transmitting into an ongoing burst),
//! - `τ` — per-slot transmission probability, from the renewal fixed point
//!   `τ(p) = Σ_{j≤M} p^j / Σ_{j≤M} p^j (W_j+1)/2`
//!   (Bianchi via the Kumar renewal-reward simplification, retry-limited),
//! - `a_j = p^j (1−p)` — probability a frame is delivered after exactly
//!   `j` retransmissions, and the loss probability `a_{M+1} = p^{M+1}`
//!   (the paper's `a_{m+2}`, Lemma 1),
//! - `E_j[ΔW] = Ts + j·Tc + σ̃ Σ_{k≤j} (W_k−1)/2` — expected wireless
//!   delay after `j` retransmissions (paper eq. 20),
//! - `σ̃` — the mean backoff-slot duration seen by a tagged station,
//!   accounting for other stations' transmissions and interferer bursts
//!   freezing the counter.
//!
//! Unsaturated refinement: the paper's robots offer one 100-byte command
//! every `Ω = 20 ms`, far from saturation, so using the saturated station
//! count directly would overstate contention. We iterate an *effective*
//! contender count `n_eff = 1 + (n−1)·ρ` where `ρ = min(1, E[occupancy]/Ω)`
//! is each station's channel utilisation — under heavy interference
//! service times balloon, `ρ → 1` and the model converges back to the
//! saturated regime, which is exactly the feedback that makes Fig. 8's
//! worst cells catastrophic.

use crate::{Interference, Params};
use serde::{Deserialize, Serialize};

/// Model inputs.
///
/// # Example
///
/// ```
/// use foreco_wifi::{DcfModel, Interference, Params};
///
/// let sol = DcfModel {
///     params: Params::default_paper(),
///     stations: 15,
///     interference: Interference::new(0.025, 50),
///     offered_interval: Some(0.020),
/// }
/// .solve();
/// // Probability mass: delivery phases + RTX loss sum to 1.
/// let total: f64 = sol.attempt_probs.iter().sum::<f64>() + sol.loss_probability;
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DcfModel {
    /// MAC/PHY parameters.
    pub params: Params,
    /// Number of stations sharing the medium (the paper's 5/15/25 robots).
    pub stations: usize,
    /// Interference source.
    pub interference: Interference,
    /// Mean interval between frames offered by each station (`Ω`);
    /// `None` = saturated stations (always backlogged).
    pub offered_interval: Option<f64>,
}

/// Model outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DcfSolution {
    /// Per-slot transmission probability of a backlogged station.
    pub tau: f64,
    /// Attempt failure probability.
    pub p: f64,
    /// `a_j` for `j = 0..=max_retx`: unconditional probability of delivery
    /// after exactly `j` retransmissions.
    pub attempt_probs: Vec<f64>,
    /// `p^{M+1}`: probability the frame exceeds the RTX limit and is lost.
    pub loss_probability: f64,
    /// `E_j[ΔW]` in seconds for `j = 0..=max_retx`.
    pub stage_delays: Vec<f64>,
    /// Channel time consumed by a frame that dies at the RTX limit.
    pub loss_occupancy: f64,
    /// Mean backoff-slot duration `σ̃` (seconds).
    pub mean_slot: f64,
    /// `E[ΔW | delivered]` (seconds).
    pub mean_delay_delivered: f64,
    /// Mean channel occupancy per offered frame (delivered or lost).
    pub mean_occupancy: f64,
    /// Effective contender count after the unsaturated refinement.
    pub effective_contenders: f64,
}

impl DcfModel {
    /// Solves the model.
    ///
    /// # Panics
    /// Panics on invalid [`Params`] or `stations == 0`.
    pub fn solve(&self) -> DcfSolution {
        self.params.validate().expect("invalid 802.11 parameters");
        assert!(self.stations >= 1, "need at least one station");

        let n = self.stations as f64;
        let mut n_eff = 1.0_f64;
        let mut sol = self.solve_inner(n_eff);
        for _ in 0..32 {
            let rho = match self.offered_interval {
                None => 1.0, // saturated
                Some(omega) => (sol.mean_occupancy / omega).min(1.0),
            };
            let next = 1.0 + (n - 1.0) * rho;
            if (next - n_eff).abs() < 1e-9 {
                break;
            }
            // Damped update keeps the outer loop stable near ρ = 1.
            n_eff = 0.5 * n_eff + 0.5 * next;
            sol = self.solve_inner(n_eff);
        }
        sol
    }

    /// Inner Bianchi fixed point for a given (possibly fractional)
    /// contender count.
    fn solve_inner(&self, n_eff: f64) -> DcfSolution {
        let pr = &self.params;
        let m_retx = pr.max_retx; // M: retransmissions; attempts = M+1
        let p_hit = self.interference.mid_frame_hit_probability(pr.tx_slots());

        // τ(p): renewal-reward over the retry chain.
        let tau_of_p = |p: f64| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            let mut pj = 1.0;
            for j in 0..=m_retx {
                let w = pr.cw(j) as f64;
                num += pj;
                den += pj * (w + 1.0) / 2.0;
                pj *= p;
            }
            num / den
        };
        // p(τ): another station transmits in the same slot, or the frame
        // overlaps an interference burst.
        let p_of_tau = |tau: f64| -> f64 {
            let others = (n_eff - 1.0).max(0.0);
            1.0 - (1.0 - tau).powf(others) * (1.0 - p_hit)
        };

        // Damped fixed-point iteration (the map is monotone and bounded;
        // damping guarantees convergence in practice).
        let mut tau = 0.1;
        for _ in 0..500 {
            let next = 0.5 * tau + 0.5 * tau_of_p(p_of_tau(tau));
            if (next - tau).abs() < 1e-13 {
                tau = next;
                break;
            }
            tau = next;
        }
        let p = p_of_tau(tau);

        // Mean slot σ̃ seen by the tagged station while counting down.
        let sigma = pr.slot;
        let t_if = self.interference.duration_slots as f64;
        let p_if = self.interference.prob;
        let others = (n_eff - 1.0).max(0.0);
        let p_idle_others = (1.0 - tau).powf(others);
        let p_s_others = if others > 0.0 {
            (others * tau * (1.0 - tau).powf(others - 1.0) * (1.0 - p_hit)).min(1.0 - p_idle_others)
        } else {
            0.0
        };
        let p_c_others = (1.0 - p_idle_others - p_s_others).max(0.0);
        // An idle slot stretches by a whole burst when the interferer
        // fires (counter frozen for T_if slots).
        let sigma_idle = sigma * (1.0 + p_if * t_if);
        let mean_slot = p_idle_others * sigma_idle
            + p_s_others * pr.t_success()
            + p_c_others * pr.t_collision();

        // Stage delays, paper eq. (20): E_j = Ts + j·Tc + σ̃ Σ_{k≤j}(W_k−1)/2.
        let mut stage_delays = Vec::with_capacity(m_retx as usize + 1);
        let mut backoff_sum = 0.0;
        for j in 0..=m_retx {
            backoff_sum += (pr.cw(j) as f64 - 1.0) / 2.0;
            stage_delays
                .push(pr.t_success() + j as f64 * pr.t_collision() + mean_slot * backoff_sum);
        }
        // A frame that dies at the limit burned M+1 failed attempts and all
        // the backoff stages.
        let loss_occupancy = (m_retx as f64 + 1.0) * pr.t_collision() + mean_slot * backoff_sum;

        // a_j = p^j (1−p); loss = p^{M+1}.
        let mut attempt_probs = Vec::with_capacity(m_retx as usize + 1);
        let mut pj = 1.0;
        for _ in 0..=m_retx {
            attempt_probs.push(pj * (1.0 - p));
            pj *= p;
        }
        let loss_probability = pj;

        let delivered_mass: f64 = attempt_probs.iter().sum();
        let mean_delay_delivered = if delivered_mass > 0.0 {
            attempt_probs
                .iter()
                .zip(&stage_delays)
                .map(|(a, e)| a * e)
                .sum::<f64>()
                / delivered_mass
        } else {
            f64::INFINITY
        };
        let mean_occupancy = attempt_probs
            .iter()
            .zip(&stage_delays)
            .map(|(a, e)| a * e)
            .sum::<f64>()
            + loss_probability * loss_occupancy;

        DcfSolution {
            tau,
            p,
            attempt_probs,
            loss_probability,
            stage_delays,
            loss_occupancy,
            mean_slot,
            mean_delay_delivered,
            mean_occupancy,
            effective_contenders: n_eff,
        }
    }
}

impl DcfSolution {
    /// `a_j` conditioned on delivery (the hyperexponential phase weights).
    pub fn delivery_weights(&self) -> Vec<f64> {
        let mass: f64 = self.attempt_probs.iter().sum();
        self.attempt_probs.iter().map(|a| a / mass).collect()
    }
}

impl DcfModel {
    /// Normalised saturation throughput `S ∈ [0, 1]` — Bianchi's classic
    /// metric: the fraction of channel time carrying successful payload
    /// bits, `S = Ps·E[payload] / E[slot]`, evaluated at the model's
    /// fixed point. Used as a sanity anchor against Bianchi's published
    /// curves (S ≈ 0.8 for few stations at these frame sizes, slowly
    /// degrading with contention).
    pub fn saturation_throughput(&self) -> f64 {
        let sol = DcfModel {
            offered_interval: None,
            ..*self
        }
        .solve();
        let pr = &self.params;
        let n = self.stations as f64;
        let tau = sol.tau;
        let p_hit = self.interference.mid_frame_hit_probability(pr.tx_slots());
        let p_idle = (1.0 - tau).powf(n);
        let p_succ = (n * tau * (1.0 - tau).powf(n - 1.0) * (1.0 - p_hit)).min(1.0 - p_idle);
        let p_fail = (1.0 - p_idle - p_succ).max(0.0);
        let t_if = self.interference.duration_slots as f64;
        let sigma_idle = pr.slot * (1.0 + self.interference.prob * t_if);
        let payload_time = pr.payload_bits as f64 / pr.data_rate;
        let mean_slot = p_idle * sigma_idle + p_succ * pr.t_success() + p_fail * pr.t_collision();
        p_succ * payload_time / mean_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(stations: usize, p_if: f64, t_if: u32) -> DcfModel {
        DcfModel {
            params: Params::default_paper(),
            stations,
            interference: if p_if > 0.0 {
                Interference::new(p_if, t_if)
            } else {
                Interference::none()
            },
            offered_interval: Some(0.020),
        }
    }

    /// Single station, clean channel: no failures, closed-form τ.
    #[test]
    fn single_station_clean_channel() {
        let s = model(1, 0.0, 0).solve();
        assert!(s.p.abs() < 1e-9, "p = {}", s.p);
        // τ = 1 / ((W₀+1)/2) = 2/33.
        assert!((s.tau - 2.0 / 33.0).abs() < 1e-6, "tau = {}", s.tau);
        assert!(s.loss_probability < 1e-12);
        // E₀ = Ts + σ (W₀−1)/2 = Ts + 15.5 σ.
        let pr = Params::default_paper();
        let e0 = pr.t_success() + pr.slot * 15.5;
        assert!((s.stage_delays[0] - e0).abs() < 1e-9);
        // First attempt succeeds with probability 1.
        assert!((s.attempt_probs[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attempt_probs_and_loss_sum_to_one() {
        for (n, p_if, t_if) in [(5, 0.01, 10), (15, 0.025, 50), (25, 0.05, 100)] {
            let s = model(n, p_if, t_if).solve();
            let total: f64 = s.attempt_probs.iter().sum::<f64>() + s.loss_probability;
            assert!((total - 1.0).abs() < 1e-12, "n={n}: total {total}");
        }
    }

    #[test]
    fn stage_delays_strictly_increase() {
        let s = model(15, 0.025, 50).solve();
        for w in s.stage_delays.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(s.loss_occupancy > 0.0);
    }

    #[test]
    fn failure_probability_monotone_in_stations() {
        let p5 = model(5, 0.01, 10).solve().p;
        let p15 = model(15, 0.01, 10).solve().p;
        let p25 = model(25, 0.01, 10).solve().p;
        assert!(p5 < p15 && p15 < p25, "p: {p5} {p15} {p25}");
    }

    #[test]
    fn loss_monotone_in_interference_knobs() {
        let base = model(15, 0.01, 10).solve().loss_probability;
        let more_prob = model(15, 0.05, 10).solve().loss_probability;
        let longer = model(15, 0.01, 100).solve().loss_probability;
        assert!(more_prob > base, "{more_prob} vs {base}");
        assert!(longer > base, "{longer} vs {base}");
    }

    #[test]
    fn clean_channel_is_fast() {
        // Without interference a lightly-loaded 5-robot floor delivers
        // commands in well under Ω = 20 ms.
        let s = model(5, 0.0, 0).solve();
        assert!(s.mean_delay_delivered < 0.002, "{}", s.mean_delay_delivered);
        assert!(s.loss_probability < 1e-6);
    }

    #[test]
    fn worst_cell_saturates() {
        // p_if = 5 %, T_if = 100 slots covers ~83 % of slots: heavy losses
        // and delays beyond Ω — the regime of Fig. 8's dark cells.
        let s = model(25, 0.05, 100).solve();
        assert!(s.loss_probability > 0.005, "loss {}", s.loss_probability);
        assert!(
            s.mean_occupancy > 0.010,
            "occupancy {} should swamp the 20 ms budget",
            s.mean_occupancy
        );
        assert!(s.effective_contenders > 10.0);
    }

    #[test]
    fn saturated_mode_uses_all_stations() {
        let m = DcfModel {
            offered_interval: None,
            ..model(10, 0.0, 0)
        };
        let s = m.solve();
        assert!((s.effective_contenders - 10.0).abs() < 1e-6);
        // Saturated 10-station 802.11: collision probability notably > 0.
        assert!(s.p > 0.1 && s.p < 0.6, "p = {}", s.p);
    }

    #[test]
    fn delivery_weights_normalised() {
        let s = model(15, 0.025, 50).solve();
        let sum: f64 = s.delivery_weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    /// Appendix, Lemma 1 / Corollary 1: with interference the delay is
    /// bounded only in expectation — there is positive probability
    /// `a_{m+2} = p^{m+2}` of an infinite delay (lost command), so
    /// `P(Δ > K) > 0` for every K.
    #[test]
    fn appendix_delay_is_unbounded_with_interference() {
        let s = model(15, 0.025, 50).solve();
        assert!(s.loss_probability > 0.0);
        assert!(s.mean_delay_delivered.is_finite());
    }

    /// Saturation throughput sits in Bianchi's published band and decays
    /// with contention and interference.
    #[test]
    fn saturation_throughput_sane() {
        let s_clean_small = model(5, 0.0, 0).saturation_throughput();
        let s_clean_large = model(30, 0.0, 0).saturation_throughput();
        let s_jammed = model(5, 0.05, 100).saturation_throughput();
        // Payload is only ~100 B of a ~405 µs exchange: the *normalised*
        // ceiling here is payload_time/Ts ≈ 0.18.
        assert!(
            s_clean_small > 0.05 && s_clean_small < 0.2,
            "{s_clean_small}"
        );
        assert!(
            s_clean_large < s_clean_small,
            "throughput must decay with n"
        );
        assert!(
            s_jammed < s_clean_small,
            "interference must cost throughput"
        );
    }

    /// Mean slot grows once the interferer freezes backoff counters.
    #[test]
    fn mean_slot_grows_with_interference() {
        let clean = model(5, 0.0, 0).solve().mean_slot;
        let jammed = model(5, 0.05, 100).solve().mean_slot;
        assert!(jammed > 2.0 * clean, "{jammed} vs {clean}");
    }
}
