//! Slot-level simulator of 802.11 DCF under interference.
//!
//! An independent implementation of the same physics the analytical model
//! approximates: `n` saturated stations running binary exponential backoff
//! with retry limit, freezing on busy slots, plus the on/off interferer of
//! [`Interference`]. The test-suite uses it to validate [`crate::DcfModel`]
//! — two implementations agreeing is the strongest correctness evidence we
//! can get without the (unpublished) reference model.
//!
//! Simplifications (documented, shared with the analytical model):
//! - stations are saturated (always have a head-of-line frame), matching
//!   Bianchi's regime in which the analytical fixed point is exact;
//! - the interferer starts only on idle-channel slot boundaries or during
//!   a data frame (it does not carrier-sense, §VI-D-2);
//! - capture effect, hidden terminals and channel errors other than the
//!   interferer are out of scope — the paper models none of them.

use crate::{Interference, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Slot-level DCF simulator (saturated stations).
#[derive(Debug, Clone)]
pub struct SlotSimulator {
    /// MAC/PHY parameters.
    pub params: Params,
    /// Number of contending stations.
    pub stations: usize,
    /// Interference source.
    pub interference: Interference,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSimulatorReport {
    /// Frames delivered.
    pub delivered: u64,
    /// Frames dropped at the retry limit.
    pub lost: u64,
    /// `histogram[j]` = frames delivered after exactly `j` retransmissions.
    pub retx_histogram: Vec<u64>,
    /// Mean head-of-line (access) delay of delivered frames, seconds.
    pub mean_delay_delivered: f64,
    /// Measured `P(attempt fails)`.
    pub attempt_failure_probability: f64,
    /// Measured loss probability (lost / (delivered + lost)).
    pub loss_probability: f64,
    /// Delivered-frame delays, seconds (for distribution checks).
    pub delays: Vec<f64>,
}

struct Station {
    backoff: u32,
    stage: u32,
    hol_since: f64,
}

impl SlotSimulator {
    /// Runs until `target_frames` frames (delivered + lost) complete,
    /// deterministic in `seed`.
    ///
    /// # Panics
    /// Panics on invalid parameters or `stations == 0`.
    pub fn run(&self, target_frames: u64, seed: u64) -> SlotSimulatorReport {
        self.params.validate().expect("invalid 802.11 parameters");
        assert!(self.stations >= 1, "need at least one station");
        assert!(target_frames > 0, "need at least one frame");

        let mut rng = StdRng::seed_from_u64(seed);
        let pr = &self.params;
        let sample_backoff =
            |rng: &mut StdRng, stage: u32, pr: &Params| rng.gen_range(0..pr.cw(stage));

        let mut stations: Vec<Station> = (0..self.stations)
            .map(|_| Station {
                backoff: sample_backoff(&mut rng, 0, pr),
                stage: 0,
                hol_since: 0.0,
            })
            .collect();

        let mut now = 0.0_f64;
        let mut burst_remaining: u32 = 0;
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut retx_histogram = vec![0u64; pr.max_retx as usize + 1];
        let mut delays = Vec::new();
        let mut attempts = 0u64;
        let mut failed_attempts = 0u64;

        while delivered + lost < target_frames {
            // Interferer may start a burst on an idle boundary.
            if burst_remaining == 0 && rng.gen::<f64>() < self.interference.prob {
                burst_remaining = self.interference.duration_slots;
            }
            if burst_remaining > 0 {
                // Busy channel: counters freeze, time passes.
                now += pr.slot;
                burst_remaining -= 1;
                continue;
            }

            let transmitters: Vec<usize> = stations
                .iter()
                .enumerate()
                .filter(|(_, s)| s.backoff == 0)
                .map(|(i, _)| i)
                .collect();

            if transmitters.is_empty() {
                // Idle slot: everyone decrements.
                for s in &mut stations {
                    s.backoff -= 1;
                }
                now += pr.slot;
                continue;
            }

            // A transmission happens. The interferer can fire mid-frame.
            let mut hit = false;
            let mut started_at_slot = 0u32;
            for k in 0..pr.tx_slots() {
                if rng.gen::<f64>() < self.interference.prob {
                    hit = true;
                    started_at_slot = k;
                    break;
                }
            }
            let success = transmitters.len() == 1 && !hit;
            attempts += transmitters.len() as u64;
            if !success {
                failed_attempts += transmitters.len() as u64;
            }
            let air_time = if success {
                pr.t_success()
            } else {
                pr.t_collision()
            };
            now += air_time;
            if hit {
                // Remainder of the burst outlives the frame.
                let elapsed = pr.tx_slots() - started_at_slot;
                burst_remaining = self.interference.duration_slots.saturating_sub(elapsed);
            }

            for &i in &transmitters {
                let st = &mut stations[i];
                if success {
                    retx_histogram[st.stage as usize] += 1;
                    delays.push(now - st.hol_since);
                    delivered += 1;
                    st.stage = 0;
                } else if st.stage >= pr.max_retx {
                    lost += 1;
                    st.stage = 0;
                } else {
                    st.stage += 1;
                }
                if st.stage == 0 {
                    // New head-of-line frame (saturation: always available).
                    st.hol_since = now;
                }
                st.backoff = sample_backoff(&mut rng, st.stage, pr);
            }
        }

        let mean_delay_delivered = if delays.is_empty() {
            f64::INFINITY
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        SlotSimulatorReport {
            delivered,
            lost,
            retx_histogram,
            mean_delay_delivered,
            attempt_failure_probability: if attempts == 0 {
                0.0
            } else {
                failed_attempts as f64 / attempts as f64
            },
            loss_probability: lost as f64 / (delivered + lost) as f64,
            delays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DcfModel;

    fn sim(stations: usize, p_if: f64, t_if: u32) -> SlotSimulator {
        SlotSimulator {
            params: Params::default_paper(),
            stations,
            interference: if p_if > 0.0 {
                Interference::new(p_if, t_if)
            } else {
                Interference::none()
            },
        }
    }

    #[test]
    fn single_station_clean_never_fails() {
        let r = sim(1, 0.0, 0).run(2000, 1);
        assert_eq!(r.lost, 0);
        assert_eq!(r.attempt_failure_probability, 0.0);
        assert_eq!(r.retx_histogram[0], 2000);
        // Every delay = backoff (≤ 31 slots) + Ts.
        let pr = Params::default_paper();
        for &d in &r.delays {
            assert!(d >= pr.t_success() - 1e-12);
            assert!(d <= pr.t_success() + 31.0 * pr.slot + 1e-9);
        }
    }

    #[test]
    fn single_station_mean_delay_matches_analytical() {
        let r = sim(1, 0.0, 0).run(20_000, 2);
        let a = DcfModel {
            params: Params::default_paper(),
            stations: 1,
            interference: Interference::none(),
            offered_interval: None,
        }
        .solve();
        let rel = (r.mean_delay_delivered - a.mean_delay_delivered).abs() / a.mean_delay_delivered;
        assert!(
            rel < 0.05,
            "sim {} vs analytic {}",
            r.mean_delay_delivered,
            a.mean_delay_delivered
        );
    }

    /// Cross-validation on a contended clean channel: attempt-failure
    /// probability within a loose band of the analytical fixed point.
    #[test]
    fn contended_failure_probability_near_analytical() {
        let r = sim(10, 0.0, 0).run(40_000, 3);
        let a = DcfModel {
            params: Params::default_paper(),
            stations: 10,
            interference: Interference::none(),
            offered_interval: None, // saturated, like the simulator
        }
        .solve();
        let rel = (r.attempt_failure_probability - a.p).abs() / a.p;
        assert!(
            rel < 0.25,
            "sim p = {}, analytic p = {}",
            r.attempt_failure_probability,
            a.p
        );
    }

    /// Retransmission histogram decays geometrically like a_j ∝ p^j.
    #[test]
    fn retx_histogram_matches_geometric_shape() {
        let r = sim(10, 0.0, 0).run(60_000, 4);
        let a = DcfModel {
            params: Params::default_paper(),
            stations: 10,
            interference: Interference::none(),
            offered_interval: None,
        }
        .solve();
        let total: u64 = r.retx_histogram.iter().sum();
        for j in 0..3 {
            let measured = r.retx_histogram[j] as f64 / total as f64;
            let expected = a.attempt_probs[j] / a.attempt_probs.iter().sum::<f64>();
            assert!(
                (measured - expected).abs() < 0.08,
                "j={j}: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn interference_causes_losses_and_delay() {
        let clean = sim(5, 0.0, 0).run(10_000, 5);
        let jammed = sim(5, 0.05, 100).run(10_000, 5);
        assert_eq!(clean.lost, 0);
        assert!(jammed.lost > 0, "expected RTX-limit losses under jamming");
        assert!(jammed.mean_delay_delivered > 2.0 * clean.mean_delay_delivered);
    }

    #[test]
    fn loss_probability_tracks_analytical_order_of_magnitude() {
        let r = sim(5, 0.05, 100).run(30_000, 6);
        let a = DcfModel {
            params: Params::default_paper(),
            stations: 5,
            interference: Interference::new(0.05, 100),
            offered_interval: None,
        }
        .solve();
        // Same order of magnitude is the realistic bar for a Bianchi-style
        // approximation under heavy interference.
        let ratio = r.loss_probability / a.loss_probability;
        assert!(
            (0.2..5.0).contains(&ratio),
            "sim loss {}, analytic loss {}",
            r.loss_probability,
            a.loss_probability
        );
    }

    #[test]
    fn determinism() {
        let a = sim(5, 0.02, 20).run(5_000, 42);
        let b = sim(5, 0.02, 20).run(5_000, 42);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.delays, b.delays);
    }

    /// Appendix Corollary 2: the causality assumption
    /// |Δ(c_{i+1}) − Δ(c_i)| ≤ |g(c_{i+1}) − g(c_i)| is violated in
    /// 802.11 — consecutive head-of-line frames show delay jumps larger
    /// than their generation gap.
    #[test]
    fn appendix_causality_assumption_violated() {
        let r = sim(10, 0.025, 50).run(20_000, 7);
        // Under saturation consecutive frames are generated back-to-back
        // (g gap = previous delay); a violation exists whenever the delay
        // increases from one frame to the next by more than that gap —
        // check the weaker, sufficient observable: delay jumps exceeding
        // the *median* inter-delivery gap.
        let mut violations = 0;
        for w in r.delays.windows(2) {
            if (w[1] - w[0]).abs() > w[0] {
                violations += 1;
            }
        }
        assert!(violations > 0, "no causality violations observed");
    }
}
