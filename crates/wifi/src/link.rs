//! The wireless command pipe: a G/HEXP/1/Q queue in front of the DCF
//! service process (§V of the paper).
//!
//! Commands arrive deterministically every `Ω` seconds at the access-point
//! queue (capacity `Q`). The server is the 802.11 link: service time is
//! hyperexponential over the retransmission phases — phase `j` has weight
//! `a_j` and mean `E_j[ΔW]` from the analytical model — plus a *loss
//! phase* with weight `a_{m+2} = p^{m+2}` during which the frame occupies
//! the channel for its full doomed retry run and is then discarded.
//!
//! The queue is simulated directly (single server, FIFO, deterministic
//! arrivals) rather than through [`foreco_des::Network`] because each
//! command's *phase* decides its fate (delivered vs RTX-lost), which a
//! generic network node does not expose; the `foreco-des` engine is used
//! to cross-validate the delays in this module's tests.

use crate::{DcfModel, DcfSolution, Interference, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a wireless command link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Command period `Ω` in seconds (paper: 20 ms).
    pub period: f64,
    /// Access-point queue capacity `Q` (frames in system). Control
    /// traffic wants this *small*: a queued command is stale by the time
    /// it transmits, so deep buffers convert delay into consecutive
    /// deadline misses (bufferbloat). Default 2.
    pub queue_capacity: usize,
    /// MAC/PHY parameters.
    pub params: Params,
    /// Robots sharing the medium.
    pub stations: usize,
    /// Interference source.
    pub interference: Interference,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            period: 0.020,
            queue_capacity: 2,
            params: Params::default_paper(),
            stations: 5,
            interference: Interference::none(),
        }
    }
}

/// What happened to one command on the wireless path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommandFate {
    /// Delivered after `delay` seconds (queueing + service).
    Delivered {
        /// End-to-end wireless delay `ΔW(c_i)` in seconds.
        delay: f64,
    },
    /// Dropped after exceeding the 802.11 retry limit.
    LostRtx,
    /// Dropped on arrival because the AP queue was full.
    LostQueue,
}

impl CommandFate {
    /// Delay if delivered.
    pub fn delay(&self) -> Option<f64> {
        match self {
            CommandFate::Delivered { delay } => Some(*delay),
            _ => None,
        }
    }

    /// True for either loss kind.
    pub fn is_lost(&self) -> bool {
        !matches!(self, CommandFate::Delivered { .. })
    }
}

/// Per-command wireless delay generator.
///
/// # Example
///
/// ```
/// use foreco_wifi::{Interference, LinkConfig, WirelessLink};
///
/// let cfg = LinkConfig {
///     stations: 15,
///     interference: Interference::new(0.025, 50),
///     ..LinkConfig::default()
/// };
/// let mut link = WirelessLink::new(cfg, 42);
/// let fates = link.simulate(100);
/// assert_eq!(fates.len(), 100);
/// // The analytical solution backing the samples is inspectable.
/// assert!(link.solution().p > 0.0);
/// ```
pub struct WirelessLink {
    cfg: LinkConfig,
    solution: DcfSolution,
    rng: StdRng,
}

impl WirelessLink {
    /// Solves the DCF model for `cfg` and prepares a seeded generator.
    ///
    /// # Panics
    /// Panics on invalid configuration (non-positive period, zero queue).
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        assert!(cfg.period > 0.0, "period must be positive");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be ≥ 1");
        let solution = DcfModel {
            params: cfg.params,
            stations: cfg.stations,
            interference: cfg.interference,
            offered_interval: Some(cfg.period),
        }
        .solve();
        Self {
            cfg,
            solution,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying analytical solution.
    pub fn solution(&self) -> &DcfSolution {
        &self.solution
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Raw generator state for checkpointing a mid-stream link: together
    /// with the configuration (from which the DCF solution is
    /// re-derived) it fully determines every future sample.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores generator state exported by [`WirelessLink::rng_state`].
    pub fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Simulates the fate of `n` consecutive commands sent every `Ω`.
    pub fn simulate(&mut self, n: usize) -> Vec<CommandFate> {
        let omega = self.cfg.period;
        let q = self.cfg.queue_capacity;
        let mut fates = Vec::with_capacity(n);
        // Finish times of commands still in the system (FIFO order).
        let mut in_system: VecDeque<f64> = VecDeque::new();
        let mut server_free_at = 0.0_f64;

        for i in 0..n {
            let arrival = i as f64 * omega;
            while let Some(&front) = in_system.front() {
                if front <= arrival {
                    in_system.pop_front();
                } else {
                    break;
                }
            }
            if in_system.len() >= q {
                fates.push(CommandFate::LostQueue);
                continue;
            }
            let start = server_free_at.max(arrival);
            let (duration, lost_rtx) = self.sample_service();
            let finish = start + duration;
            server_free_at = finish;
            in_system.push_back(finish);
            if lost_rtx {
                fates.push(CommandFate::LostRtx);
            } else {
                fates.push(CommandFate::Delivered {
                    delay: finish - arrival,
                });
            }
        }
        fates
    }

    /// Draws one hyperexponential service time and whether the frame died
    /// at the retry limit.
    fn sample_service(&mut self) -> (f64, bool) {
        let sol = &self.solution;
        let mut u: f64 = self.rng.gen();
        for (a, e) in sol.attempt_probs.iter().zip(&sol.stage_delays) {
            if u < *a {
                return (self.sample_exp(*e), false);
            }
            u -= a;
        }
        // Loss phase: frame burns its full retry run, then dies.
        (self.sample_exp(sol.loss_occupancy), true)
    }

    fn sample_exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen();
        -mean * (1.0 - u).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_des::dist::{HyperExponential, Sampler};
    use foreco_des::{Network, NodeSpec, SourceSpec};

    fn cfg(stations: usize, p_if: f64, t_if: u32) -> LinkConfig {
        LinkConfig {
            stations,
            interference: if p_if > 0.0 {
                Interference::new(p_if, t_if)
            } else {
                Interference::none()
            },
            ..LinkConfig::default()
        }
    }

    #[test]
    fn clean_channel_delivers_everything_fast() {
        let mut link = WirelessLink::new(cfg(5, 0.0, 0), 1);
        let fates = link.simulate(5_000);
        assert!(fates.iter().all(|f| !f.is_lost()));
        let delays: Vec<f64> = fates.iter().filter_map(|f| f.delay()).collect();
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!(mean < 0.005, "mean delay {mean} should be well under Ω");
    }

    #[test]
    fn heavy_interference_loses_and_delays() {
        let mut link = WirelessLink::new(cfg(25, 0.05, 100), 2);
        let fates = link.simulate(5_000);
        let lost = fates.iter().filter(|f| f.is_lost()).count();
        assert!(lost > 100, "expected heavy losses, got {lost}");
        let over_omega = fates
            .iter()
            .filter_map(|f| f.delay())
            .filter(|&d| d > 0.020)
            .count();
        assert!(over_omega > 0, "expected delays beyond Ω");
    }

    #[test]
    fn losses_monotone_in_interference() {
        let count_lost = |p_if: f64, t_if: u32, seed: u64| -> usize {
            let mut link = WirelessLink::new(cfg(15, p_if, t_if), seed);
            link.simulate(4_000).iter().filter(|f| f.is_lost()).count()
        };
        let mild = count_lost(0.01, 10, 3);
        let heavy = count_lost(0.05, 100, 3);
        assert!(heavy > mild, "heavy {heavy} vs mild {mild}");
    }

    #[test]
    fn queue_capacity_enforced() {
        // Tiny queue + overload ⇒ LostQueue events appear.
        let mut c = cfg(25, 0.05, 100);
        c.queue_capacity = 1;
        let mut link = WirelessLink::new(c, 4);
        let fates = link.simulate(4_000);
        let queue_lost = fates
            .iter()
            .filter(|f| matches!(f, CommandFate::LostQueue))
            .count();
        assert!(queue_lost > 0, "expected queue overflow drops");
    }

    #[test]
    fn determinism_under_seed() {
        let a = WirelessLink::new(cfg(15, 0.025, 50), 99).simulate(2_000);
        let b = WirelessLink::new(cfg(15, 0.025, 50), 99).simulate(2_000);
        assert_eq!(a, b);
    }

    /// Cross-validation against the generic DES engine: with no losses and
    /// ample queue, mean sojourn of this direct loop must match a
    /// D/HEXP/1 node in `foreco_des::Network` fed the same phases.
    #[test]
    fn matches_generic_des_engine() {
        let link_cfg = cfg(5, 0.01, 10);
        let mut link = WirelessLink::new(link_cfg, 7);
        let sol = link.solution().clone();
        let fates = link.simulate(50_000);
        let delays: Vec<f64> = fates.iter().filter_map(|f| f.delay()).collect();
        let direct_mean = delays.iter().sum::<f64>() / delays.len() as f64;

        // Same phases in the DES engine (loss phase folded in as service).
        let mut phases: Vec<(f64, f64)> = sol
            .attempt_probs
            .iter()
            .zip(&sol.stage_delays)
            .map(|(a, e)| (*a, 1.0 / *e))
            .collect();
        phases.push((sol.loss_probability, 1.0 / sol.loss_occupancy));
        let mut net = Network::new(7);
        let node = net.add_node(NodeSpec {
            servers: 1,
            capacity: Some(link_cfg.queue_capacity),
            service: HyperExponential::new(&phases).boxed(),
            routing: vec![],
        });
        net.add_source(SourceSpec {
            interarrival: foreco_des::dist::Deterministic::new(link_cfg.period).boxed(),
            target: node,
            first_arrival: 0.0,
        });
        let recs = net.run_until(50_000.0 * link_cfg.period);
        let net_delays: Vec<f64> = recs
            .iter()
            .filter(|r| !r.lost)
            .map(|r| r.sojourn_time())
            .collect();
        let net_mean = net_delays.iter().sum::<f64>() / net_delays.len() as f64;
        let rel = (direct_mean - net_mean).abs() / net_mean;
        assert!(rel < 0.1, "direct {direct_mean} vs network {net_mean}");
    }

    /// Appendix Corollary 2 at the command level: consecutive commands are
    /// generated exactly Ω apart, yet their delay difference exceeds Ω for
    /// some pair — the causality assumption fails on this link.
    #[test]
    fn appendix_causality_violated_at_command_level() {
        let mut link = WirelessLink::new(cfg(25, 0.05, 100), 11);
        let fates = link.simulate(10_000);
        let omega = 0.020;
        let mut violated = false;
        for w in fates.windows(2) {
            if let (Some(d0), Some(d1)) = (w[0].delay(), w[1].delay()) {
                if (d1 - d0).abs() > omega {
                    violated = true;
                    break;
                }
            }
        }
        assert!(violated, "|Δ(c_{{i+1}})−Δ(c_i)| never exceeded Ω");
    }
}
