//! Property-based tests for the 802.11 substrate.

use foreco_wifi::{DcfModel, Interference, LinkConfig, Params, WirelessLink};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DCF fixed point always lands in a physical regime.
    #[test]
    fn dcf_solution_is_physical(
        stations in 1usize..40,
        p_if in 0.0f64..0.2,
        t_if in 1u32..300,
    ) {
        let model = DcfModel {
            params: Params::default_paper(),
            stations,
            interference: if p_if > 0.0 {
                Interference::new(p_if, t_if)
            } else {
                Interference::none()
            },
            offered_interval: Some(0.020),
        };
        let s = model.solve();
        prop_assert!(s.tau > 0.0 && s.tau <= 1.0, "tau {}", s.tau);
        prop_assert!((0.0..1.0).contains(&s.p), "p {}", s.p);
        let total: f64 = s.attempt_probs.iter().sum::<f64>() + s.loss_probability;
        prop_assert!((total - 1.0).abs() < 1e-9, "probability mass {total}");
        for w in s.stage_delays.windows(2) {
            prop_assert!(w[1] > w[0], "stage delays must increase");
        }
        prop_assert!(s.mean_slot >= Params::default_paper().slot * 0.999);
        prop_assert!(s.mean_delay_delivered.is_finite());
        prop_assert!(s.effective_contenders >= 1.0 - 1e-9);
        prop_assert!(s.effective_contenders <= stations as f64 + 1e-9);
    }

    /// Interference coverage and hit probability are proper probabilities,
    /// monotone in both knobs.
    #[test]
    fn interference_probabilities_bounded(
        p in 0.001f64..1.0,
        t in 1u32..500,
        tx in 1u32..50,
    ) {
        let i = Interference::new(p, t);
        let cov = i.coverage();
        prop_assert!((0.0..1.0).contains(&cov));
        let hit = i.mid_frame_hit_probability(tx);
        prop_assert!((0.0..=1.0).contains(&hit));
        let both = i.hit_probability(tx);
        prop_assert!(both >= hit - 1e-12, "carrier-blind ≥ mid-frame");
        // Monotonicity in duration for coverage.
        if t < 499 {
            prop_assert!(Interference::new(p, t + 1).coverage() >= cov - 1e-12);
        }
    }

    /// The link produces exactly one fate per command and delays are
    /// positive and finite.
    #[test]
    fn link_fate_invariants(
        stations in 1usize..30,
        p_if in 0.0f64..0.08,
        seed in 0u64..100,
    ) {
        let cfg = LinkConfig {
            stations,
            interference: if p_if > 0.0 {
                Interference::new(p_if, 50)
            } else {
                Interference::none()
            },
            ..LinkConfig::default()
        };
        let mut link = WirelessLink::new(cfg, seed);
        let n = 500;
        let fates = link.simulate(n);
        prop_assert_eq!(fates.len(), n);
        for f in &fates {
            if let Some(d) = f.delay() {
                prop_assert!(d.is_finite() && d > 0.0);
            }
        }
    }

    /// More stations can only increase (or keep) the failure probability.
    #[test]
    fn contention_monotone(extra in 1usize..20) {
        let solve = |n: usize| DcfModel {
            params: Params::default_paper(),
            stations: n,
            interference: Interference::new(0.01, 10),
            offered_interval: None, // saturated: cleanest monotonicity
        }.solve().p;
        prop_assert!(solve(2 + extra) >= solve(2) - 1e-9);
    }
}
