//! Free functions on `&[f64]` slices.
//!
//! The workspace passes joint-space commands around as plain slices; these
//! helpers keep that code free of hand-rolled loops.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two points.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance — the paper's training distance
/// `d(c, ĉ) = Σ_k (c^k − ĉ^k)²` (used in eqs. 9 and 10).
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise linear interpolation `a + t (b − a)`.
///
/// # Panics
/// Panics if lengths differ.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

/// Element-wise sum of two slices.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a − b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a slice into a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(squared_distance(&[1.0, 1.0], &[2.0, 3.0]), 5.0);
    }

    #[test]
    fn axpy_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = [0.0, 10.0];
        let b = [10.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 15.0]);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
