//! Ordinary Least Squares for multi-output regression.
//!
//! This is the estimator behind the paper's VAR training (eq. 9):
//! `w = argmin_w Σ_i Σ_k (c_i^k − f^k({c_j}, w))²`, which separates per
//! output column into independent least-squares problems sharing one
//! design matrix.

use crate::decomp::{cholesky, solve_cholesky, Qr};
use crate::Matrix;

/// Failure modes of the OLS solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlsError {
    /// Fewer rows (samples) than columns (features): the system is
    /// underdetermined.
    Underdetermined {
        /// Number of samples provided.
        rows: usize,
        /// Number of features requested.
        cols: usize,
    },
    /// The design matrix is numerically rank-deficient and no ridge
    /// regularisation was requested.
    RankDeficient,
    /// Input contained NaN or infinite values.
    NonFinite,
}

impl std::fmt::Display for OlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OlsError::Underdetermined { rows, cols } => {
                write!(
                    f,
                    "underdetermined system: {rows} samples for {cols} features"
                )
            }
            OlsError::RankDeficient => write!(f, "design matrix is numerically rank-deficient"),
            OlsError::NonFinite => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for OlsError {}

/// Solves the multi-output least squares problem
/// `B = argmin ‖X B − Y‖_F`.
///
/// `x` is the `n x p` design matrix (n samples, p features), `y` the
/// `n x q` target matrix; the result is `p x q`.
///
/// Strategy: normal equations with Cholesky — an order of magnitude faster
/// than QR for the tall-thin matrices VAR training produces (187k x ~121) —
/// falling back to Householder QR per column when the Gram matrix is not
/// positive definite.
pub fn ols(x: &Matrix, y: &Matrix) -> Result<Matrix, OlsError> {
    ols_ridge(x, y, 0.0)
}

/// [`ols`] with Tikhonov (ridge) regularisation `λ ≥ 0`:
/// `B = (XᵀX + λI)⁻¹ Xᵀ Y`.
///
/// A small positive `λ` makes the solve robust to collinear features (e.g.
/// a stationary robot joint producing a constant — hence collinear with the
/// bias — column).
pub fn ols_ridge(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Matrix, OlsError> {
    let (n, p) = x.shape();
    let (ny, q) = y.shape();
    assert_eq!(n, ny, "ols: X and Y row counts differ ({n} vs {ny})");
    assert!(lambda >= 0.0, "ols: ridge lambda must be non-negative");
    if n < p {
        return Err(OlsError::Underdetermined { rows: n, cols: p });
    }
    if !x.is_finite() || !y.is_finite() {
        return Err(OlsError::NonFinite);
    }

    // Normal equations: (XᵀX + λI) B = Xᵀ Y.
    let mut gram = x.gram();
    if lambda > 0.0 {
        for i in 0..p {
            gram[(i, i)] += lambda;
        }
    }
    let xty = x.transpose().matmul(y);

    if let Some(ch) = cholesky(&gram) {
        let mut beta = Matrix::zeros(p, q);
        let mut rhs = vec![0.0; p];
        for col in 0..q {
            for i in 0..p {
                rhs[i] = xty[(i, col)];
            }
            let sol = solve_cholesky(&ch, &rhs);
            for i in 0..p {
                beta[(i, col)] = sol[i];
            }
        }
        return Ok(beta);
    }

    // Gram matrix not positive definite: fall back to QR on X itself,
    // which tolerates worse conditioning (squares it only implicitly).
    let qr = Qr::new(x).ok_or(OlsError::RankDeficient)?;
    let mut beta = Matrix::zeros(p, q);
    for col in 0..q {
        let ycol = y.col(col);
        let sol = qr.solve_least_squares(&ycol);
        for i in 0..p {
            beta[(i, col)] = sol[i];
        }
    }
    Ok(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_map() {
        // y = X B with B known; noiseless OLS must return B.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[1.0, 2.0, 3.0],
            &[1.0, -1.0, 0.5],
        ]);
        let b_true = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0], &[-0.5, 3.0]]);
        let y = x.matmul(&b_true);
        let b = ols(&x, &y).unwrap();
        assert!((&b - &b_true).max_abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn underdetermined_rejected() {
        let x = Matrix::zeros(2, 5);
        let y = Matrix::zeros(2, 1);
        assert_eq!(
            ols(&x, &y),
            Err(OlsError::Underdetermined { rows: 2, cols: 5 })
        );
    }

    #[test]
    fn nonfinite_rejected() {
        let mut x = Matrix::filled(3, 2, 1.0);
        x[(1, 1)] = f64::NAN;
        let y = Matrix::zeros(3, 1);
        assert_eq!(ols(&x, &y), Err(OlsError::NonFinite));
    }

    #[test]
    fn collinear_without_ridge_fails_with_ridge_succeeds() {
        // Second column is 2x the first: rank 1.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let y = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(ols(&x, &y), Err(OlsError::RankDeficient));
        let b = ols_ridge(&x, &y, 1e-6).unwrap();
        // Ridge solution must still fit the data well.
        let pred = x.matmul(&b);
        assert!((&pred - &y).max_abs() < 1e-3);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]);
        let b0 = ols(&x, &y).unwrap()[(0, 0)];
        let b_big = ols_ridge(&x, &y, 100.0).unwrap()[(0, 0)];
        assert!((b0 - 2.0).abs() < 1e-10);
        assert!(b_big < b0 && b_big > 0.0);
    }

    #[test]
    fn residuals_orthogonal_to_design() {
        let x = Matrix::from_rows(&[&[1.0, 0.3], &[1.0, -1.2], &[1.0, 2.2], &[1.0, 0.9]]);
        let y = Matrix::from_rows(&[&[1.0], &[0.0], &[3.5], &[1.7]]);
        let b = ols(&x, &y).unwrap();
        let resid = &x.matmul(&b) - &y;
        let xtres = x.transpose().matmul(&resid);
        assert!(xtres.max_abs() < 1e-9);
    }
}
