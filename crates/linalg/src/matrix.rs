//! Row-major dense `f64` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// This is intentionally a plain container: shape plus a `Vec<f64>`.
/// All arithmetic panics on shape mismatch (shape errors are programming
/// errors in this workspace, never data-dependent), while numerically
/// fallible operations (decompositions, solves) — [`crate::cholesky`],
/// [`crate::Qr`] — return `Option`/`Result` instead.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: inconsistent row length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix whose rows are produced by `f(row_index)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// Plain triple loop with the `k` loop innermost over contiguous rows,
    /// which is cache-friendly for row-major storage. Shapes of the
    /// workspace's problems (≤ a few hundred columns) do not warrant
    /// blocking or threads.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul: shape mismatch {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for j in 0..rhs.cols {
                    out_row[j] += a * rhs_row[j];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        out
    }

    /// In-place matrix-vector product `out = self * v` — the
    /// allocation-free form hot paths reuse a caller-owned buffer with.
    /// Row `i` of the result is the same `dot(row(i), v)` the allocating
    /// [`Matrix::matvec`] computes, so the two are bit-identical.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec: shape mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output shape mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = crate::vector::dot(self.row(i), v);
        }
    }

    /// `selfᵀ * self`, the Gram matrix, computed without forming the
    /// transpose. The result is symmetric positive semi-definite.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                let g_row = g.row_mut(i);
                for (j, &xj) in row.iter().enumerate().skip(i) {
                    g_row[j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm, `sqrt(Σ x²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Extracts rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: bad range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Stacks `other` below `self`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// True when all elements are finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5, 3.0], &[0.0, 4.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let a = Matrix::from_rows(&[&[0.1, -2.7, 3.3], &[1e-9, 4.0, -0.0]]);
        let v = vec![5.21, -6.04, 0.33];
        let mut out = vec![9.9; 2]; // stale contents must be overwritten
        a.matvec_into(&v, &mut out);
        for (x, y) in out.iter().zip(a.matvec(&v)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gram_equals_xtx() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, -3.0, 2.0], &[2.0, 0.0, 1.0]]);
        let g = x.gram();
        let xtx = x.transpose().matmul(&x);
        assert!((&g - &xtx).max_abs() < 1e-12);
    }

    #[test]
    fn slice_and_vstack_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let top = m.slice_rows(0, 1);
        let bottom = m.slice_rows(1, 3);
        assert_eq!(top.vstack(&bottom), m);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, -2.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 0.0]]));
        assert_eq!(&a - &b, Matrix::from_rows(&[&[-2.0, 4.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
