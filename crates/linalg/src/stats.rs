//! Descriptive statistics shared across the workspace.
//!
//! The paper reports trajectory errors as RMSE in millimetres; the dataset
//! quality-check stage (Table I) scans for outliers and gaps. Both live on
//! the primitives below.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square of a slice of error samples; 0 for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square error between two equal-length series.
///
/// # Panics
/// Panics if lengths differ.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Lag-`k` sample autocorrelation, in `[-1, 1]`.
///
/// Returns 0 when the series is too short or has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let num: f64 = xs[..xs.len() - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    num / denom
}

/// Linear-interpolation percentile, `q` in `[0, 100]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` out of range.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile q out of range: {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Welford running mean/variance accumulator.
///
/// Used by the experiment runner to aggregate the 40 seeded repetitions of
/// each Fig.-8 cell without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples pushed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator); 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
    }

    #[test]
    fn rmse_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn rmse_constant_offset() {
        let a = [0.0, 0.0, 0.0];
        let b = [3.0, 3.0, 3.0];
        assert!((rmse(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[5.0; 10], 1), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_is_negative() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        // Welford uses n−1; batch variance here uses n.
        let expected = variance(&xs) * xs.len() as f64 / (xs.len() - 1) as f64;
        assert!((r.variance() - expected).abs() < 1e-12);
    }
}
