//! Dense linear algebra substrate for the FoReCo reproduction.
//!
//! The FoReCo paper trains its winning forecaster — a Vector Autoregression
//! (VAR) — with Ordinary Least Squares (paper eq. 9). The original prototype
//! leaned on Python's `statsmodels`; this crate provides the minimal,
//! self-contained replacement: a row-major [`Matrix`] type, Cholesky and
//! Householder-QR decompositions, a multi-output [`ols`] solver with ridge
//! fallback, and the descriptive statistics used across the workspace
//! ([`stats`]).
//!
//! Design notes, following the workspace guides:
//! - simplicity over type tricks: one concrete `f64` matrix type, no
//!   generics over scalars, no `unsafe`;
//! - everything is deterministic and allocation patterns are obvious;
//! - numerical routines document their failure modes and return `Result`
//!   instead of panicking on singular input.
//!
//! # Example
//!
//! ```
//! use foreco_linalg::{Matrix, ols};
//!
//! // Fit y = 2x + 1 from four noiseless samples.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[3.0], &[5.0], &[7.0]]);
//! let beta = ols(&x, &y).unwrap();
//! assert!((beta[(0, 0)] - 1.0).abs() < 1e-9);
//! assert!((beta[(1, 0)] - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decomp;
mod matrix;
mod ols;
pub mod stats;
pub mod vector;

pub use decomp::{cholesky, solve_cholesky, solve_lower, solve_upper, Cholesky, Qr};
pub use matrix::Matrix;
pub use ols::{ols, ols_ridge, OlsError};
