//! Matrix decompositions: Cholesky (LLᵀ) and Householder QR.
//!
//! These are the two workhorses behind [`crate::ols`]: OLS normal equations
//! are solved with Cholesky when the Gram matrix is well conditioned, with a
//! QR least-squares fallback otherwise.

use crate::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    /// The lower-triangular factor (entries above the diagonal are zero).
    pub l: Matrix,
}

/// Computes the Cholesky factorisation of a symmetric positive-definite
/// matrix.
///
/// Returns `None` when a non-positive pivot is met, i.e. the matrix is not
/// numerically positive definite (within `1e-12` of singular).
///
/// # Panics
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Option<Cholesky> {
    assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 1e-12 {
            return None;
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in j + 1..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / ljj;
        }
    }
    Some(Cholesky { l })
}

/// Solves `L x = b` for lower-triangular `L` by forward substitution.
///
/// # Panics
/// Panics on shape mismatch or a zero diagonal element.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "solve_lower: shape mismatch");
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut v = b[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            v -= l[(i, j)] * xj;
        }
        assert!(l[(i, i)] != 0.0, "solve_lower: zero pivot at {i}");
        x[i] = v / l[(i, i)];
    }
    x
}

/// Solves `U x = b` for upper-triangular `U` by back substitution.
///
/// # Panics
/// Panics on shape mismatch or a zero diagonal element.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = u.rows();
    assert_eq!(b.len(), n, "solve_upper: shape mismatch");
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut v = b[i];
        for j in i + 1..n {
            v -= u[(i, j)] * x[j];
        }
        assert!(u[(i, i)] != 0.0, "solve_upper: zero pivot at {i}");
        x[i] = v / u[(i, i)];
    }
    x
}

/// Solves `A x = b` given the Cholesky factor of `A` (two triangular solves).
pub fn solve_cholesky(ch: &Cholesky, b: &[f64]) -> Vec<f64> {
    let y = solve_lower(&ch.l, b);
    solve_upper(&ch.l.transpose(), &y)
}

/// Thin Householder QR factorisation of a tall matrix (`rows >= cols`).
///
/// Stores the Householder vectors implicitly and exposes
/// [`Qr::solve_least_squares`], which computes `argmin_x ‖A x − b‖₂`.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Packed factorisation: `R` in the upper triangle, Householder
    /// vectors below the diagonal.
    packed: Matrix,
    /// Scalar `tau` coefficients for each Householder reflector.
    taus: Vec<f64>,
}

impl Qr {
    /// Factorises `a` (must have `rows >= cols`).
    ///
    /// Returns `None` if a column is (numerically) linearly dependent,
    /// which would make the triangular solve singular.
    ///
    /// # Panics
    /// Panics if `a.rows() < a.cols()`.
    #[allow(clippy::needless_range_loop)] // reflector loops touch v and r together
    pub fn new(a: &Matrix) -> Option<Qr> {
        let (m, n) = a.shape();
        assert!(m >= n, "qr: need rows >= cols, got {m}x{n}");
        let mut r = a.clone();
        let mut taus = Vec::with_capacity(n);
        // Reflector scratch, normalised so v[0] = 1 (LAPACK convention).
        let mut v = vec![0.0; m];
        for k in 0..n {
            // Column k below (and including) the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += r[(i, k)] * r[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm < 1e-13 {
                return None; // numerically rank-deficient column
            }
            let xk = r[(k, k)];
            let alpha = if xk >= 0.0 { -norm } else { norm };
            let v0 = xk - alpha;
            if v0.abs() < 1e-300 {
                // Column already has the required shape; identity reflector.
                taus.push(0.0);
                continue;
            }
            for i in k + 1..m {
                v[i] = r[(i, k)] / v0;
            }
            // tau such that H = I − tau ṽ ṽᵀ with ṽ = [1, v_{k+1..}]:
            // tau = 2 / ṽᵀṽ · … reduces to (alpha − xk)/alpha.
            let tau = (alpha - xk) / alpha;
            // Apply H to trailing columns k+1..n.
            for j in k + 1..n {
                let mut w = r[(k, j)];
                for i in k + 1..m {
                    w += v[i] * r[(i, j)];
                }
                w *= tau;
                r[(k, j)] -= w;
                for i in k + 1..m {
                    let vi = v[i];
                    r[(i, j)] -= w * vi;
                }
            }
            // Write R's diagonal and stash the reflector under it.
            r[(k, k)] = alpha;
            for i in k + 1..m {
                r[(i, k)] = v[i];
            }
            taus.push(tau);
        }
        Some(Qr { packed: r, taus })
    }

    /// Least-squares solve: returns `x` minimising `‖A x − b‖₂`.
    ///
    /// # Panics
    /// Panics if `b.len() != rows`.
    #[allow(clippy::needless_range_loop)] // k/i walk y against the packed factor
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.packed.shape();
        assert_eq!(b.len(), m, "qr solve: shape mismatch");
        let mut y = b.to_vec();
        // Apply Qᵀ = H_{n-1} … H_0 to b.
        for k in 0..n {
            let tau = self.taus[k];
            if tau == 0.0 {
                continue;
            }
            // v = [1, packed[k+1.., k]]
            let mut w = y[k];
            for i in k + 1..m {
                w += self.packed[(i, k)] * y[i];
            }
            w *= tau;
            y[k] -= w;
            for i in k + 1..m {
                y[i] -= w * self.packed[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for j in i + 1..n {
                v -= self.packed[(i, j)] * x[j];
            }
            x[i] = v / self.packed[(i, i)];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = B Bᵀ + I is SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let a = &b.matmul(&b.transpose()) + &Matrix::identity(2);
        let ch = cholesky(&a).expect("SPD");
        let rec = ch.l.matmul(&ch.l.transpose());
        assert!((&rec - &a).max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn cholesky_solve_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = cholesky(&a).unwrap();
        let x = solve_cholesky(&ch, &[8.0, 7.0]);
        // Verify A x = b.
        let back = a.matvec(&x);
        assert!(approx(back[0], 8.0, 1e-10) && approx(back[1], 7.0, 1e-10));
    }

    #[test]
    fn triangular_solves() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x = solve_lower(&l, &[4.0, 11.0]);
        assert_eq!(x, vec![2.0, 3.0]);
        let u = l.transpose();
        let y = solve_upper(&u, &[7.0, 9.0]);
        assert!(approx(y[1], 3.0, 1e-12) && approx(y[0], 2.0, 1e-12));
    }

    #[test]
    fn qr_solves_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&[5.0, 10.0]);
        let back = a.matvec(&x);
        assert!(approx(back[0], 5.0, 1e-10) && approx(back[1], 10.0, 1e-10));
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        // Overdetermined: fit y = 1 + 2x over 5 noisy-free points.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[1.0, 2.0],
            &[1.0, 3.0],
            &[1.0, 4.0],
        ]);
        let b = [1.0, 3.0, 5.0, 7.0, 9.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b);
        assert!(approx(x[0], 1.0, 1e-10) && approx(x[1], 2.0, 1e-10));
    }

    #[test]
    fn qr_residual_orthogonal_to_columns() {
        // For LS solutions, Aᵀ(Ax − b) = 0.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[2.0, 0.3], &[1.5, 1.5]]);
        let b = [1.0, -2.0, 0.5, 3.0];
        let x = Qr::new(&a).unwrap().solve_least_squares(&b);
        let ax = a.matvec(&x);
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let atr = a.transpose().matvec(&resid);
        assert!(
            atr.iter().all(|v| v.abs() < 1e-10),
            "residual not orthogonal: {atr:?}"
        );
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(Qr::new(&a).is_none());
    }
}
