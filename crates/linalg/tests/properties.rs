//! Property-based tests for the linear-algebra substrate.

use foreco_linalg::{cholesky, ols, ols_ridge, stats, vector, Matrix, Qr};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(x in matrix(6, 4)) {
        let g = x.gram();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
            prop_assert!(g[(i, i)] >= -1e-12, "Gram diagonal must be non-negative");
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(b in matrix(4, 4)) {
        // b bᵀ + 0.5 I is SPD by construction.
        let mut a = b.matmul(&b.transpose());
        for i in 0..4 { a[(i, i)] += 0.5; }
        let ch = cholesky(&a).expect("SPD by construction");
        let rec = ch.l.matmul(&ch.l.transpose());
        prop_assert!((&rec - &a).max_abs() < 1e-8);
    }

    #[test]
    fn qr_least_squares_residual_orthogonality(
        x in matrix(8, 3),
        y in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        // Skip degenerate (rank-deficient) random draws.
        if let Some(qr) = Qr::new(&x) {
            let sol = qr.solve_least_squares(&y);
            let pred = x.matvec(&sol);
            let resid: Vec<f64> = pred.iter().zip(&y).map(|(p, q)| p - q).collect();
            let xtres = x.transpose().matvec(&resid);
            // Orthogonality scale depends on data magnitude; tolerance is loose.
            prop_assert!(xtres.iter().all(|v| v.abs() < 1e-6), "{:?}", xtres);
        }
    }

    #[test]
    fn ols_recovers_planted_coefficients(
        b_flat in proptest::collection::vec(-3.0f64..3.0, 3 * 2),
        x in matrix(12, 3),
    ) {
        let b_true = Matrix::from_vec(3, 2, b_flat);
        let y = x.matmul(&b_true);
        // Rank-deficient draws are acceptable and skipped.
        if let Ok(b) = ols(&x, &y) {
            let pred = x.matmul(&b);
            // Even if X is ill-conditioned and coefficients are not
            // unique, the fitted values must match (y is in range(X)).
            prop_assert!((&pred - &y).max_abs() < 1e-5);
        }
    }

    #[test]
    fn ridge_never_fails_on_finite_input(x in matrix(6, 3), yv in proptest::collection::vec(-5.0f64..5.0, 6)) {
        let y = Matrix::from_vec(6, 1, yv);
        let b = ols_ridge(&x, &y, 1e-3);
        prop_assert!(b.is_ok());
        prop_assert!(b.unwrap().is_finite());
    }

    #[test]
    fn rmse_is_a_metric_ish(a in proptest::collection::vec(-100.0f64..100.0, 10),
                            b in proptest::collection::vec(-100.0f64..100.0, 10)) {
        let d = stats::rmse(&a, &b);
        prop_assert!(d >= 0.0);
        prop_assert!((stats::rmse(&a, &a)).abs() < 1e-12);
        prop_assert!((d - stats::rmse(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..50),
                           q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::percentile(&xs, lo) <= stats::percentile(&xs, hi) + 1e-12);
    }

    #[test]
    fn running_welford_matches_batch_mean(xs in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        let mut r = stats::Running::new();
        for &x in &xs { r.push(x); }
        prop_assert!((r.mean() - stats::mean(&xs)).abs() < 1e-9);
    }

    #[test]
    fn lerp_stays_in_segment(a in proptest::collection::vec(-5.0f64..5.0, 3),
                             b in proptest::collection::vec(-5.0f64..5.0, 3),
                             t in 0.0f64..1.0) {
        let p = vector::lerp(&a, &b, t);
        for i in 0..3 {
            let lo = a[i].min(b[i]) - 1e-12;
            let hi = a[i].max(b[i]) + 1e-12;
            prop_assert!(p[i] >= lo && p[i] <= hi);
        }
    }

    #[test]
    fn triangle_inequality_euclidean(a in proptest::collection::vec(-5.0f64..5.0, 4),
                                     b in proptest::collection::vec(-5.0f64..5.0, 4),
                                     c in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let ab = vector::euclidean(&a, &b);
        let bc = vector::euclidean(&b, &c);
        let ac = vector::euclidean(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }
}
