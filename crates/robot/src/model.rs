//! Arm descriptions: joint limits plus kinematic chain.

use crate::kinematics::{DhChain, DhLink};
use serde::{Deserialize, Serialize};

/// Position and velocity limits of one revolute joint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointLimit {
    /// Lower position bound (rad).
    pub min: f64,
    /// Upper position bound (rad).
    pub max: f64,
    /// Maximum angular speed (rad/s).
    pub max_velocity: f64,
}

impl JointLimit {
    /// Clamps a position into the joint's range.
    pub fn clamp(&self, q: f64) -> f64 {
        q.clamp(self.min, self.max)
    }
}

/// A complete arm model: joint limits and DH chain, same length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmModel {
    /// Human-readable name.
    pub name: String,
    /// Per-joint limits.
    pub limits: Vec<JointLimit>,
    /// Kinematic chain.
    pub chain: DhChain,
}

impl ArmModel {
    /// Builds a model, checking joint counts agree.
    ///
    /// # Panics
    /// Panics if `limits.len() != chain.dof()` or a limit is inverted.
    pub fn new(name: &str, limits: Vec<JointLimit>, chain: DhChain) -> Self {
        assert_eq!(
            limits.len(),
            chain.dof(),
            "limits/chain joint count mismatch"
        );
        for (i, l) in limits.iter().enumerate() {
            assert!(l.min < l.max, "joint {i}: inverted limits");
            assert!(
                l.max_velocity > 0.0,
                "joint {i}: non-positive velocity limit"
            );
        }
        Self {
            name: name.to_string(),
            limits,
            chain,
        }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.chain.dof()
    }

    /// Clamps a full joint vector into the limits (element-wise).
    ///
    /// # Panics
    /// Panics on joint-count mismatch.
    pub fn clamp(&self, q: &[f64]) -> Vec<f64> {
        assert_eq!(q.len(), self.dof(), "clamp: joint count mismatch");
        let mut out = vec![0.0; q.len()];
        self.clamp_into(q, &mut out);
        out
    }

    /// In-place form of [`ArmModel::clamp`]: writes the clamped vector
    /// into a caller-owned buffer so per-tick paths (the driver loop)
    /// stay allocation-free. Values are bit-identical to `clamp`.
    ///
    /// # Panics
    /// Panics on joint-count mismatch (input or output).
    pub fn clamp_into(&self, q: &[f64], out: &mut [f64]) {
        assert_eq!(q.len(), self.dof(), "clamp: joint count mismatch");
        assert_eq!(out.len(), self.dof(), "clamp: output count mismatch");
        for ((dst, qi), l) in out.iter_mut().zip(q).zip(&self.limits) {
            *dst = l.clamp(*qi);
        }
    }

    /// True when every coordinate lies within its limit.
    pub fn within_limits(&self, q: &[f64]) -> bool {
        q.len() == self.dof()
            && q.iter()
                .zip(&self.limits)
                .all(|(qi, l)| *qi >= l.min && *qi <= l.max)
    }

    /// A neutral "home" pose: mid-range of every joint.
    pub fn home(&self) -> Vec<f64> {
        self.limits.iter().map(|l| 0.5 * (l.min + l.max)).collect()
    }
}

/// The Niryo-One-like 6-axis arm used throughout the reproduction.
///
/// Geometry follows the public Niryo One dimensions (total reach ≈ 0.44 m,
/// base height 0.183 m, arm 0.21 m, forearm 0.2215 m including the elbow
/// offset, wrist + hand ≈ 0.087 m); joint limits and speeds follow the
/// vendor datasheet (±175° base, 90°/s-class axis speeds — the paper cites
/// "0.4 m/s for the steeper axes and 90°/s for the servo axis").
pub fn niryo_one() -> ArmModel {
    use std::f64::consts::{FRAC_PI_2, PI};
    let deg = |d: f64| d * PI / 180.0;
    let limits = vec![
        JointLimit {
            min: deg(-175.0),
            max: deg(175.0),
            max_velocity: deg(90.0),
        },
        JointLimit {
            min: deg(-90.0),
            max: deg(36.7),
            max_velocity: deg(80.0),
        },
        JointLimit {
            min: deg(-80.0),
            max: deg(90.0),
            max_velocity: deg(80.0),
        },
        JointLimit {
            min: deg(-175.0),
            max: deg(175.0),
            max_velocity: deg(110.0),
        },
        JointLimit {
            min: deg(-100.0),
            max: deg(110.0),
            max_velocity: deg(110.0),
        },
        JointLimit {
            min: deg(-147.5),
            max: deg(147.5),
            max_velocity: deg(140.0),
        },
    ];
    let chain = DhChain::new(vec![
        DhLink {
            a: 0.0,
            alpha: FRAC_PI_2,
            d: 0.183,
            theta_offset: 0.0,
        },
        DhLink {
            a: 0.210,
            alpha: 0.0,
            d: 0.0,
            theta_offset: FRAC_PI_2,
        },
        DhLink {
            a: 0.0415,
            alpha: FRAC_PI_2,
            d: 0.0,
            theta_offset: 0.0,
        },
        DhLink {
            a: 0.0,
            alpha: -FRAC_PI_2,
            d: 0.180,
            theta_offset: 0.0,
        },
        DhLink {
            a: 0.0,
            alpha: FRAC_PI_2,
            d: 0.0,
            theta_offset: 0.0,
        },
        DhLink {
            a: 0.0,
            alpha: 0.0,
            d: 0.0873,
            theta_offset: 0.0,
        },
    ]);
    ArmModel::new("niryo-one", limits, chain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn niryo_has_six_joints() {
        let m = niryo_one();
        assert_eq!(m.dof(), 6);
        assert_eq!(m.limits.len(), 6);
    }

    #[test]
    fn niryo_reach_is_physical() {
        let m = niryo_one();
        // Datasheet reach ≈ 0.44 m from the shoulder; with the base column
        // our chain bound is ~0.70 m. Sanity-check the ballpark.
        let reach = m.chain.max_reach();
        assert!(reach > 0.5 && reach < 0.8, "reach bound {reach}");
        // Home pose must be inside the workspace.
        let home = m.home();
        let r = m.chain.distance_from_origin_mm(&home);
        assert!(r > 50.0 && r < 800.0, "home at {r} mm");
    }

    #[test]
    fn clamp_respects_limits() {
        let m = niryo_one();
        let wild = vec![10.0, -10.0, 10.0, -10.0, 10.0, -10.0];
        let clamped = m.clamp(&wild);
        assert!(m.within_limits(&clamped));
        assert!(!m.within_limits(&wild));
    }

    #[test]
    fn home_is_within_limits() {
        let m = niryo_one();
        assert!(m.within_limits(&m.home()));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_limits_rejected() {
        let chain = DhChain::new(vec![DhLink {
            a: 0.1,
            alpha: 0.0,
            d: 0.0,
            theta_offset: 0.0,
        }]);
        ArmModel::new("bad", vec![], chain);
    }

    #[test]
    fn distinct_poses_have_distinct_positions() {
        let m = niryo_one();
        let a = m.chain.forward_mm(&[0.0; 6]);
        let b = m.chain.forward_mm(&[0.5, 0.2, -0.3, 0.0, 0.1, 0.0]);
        let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
        assert!(d > 10.0, "poses too close: {d} mm");
    }
}
