//! Denavit–Hartenberg forward kinematics.
//!
//! Classic (distal) DH convention: the transform of link `i` is
//! `Rot_z(θ_i) · Trans_z(d_i) · Trans_x(a_i) · Rot_x(α_i)` with
//! `θ_i = q_i + θ_offset_i` for revolute joints. Four `f64`s per link and
//! a 3×3-plus-translation transform — no general 4×4 matrix stack needed.

use serde::{Deserialize, Serialize};

/// One revolute DH link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DhLink {
    /// Link length `a` (metres).
    pub a: f64,
    /// Link twist `α` (radians).
    pub alpha: f64,
    /// Link offset `d` (metres).
    pub d: f64,
    /// Constant joint-angle offset added to the joint variable.
    pub theta_offset: f64,
}

/// Rigid transform: rotation matrix (row-major 3×3) plus translation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transform {
    r: [[f64; 3]; 3],
    t: [f64; 3],
}

impl Transform {
    fn identity() -> Self {
        Self {
            r: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
            t: [0.0; 3],
        }
    }

    fn dh(link: &DhLink, q: f64) -> Self {
        let th = q + link.theta_offset;
        let (st, ct) = th.sin_cos();
        let (sa, ca) = link.alpha.sin_cos();
        Self {
            r: [
                [ct, -st * ca, st * sa],
                [st, ct * ca, -ct * sa],
                [0.0, sa, ca],
            ],
            t: [link.a * ct, link.a * st, link.d],
        }
    }

    fn compose(&self, other: &Transform) -> Transform {
        let mut r = [[0.0; 3]; 3];
        let mut t = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                for (k, other_row) in other.r.iter().enumerate() {
                    r[i][j] += self.r[i][k] * other_row[j];
                }
            }
            t[i] = self.t[i]
                + self.r[i][0] * other.t[0]
                + self.r[i][1] * other.t[1]
                + self.r[i][2] * other.t[2];
        }
        Transform { r, t }
    }
}

/// A serial chain of revolute DH links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DhChain {
    links: Vec<DhLink>,
}

impl DhChain {
    /// Builds a chain from links.
    ///
    /// # Panics
    /// Panics on an empty chain.
    pub fn new(links: Vec<DhLink>) -> Self {
        assert!(!links.is_empty(), "DH chain needs at least one link");
        Self { links }
    }

    /// Number of joints.
    pub fn dof(&self) -> usize {
        self.links.len()
    }

    /// The links.
    pub fn links(&self) -> &[DhLink] {
        &self.links
    }

    /// End-effector position (metres) for joint angles `q`.
    ///
    /// # Panics
    /// Panics if `q.len() != dof()`.
    pub fn forward(&self, q: &[f64]) -> [f64; 3] {
        assert_eq!(q.len(), self.links.len(), "fk: joint count mismatch");
        let mut acc = Transform::identity();
        for (link, &qi) in self.links.iter().zip(q) {
            acc = acc.compose(&Transform::dh(link, qi));
        }
        acc.t
    }

    /// End-effector position in **millimetres** — the unit of every figure
    /// in the paper.
    pub fn forward_mm(&self, q: &[f64]) -> [f64; 3] {
        let p = self.forward(q);
        [p[0] * 1000.0, p[1] * 1000.0, p[2] * 1000.0]
    }

    /// Distance from the base origin in millimetres (the paper's
    /// "distance from origin \[mm\]" y-axis of Figs. 6, 9, 10).
    pub fn distance_from_origin_mm(&self, q: &[f64]) -> f64 {
        let p = self.forward_mm(q);
        (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
    }

    /// Theoretical maximum reach: Σ (|a| + |d|) — an upper bound used by
    /// sanity tests.
    pub fn max_reach(&self) -> f64 {
        self.links.iter().map(|l| l.a.abs() + l.d.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A planar 2-link arm (both twists zero) has the textbook FK.
    #[test]
    fn planar_two_link_textbook() {
        let chain = DhChain::new(vec![
            DhLink {
                a: 1.0,
                alpha: 0.0,
                d: 0.0,
                theta_offset: 0.0,
            },
            DhLink {
                a: 0.5,
                alpha: 0.0,
                d: 0.0,
                theta_offset: 0.0,
            },
        ]);
        // Straight out along x.
        let p = chain.forward(&[0.0, 0.0]);
        assert!((p[0] - 1.5).abs() < 1e-12 && p[1].abs() < 1e-12);
        // First joint at 90°: arm along y.
        let p = chain.forward(&[std::f64::consts::FRAC_PI_2, 0.0]);
        assert!(p[0].abs() < 1e-12 && (p[1] - 1.5).abs() < 1e-12);
        // Elbow bent 90°: x = 1, y = 0.5.
        let p = chain.forward(&[0.0, std::f64::consts::FRAC_PI_2]);
        assert!((p[0] - 1.0).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vertical_offset_link() {
        let chain = DhChain::new(vec![DhLink {
            a: 0.0,
            alpha: 0.0,
            d: 0.3,
            theta_offset: 0.0,
        }]);
        let p = chain.forward(&[1.234]); // rotation about z does not move the point
        assert!(p[0].abs() < 1e-12 && p[1].abs() < 1e-12 && (p[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn reach_never_exceeds_bound() {
        let chain = DhChain::new(vec![
            DhLink {
                a: 0.2,
                alpha: 1.0,
                d: 0.1,
                theta_offset: 0.3,
            },
            DhLink {
                a: 0.3,
                alpha: -0.5,
                d: 0.05,
                theta_offset: 0.0,
            },
            DhLink {
                a: 0.1,
                alpha: 0.2,
                d: 0.2,
                theta_offset: -0.7,
            },
        ]);
        let bound = chain.max_reach() + 1e-9;
        for k in 0..100 {
            let q = [k as f64 * 0.37, k as f64 * -0.21, k as f64 * 0.11];
            let p = chain.forward(&q);
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!(r <= bound, "reach {r} exceeds bound {bound}");
        }
    }

    #[test]
    fn fk_is_continuous() {
        let chain = DhChain::new(vec![
            DhLink {
                a: 0.2,
                alpha: 0.5,
                d: 0.1,
                theta_offset: 0.0,
            },
            DhLink {
                a: 0.3,
                alpha: -0.5,
                d: 0.0,
                theta_offset: 0.0,
            },
        ]);
        let q = [0.4, -0.9];
        let p0 = chain.forward(&q);
        let p1 = chain.forward(&[q[0] + 1e-6, q[1]]);
        let dist =
            ((p0[0] - p1[0]).powi(2) + (p0[1] - p1[1]).powi(2) + (p0[2] - p1[2]).powi(2)).sqrt();
        assert!(dist < 1e-5, "FK jump {dist} for 1e-6 joint change");
    }

    #[test]
    fn millimetre_conversion() {
        let chain = DhChain::new(vec![DhLink {
            a: 0.5,
            alpha: 0.0,
            d: 0.0,
            theta_offset: 0.0,
        }]);
        let mm = chain.forward_mm(&[0.0]);
        assert!((mm[0] - 500.0).abs() < 1e-9);
        assert!((chain.distance_from_origin_mm(&[0.0]) - 500.0).abs() < 1e-9);
    }
}
