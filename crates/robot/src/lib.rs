//! Robot-arm substrate for the FoReCo reproduction.
//!
//! The paper's factory floor is a 6-axis **Niryo One** manipulator driven
//! by a ROS stack: commands are absolute joint states arriving every
//! `Ω = 20 ms`; MoveIt's PID controllers track them; when a command is
//! missing the stack **feeds the previous command again** (§III, §VI-A) —
//! which is exactly the "no forecasting" baseline FoReCo beats.
//!
//! This crate rebuilds that plant as a kinematic simulation:
//!
//! - [`ArmModel`] / [`niryo_one`]: joint limits, velocity limits and a
//!   Denavit–Hartenberg chain matching the Niryo One's geometry (0.44 m
//!   reach), so trajectory errors are measured in **millimetres of end-
//!   effector motion** like every figure of the paper;
//! - [`Pid`]: per-joint position PID producing velocity commands with
//!   clamping and anti-windup — the re-stabilisation transient it produces
//!   after a loss burst is the "PID control error" annotated in Fig. 10;
//! - [`RobotDriver`]: the 50 Hz driver loop: accepts a command (or `None`
//!   when the network delivered nothing in time), holds the last command
//!   on a miss, steps the PIDs, enforces limits, and records the
//!   trajectory samples the experiments analyse;
//! - [`ik`]: damped-least-squares inverse kinematics for designing
//!   Cartesian pick/place targets in joint space.
//!
//! The substitution argument (DESIGN.md §3): FoReCo never touches motor
//! dynamics — it interacts with the *driver loop* (command in, joint state
//! out), which this crate reproduces faithfully.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod ik;
mod kinematics;
mod model;
mod pid;

pub use driver::{DriverConfig, DriverState, RobotDriver, Sample};
pub use ik::{solve_position, IkConfig, IkSolution};
pub use kinematics::{DhChain, DhLink};
pub use model::{niryo_one, ArmModel, JointLimit};
pub use pid::{Pid, PidGains, PidState};
