//! The 50 Hz robot driver loop.
//!
//! This is the component FoReCo plugs into (Fig. 3): every `Ω` the driver
//! expects a command; the caller passes `Some(command)` when one arrived
//! in time (a real one or a FoReCo forecast) or `None` on a miss, in which
//! case the driver **holds the previous command** — the Niryo stack's
//! documented behaviour (§VI-A: "Niryo One ROS stack uses the prior
//! command ĉ_{i+1} = c_i in case Δ(c_{i+1}) > Ω").

use crate::model::ArmModel;
use crate::pid::{Pid, PidGains, PidState};
use serde::{Deserialize, Serialize};

/// Driver-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Control period `Ω` in seconds (paper: 20 ms / 50 Hz).
    pub period: f64,
    /// PID gains shared by all joints.
    pub gains: PidGains,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            period: 0.020,
            gains: PidGains::niryo_default(),
        }
    }
}

/// One recorded trajectory sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Time stamp (seconds since driver start).
    pub t: f64,
    /// Joint state after the tick (rad).
    pub joints: Vec<f64>,
    /// End-effector position (mm).
    pub position_mm: [f64; 3],
    /// Distance from base origin (mm) — the paper's plotting unit.
    pub distance_mm: f64,
    /// Whether this tick had a fresh command (false = held the last one).
    pub fresh_command: bool,
}

/// Serialisable mutable state of a [`RobotDriver`]: everything a tick
/// reads or writes except the arm model and gains (configuration,
/// supplied again at restore time). The trajectory trail is *not*
/// captured — snapshots are taken from O(1)-memory service sessions,
/// which run with recording off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriverState {
    /// Joint positions (rad).
    pub joints: Vec<f64>,
    /// Last command fed to the PIDs (held on misses).
    pub last_command: Vec<f64>,
    /// Simulated seconds since driver start.
    pub t: f64,
    /// Per-joint controller state.
    pub pids: Vec<PidState>,
}

/// The simulated robot: joint state + PIDs + trajectory recording.
///
/// # Example
///
/// ```
/// use foreco_robot::{niryo_one, DriverConfig, RobotDriver};
///
/// let model = niryo_one();
/// let home = model.home();
/// let mut driver = RobotDriver::new(model, DriverConfig::default(), &home);
/// let sample = driver.tick(Some(&home)); // one 20 ms control period
/// assert!(sample.fresh_command);
/// assert!(sample.distance_mm > 0.0);
/// ```
pub struct RobotDriver {
    model: ArmModel,
    cfg: DriverConfig,
    joints: Vec<f64>,
    pids: Vec<Pid>,
    last_command: Vec<f64>,
    t: f64,
    trail: Vec<Sample>,
    record: bool,
    scratch: Sample,
}

impl RobotDriver {
    /// Creates a driver with the arm at `initial` joint positions.
    ///
    /// # Panics
    /// Panics if `initial` violates limits or the joint count mismatches.
    pub fn new(model: ArmModel, cfg: DriverConfig, initial: &[f64]) -> Self {
        assert!(cfg.period > 0.0, "driver: period must be positive");
        assert!(
            model.within_limits(initial),
            "driver: initial pose violates joint limits"
        );
        let pids = model
            .limits
            .iter()
            .map(|l| Pid::new(cfg.gains, l.max_velocity))
            .collect();
        let scratch = Sample {
            t: 0.0,
            joints: initial.to_vec(),
            position_mm: model.chain.forward_mm(initial),
            distance_mm: 0.0,
            fresh_command: false,
        };
        Self {
            joints: initial.to_vec(),
            last_command: initial.to_vec(),
            pids,
            model,
            cfg,
            t: 0.0,
            trail: Vec::new(),
            record: true,
            scratch,
        }
    }

    /// Turns trajectory recording on or off (on by default).
    ///
    /// With recording off, [`RobotDriver::tick`] still returns each
    /// sample but nothing accumulates in the trail — the mode the
    /// multi-session service runtime uses to hold thousands of
    /// concurrent arms at O(1) memory each.
    pub fn set_recording(&mut self, record: bool) {
        self.record = record;
    }

    /// The arm model.
    pub fn model(&self) -> &ArmModel {
        &self.model
    }

    /// The driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// Current joint state.
    pub fn joints(&self) -> &[f64] {
        &self.joints
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Last command fed to the PIDs (held on misses).
    pub fn last_command(&self) -> &[f64] {
        &self.last_command
    }

    /// Advances one control period.
    ///
    /// `command` = `Some(target joints)` when a command (real or forecast)
    /// arrived in time, `None` on a miss (the driver repeats the last one).
    /// Returns the recorded sample.
    ///
    /// # Panics
    /// Panics on joint-count mismatch.
    pub fn tick(&mut self, command: Option<&[f64]>) -> &Sample {
        let fresh = command.is_some();
        if let Some(cmd) = command {
            assert_eq!(cmd.len(), self.model.dof(), "tick: joint count mismatch");
            // Commands outside the joint limits are clamped in place, as
            // the real driver would refuse to exceed them.
            self.model.clamp_into(cmd, &mut self.last_command);
        }
        let dt = self.cfg.period;
        for i in 0..self.joints.len() {
            let v = self.pids[i].step(self.last_command[i], self.joints[i], dt);
            let q = self.joints[i] + v * dt;
            self.joints[i] = self.model.limits[i].clamp(q);
        }
        self.t += dt;
        let position_mm = self.model.chain.forward_mm(&self.joints);
        let distance_mm =
            (position_mm[0].powi(2) + position_mm[1].powi(2) + position_mm[2].powi(2)).sqrt();
        if self.record {
            self.trail.push(Sample {
                t: self.t,
                joints: self.joints.clone(),
                position_mm,
                distance_mm,
                fresh_command: fresh,
            });
            self.trail.last().expect("just pushed")
        } else {
            // Service sessions run with recording off at a hard 50 Hz per
            // operator: refresh the reusable scratch sample in place so
            // the tick performs zero heap allocations.
            self.scratch.t = self.t;
            self.scratch.joints.copy_from_slice(&self.joints);
            self.scratch.position_mm = position_mm;
            self.scratch.distance_mm = distance_mm;
            self.scratch.fresh_command = fresh;
            &self.scratch
        }
    }

    /// True when one [`RobotDriver::tick`] fed with `command` would
    /// leave every state bit except the clock (`t`) unchanged — the
    /// driver half of the *idle fixed point* the service scheduler parks
    /// settled sessions at. `None` models a miss (hold the last
    /// command); `Some(cmd)` models a constant incoming command, which
    /// must already clamp to the held one.
    ///
    /// Verified, not assumed: each joint's PID step is replayed without
    /// mutating ([`Pid::peek_step`]) and the joint update is checked to
    /// vanish in f64. Once true, it stays true for identical inputs (the
    /// tick is a deterministic function of the unchanged state), so a
    /// parked session can skip these ticks wholesale and account the
    /// clock with [`RobotDriver::advance_time`].
    pub fn hold_is_identity(&self, command: Option<&[f64]>) -> bool {
        if self.record {
            // A recording driver pushes a trail sample every tick, so a
            // hold is never a state no-op; fast-forwarding would drop
            // samples silently.
            return false;
        }
        if let Some(cmd) = command {
            if cmd.len() != self.model.dof() {
                return false;
            }
            // tick() would overwrite last_command with the clamped
            // incoming command; identity needs that write to be a no-op.
            // Compared element-wise (no materialised clamp vector): this
            // check runs on the per-tick wake-hint path.
            if cmd
                .iter()
                .zip(&self.model.limits)
                .zip(&self.last_command)
                .any(|((qi, l), held)| l.clamp(*qi).to_bits() != held.to_bits())
            {
                return false;
            }
        }
        let dt = self.cfg.period;
        for i in 0..self.joints.len() {
            let (v, pid_unchanged) =
                self.pids[i].peek_step(self.last_command[i], self.joints[i], dt);
            if !pid_unchanged {
                return false;
            }
            let q = self.model.limits[i].clamp(self.joints[i] + v * dt);
            if q.to_bits() != self.joints[i].to_bits() {
                return false;
            }
        }
        true
    }

    /// Replays the clock bookkeeping of `ticks` hold ticks at a verified
    /// fixed point: `t` accumulates period by period, exactly as `ticks`
    /// real calls would have (`t += dt` is *not* associative in f64, so
    /// this must loop rather than multiply).
    ///
    /// # Panics
    /// Panics (debug) when the driver is not at the hold fixed point.
    pub fn advance_time(&mut self, ticks: u64) {
        debug_assert!(
            self.hold_is_identity(None),
            "advance_time outside the hold fixed point"
        );
        for _ in 0..ticks {
            self.t += self.cfg.period;
        }
    }

    /// Exports the driver's mutable state for checkpointing (the trail,
    /// if any, is not included — see [`DriverState`]).
    pub fn export_state(&self) -> DriverState {
        DriverState {
            joints: self.joints.clone(),
            last_command: self.last_command.clone(),
            t: self.t,
            pids: self.pids.iter().map(Pid::state).collect(),
        }
    }

    /// Rebuilds a driver from configuration plus exported state. Future
    /// [`RobotDriver::tick`] outputs are bit-identical to what the
    /// exported driver would have produced. Recording starts *off* (the
    /// restored trail would be incomplete anyway).
    ///
    /// # Panics
    /// Panics if the state's joint/command/PID counts mismatch the model
    /// or the restored pose violates joint limits.
    pub fn from_state(model: ArmModel, cfg: DriverConfig, state: &DriverState) -> Self {
        assert_eq!(
            state.joints.len(),
            model.dof(),
            "driver restore: joint count mismatch"
        );
        assert_eq!(
            state.last_command.len(),
            model.dof(),
            "driver restore: command dimension mismatch"
        );
        assert_eq!(
            state.pids.len(),
            model.dof(),
            "driver restore: PID count mismatch"
        );
        let mut driver = Self::new(model, cfg, &state.joints);
        driver.last_command = state.last_command.clone();
        driver.t = state.t;
        for (pid, s) in driver.pids.iter_mut().zip(&state.pids) {
            pid.restore(*s);
        }
        driver.set_recording(false);
        driver
    }

    /// Full recorded trajectory.
    pub fn trajectory(&self) -> &[Sample] {
        &self.trail
    }

    /// Consumes the driver, returning the trajectory.
    pub fn into_trajectory(self) -> Vec<Sample> {
        self.trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::niryo_one;

    fn driver() -> RobotDriver {
        let model = niryo_one();
        let home = model.home();
        RobotDriver::new(model, DriverConfig::default(), &home)
    }

    #[test]
    fn tracks_constant_command() {
        let mut d = driver();
        let mut target = d.joints().to_vec();
        target[0] += 0.3;
        for _ in 0..150 {
            d.tick(Some(&target));
        }
        assert!(
            (d.joints()[0] - target[0]).abs() < 0.005,
            "joint0 = {}",
            d.joints()[0]
        );
    }

    #[test]
    fn holds_last_command_on_miss() {
        let mut d = driver();
        let mut target = d.joints().to_vec();
        target[1] += 0.2;
        d.tick(Some(&target));
        for _ in 0..100 {
            d.tick(None); // network silent: driver keeps driving to target
        }
        assert!((d.joints()[1] - target[1]).abs() < 0.005);
        assert_eq!(d.last_command()[1], target[1]);
    }

    #[test]
    fn miss_flag_recorded() {
        let mut d = driver();
        let home = d.joints().to_vec();
        d.tick(Some(&home));
        d.tick(None);
        let trail = d.trajectory();
        assert!(trail[0].fresh_command);
        assert!(!trail[1].fresh_command);
    }

    #[test]
    fn joint_limits_never_violated() {
        let mut d = driver();
        let crazy = vec![100.0, -100.0, 100.0, -100.0, 100.0, -100.0];
        for _ in 0..300 {
            d.tick(Some(&crazy));
        }
        assert!(d.model().within_limits(d.joints()));
    }

    #[test]
    fn velocity_limits_bound_step_size() {
        let mut d = driver();
        let mut target = d.joints().to_vec();
        target[0] += 2.0; // far away
        let before = d.joints()[0];
        d.tick(Some(&target));
        let after = d.joints()[0];
        let vmax = d.model().limits[0].max_velocity;
        assert!((after - before).abs() <= vmax * 0.020 + 1e-12);
    }

    #[test]
    fn time_and_samples_advance_together() {
        let mut d = driver();
        let home = d.joints().to_vec();
        for _ in 0..50 {
            d.tick(Some(&home));
        }
        assert_eq!(d.trajectory().len(), 50);
        assert!((d.time() - 1.0).abs() < 1e-9);
        assert!((d.trajectory()[49].t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_command_keeps_arm_still() {
        let mut d = driver();
        let home = d.joints().to_vec();
        let start_dist = d.model().chain.distance_from_origin_mm(&home);
        for _ in 0..100 {
            d.tick(Some(&home));
        }
        let end_dist = d.trajectory().last().unwrap().distance_mm;
        assert!(
            (start_dist - end_dist).abs() < 1.0,
            "arm drifted {start_dist} → {end_dist}"
        );
    }

    #[test]
    fn hold_identity_detected_and_fast_forward_exact() {
        // Drive toward a target, then hold: the driver must reach a
        // verified f64 fixed point, after which advance_time(n) equals n
        // eager hold ticks bit for bit (including the accumulated t).
        let mut d = driver();
        let mut target = d.joints().to_vec();
        target[0] += 0.2;
        target[2] -= 0.1;
        d.tick(Some(&target));
        // Recording drivers grow their trail every tick: never a no-op.
        assert!(!d.hold_is_identity(None), "recording driver can't hold");
        d.set_recording(false);
        assert!(!d.hold_is_identity(None), "mid-transient is not a hold");
        let mut settled = None;
        for i in 0..200_000 {
            if d.hold_is_identity(None) {
                settled = Some(i);
                break;
            }
            d.tick(None);
        }
        settled.expect("hold never reached its fixed point");
        // Identity under the held command fed explicitly, too (the
        // engine re-issues the held command as Some(cmd)).
        let held = d.last_command().to_vec();
        assert!(d.hold_is_identity(Some(&held)));
        // A different incoming command is not an identity.
        let mut other = held.clone();
        other[0] += 0.01;
        assert!(!d.hold_is_identity(Some(&other)));

        // Fast-forward vs eager: bit-identical states.
        let state = d.export_state();
        let mut eager = RobotDriver::from_state(d.model().clone(), *d.config(), &state);
        let mut skipped = RobotDriver::from_state(d.model().clone(), *d.config(), &state);
        for _ in 0..997 {
            eager.tick(None);
        }
        skipped.advance_time(997);
        let (a, b) = (eager.export_state(), skipped.export_state());
        assert_eq!(a.t.to_bits(), b.t.to_bits(), "t must replay exactly");
        assert_eq!(a, b);
        // And both continue identically once commands resume.
        let mut next = state.joints.clone();
        next[0] += 0.04;
        assert_eq!(eager.tick(Some(&next)), skipped.tick(Some(&next)));
    }

    /// Recovery transient: freeze the command stream mid-motion, then
    /// resume — the arm needs a few hundred ms to catch up (Fig. 10).
    #[test]
    fn post_freeze_recovery_transient() {
        let mut d = driver();
        let home = d.joints().to_vec();
        // Move joint 0 steadily, 0.04 rad per command.
        let mut target = home.clone();
        for _ in 0..20 {
            target[0] += 0.04;
            d.tick(Some(&target));
        }
        // Freeze for 25 commands while the operator keeps going.
        for _ in 0..25 {
            target[0] += 0.04;
            d.tick(None);
        }
        // Channel recovers: the arm is now ~1 rad behind.
        let lag = (target[0] - d.joints()[0]).abs();
        assert!(lag > 0.5, "expected a large lag, got {lag}");
        let mut caught_up_at = None;
        for k in 0..200 {
            d.tick(Some(&target));
            if (d.joints()[0] - target[0]).abs() < 0.01 {
                caught_up_at = Some(k);
                break;
            }
        }
        let k = caught_up_at.expect("never caught up");
        let recovery = k as f64 * 0.020;
        assert!(
            (0.1..2.0).contains(&recovery),
            "recovery took {recovery}s; expected hundreds of ms"
        );
    }
}
