//! Per-joint PID position controller.
//!
//! Mirrors the role of MoveIt's joint-trajectory PID in the Niryo stack
//! (§VI-A): input is the commanded joint position, output is a joint
//! velocity clamped to the axis speed limit. Integral anti-windup uses
//! clamping (integration pauses while the output saturates), the standard
//! remedy and the cause of the ~400 ms re-stabilisation transient visible
//! in Fig. 10 after a loss burst ends.

use serde::{Deserialize, Serialize};

/// PID gains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidGains {
    /// Proportional gain (1/s).
    pub kp: f64,
    /// Integral gain (1/s²).
    pub ki: f64,
    /// Derivative gain (dimensionless).
    pub kd: f64,
}

impl PidGains {
    /// Gains tuned for the 50 Hz Niryo-like loop: brisk tracking of the
    /// 0.04 rad per-command steps, a few hundred milliseconds to recover
    /// from a multi-command freeze (matching Fig. 10's annotation).
    pub fn niryo_default() -> Self {
        Self {
            kp: 10.0,
            ki: 2.0,
            kd: 0.05,
        }
    }
}

/// Serialisable mutable state of one [`Pid`] (gains and output clamp are
/// configuration, rebuilt from the arm model at restore time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidState {
    /// Accumulated integral term.
    pub integral: f64,
    /// Previous error sample feeding the derivative term.
    pub prev_error: Option<f64>,
}

/// One PID controller instance (one joint).
#[derive(Debug, Clone)]
pub struct Pid {
    gains: PidGains,
    max_output: f64,
    integral: f64,
    prev_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with output clamped to `±max_output`.
    ///
    /// # Panics
    /// Panics if `max_output` is not positive.
    pub fn new(gains: PidGains, max_output: f64) -> Self {
        assert!(max_output > 0.0, "pid: max_output must be positive");
        Self {
            gains,
            max_output,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// One control step: returns the clamped velocity command.
    ///
    /// # Panics
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, setpoint: f64, measured: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "pid: dt must be positive");
        let error = setpoint - measured;
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);

        let unclamped = self.gains.kp * error
            + self.gains.ki * (self.integral + error * dt)
            + self.gains.kd * derivative;
        let output = unclamped.clamp(-self.max_output, self.max_output);
        // Anti-windup: only integrate while not saturated (or while the
        // error pushes back toward the linear region).
        if unclamped == output || (error * unclamped) < 0.0 {
            self.integral += error * dt;
        }
        output
    }

    /// Replays one [`Pid::step`] without mutating: returns the velocity
    /// the step would output and whether the controller's own state
    /// (integral, derivative memory) would stay bit-identical.
    ///
    /// This feeds the *idle fixed point* detection the service scheduler
    /// parks settled sessions at: a held joint is at its fixed point when
    /// the peeked state is unchanged **and** the returned velocity moves
    /// the joint by less than half an ulp (the caller checks the joint
    /// update, which lives in the driver).
    pub fn peek_step(&self, setpoint: f64, measured: f64, dt: f64) -> (f64, bool) {
        let error = setpoint - measured;
        let (derivative, prev_unchanged) = match self.prev_error {
            Some(prev) => ((error - prev) / dt, prev.to_bits() == error.to_bits()),
            None => (0.0, false), // first step always writes prev_error
        };
        let unclamped = self.gains.kp * error
            + self.gains.ki * (self.integral + error * dt)
            + self.gains.kd * derivative;
        let output = unclamped.clamp(-self.max_output, self.max_output);
        let integral_unchanged = if unclamped == output || (error * unclamped) < 0.0 {
            // The step would integrate: the addition must vanish in f64.
            (self.integral + error * dt).to_bits() == self.integral.to_bits()
        } else {
            true // saturated: anti-windup skips the integral entirely
        };
        (output, prev_unchanged && integral_unchanged)
    }

    /// Resets integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Exports the controller's mutable state for checkpointing.
    pub fn state(&self) -> PidState {
        PidState {
            integral: self.integral,
            prev_error: self.prev_error,
        }
    }

    /// Restores state exported by [`Pid::state`]; subsequent
    /// [`Pid::step`] outputs are bit-identical to the original's.
    pub fn restore(&mut self, state: PidState) {
        self.integral = state.integral;
        self.prev_error = state.prev_error;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate `pid` driving an integrator plant `x' = v` for `steps`
    /// ticks of `dt` toward `target`; returns the trajectory.
    fn simulate(pid: &mut Pid, x0: f64, target: f64, dt: f64, steps: usize) -> Vec<f64> {
        let mut x = x0;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let v = pid.step(target, x, dt);
            x += v * dt;
            out.push(x);
        }
        out
    }

    #[test]
    fn converges_to_setpoint() {
        let mut pid = Pid::new(PidGains::niryo_default(), 2.0);
        let traj = simulate(&mut pid, 0.0, 1.0, 0.02, 500);
        let last = *traj.last().unwrap();
        assert!((last - 1.0).abs() < 1e-3, "settled at {last}");
    }

    #[test]
    fn output_respects_clamp() {
        let mut pid = Pid::new(
            PidGains {
                kp: 1000.0,
                ki: 0.0,
                kd: 0.0,
            },
            1.5,
        );
        let v = pid.step(100.0, 0.0, 0.02);
        assert_eq!(v, 1.5);
        let v = pid.step(-100.0, 0.0, 0.02);
        assert_eq!(v, -1.5);
    }

    /// Small 0.04 rad steps (the Niryo command moving offset) are tracked
    /// within a few control periods.
    #[test]
    fn tracks_niryo_step_quickly() {
        let mut pid = Pid::new(PidGains::niryo_default(), 1.57);
        let traj = simulate(&mut pid, 0.0, 0.04, 0.02, 25); // half a second
        let settled = traj.iter().position(|x| (x - 0.04).abs() < 0.004).unwrap();
        assert!(
            settled <= 15,
            "took {settled} ticks to reach 90 % of a 0.04 rad step"
        );
    }

    /// A big error (post-burst recovery) takes hundreds of milliseconds —
    /// the Fig. 10 "PID control error" transient.
    #[test]
    fn large_step_recovery_takes_hundreds_of_ms() {
        let mut pid = Pid::new(PidGains::niryo_default(), 1.57);
        let dt = 0.02;
        let traj = simulate(&mut pid, 0.0, 0.8, dt, 200);
        let settled = traj.iter().position(|x| (x - 0.8).abs() < 0.008).unwrap();
        let t = settled as f64 * dt;
        assert!(
            (0.1..1.5).contains(&t),
            "recovery took {t}s; expected a few hundred ms"
        );
    }

    #[test]
    fn anti_windup_limits_overshoot() {
        // With naive integration a long saturation would cause massive
        // overshoot; clamped integration must keep it small.
        let mut pid = Pid::new(
            PidGains {
                kp: 4.0,
                ki: 4.0,
                kd: 0.0,
            },
            0.5,
        );
        let traj = simulate(&mut pid, 0.0, 2.0, 0.02, 2000);
        let peak = traj.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak < 2.4, "overshoot to {peak} (20 %+ means windup)");
        assert!((traj.last().unwrap() - 2.0).abs() < 0.01);
    }

    #[test]
    fn peek_step_matches_step_exactly() {
        // peek must replay step's arithmetic bit for bit, and its
        // "state unchanged" verdict must agree with what step does.
        let mut pid = Pid::new(PidGains::niryo_default(), 1.57);
        let mut x = 0.0f64;
        for i in 0..400 {
            let before = pid.state();
            let (peeked, unchanged) = pid.peek_step(0.3, x, 0.02);
            let v = pid.step(0.3, x, 0.02);
            assert_eq!(peeked.to_bits(), v.to_bits(), "tick {i}");
            let after = pid.state();
            let state_same = after.integral.to_bits() == before.integral.to_bits()
                && after.prev_error.map(f64::to_bits) == before.prev_error.map(f64::to_bits);
            assert_eq!(unchanged, state_same, "tick {i}: verdict vs reality");
            x += v * 0.02;
        }
    }

    #[test]
    fn hold_reaches_exact_noop() {
        // Under a constant setpoint the controller must eventually reach
        // a state where peek_step reports (≈0 velocity, unchanged state)
        // — the parkability precondition of the service scheduler.
        let mut pid = Pid::new(PidGains::niryo_default(), 1.57);
        let mut x = 0.0f64;
        let mut settled = None;
        for i in 0..200_000 {
            let (v, unchanged) = pid.peek_step(0.3, x, 0.02);
            let moved = (x + v * 0.02).to_bits() != x.to_bits();
            if unchanged && !moved {
                settled = Some(i);
                break;
            }
            let v = pid.step(0.3, x, 0.02);
            x += v * 0.02;
        }
        let settled = settled.expect("PID hold never reached its f64 fixed point");
        assert!(settled > 10, "cannot settle while still converging");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidGains::niryo_default(), 2.0);
        for _ in 0..50 {
            pid.step(1.0, 0.0, 0.02);
        }
        pid.reset();
        let mut fresh = Pid::new(PidGains::niryo_default(), 2.0);
        assert_eq!(pid.step(1.0, 0.0, 0.02), fresh.step(1.0, 0.0, 0.02));
    }
}
