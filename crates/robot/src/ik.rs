//! Inverse kinematics by damped least squares.
//!
//! The paper's operators command the arm in joint space through a
//! joystick mapping, but task definitions (pick points, place points)
//! live in Cartesian space. This module closes that gap: given a target
//! end-effector position, iterate
//!
//! ```text
//! Δq = Jᵀ (J Jᵀ + λ² I)⁻¹ Δp        (Levenberg–Marquardt damping)
//! ```
//!
//! with the 3×n position Jacobian estimated by central finite differences
//! of the forward kinematics. Damping keeps steps bounded near
//! singularities — the standard Wampler/Nakamura formulation.

use crate::model::ArmModel;

/// Configuration of the IK solver.
#[derive(Debug, Clone, Copy)]
pub struct IkConfig {
    /// Damping factor λ (metres); larger = more conservative steps.
    pub damping: f64,
    /// Convergence threshold on the position error (metres).
    pub tolerance: f64,
    /// Maximum iterations before giving up.
    pub max_iterations: usize,
    /// Finite-difference step for the Jacobian (radians).
    pub fd_step: f64,
}

impl Default for IkConfig {
    fn default() -> Self {
        Self {
            damping: 0.05,
            tolerance: 1e-4,
            max_iterations: 200,
            fd_step: 1e-6,
        }
    }
}

/// Outcome of an IK solve.
#[derive(Debug, Clone)]
pub struct IkSolution {
    /// Joint vector reaching (near) the target, clamped to limits.
    pub joints: Vec<f64>,
    /// Final position error (metres).
    pub error: f64,
    /// Iterations used.
    pub iterations: usize,
    /// True when `error <= tolerance`.
    pub converged: bool,
}

/// 3×n position Jacobian by central finite differences.
fn jacobian(model: &ArmModel, q: &[f64], h: f64) -> Vec<[f64; 3]> {
    let n = q.len();
    let mut cols = Vec::with_capacity(n);
    let mut qp = q.to_vec();
    for j in 0..n {
        let orig = qp[j];
        qp[j] = orig + h;
        let plus = model.chain.forward(&qp);
        qp[j] = orig - h;
        let minus = model.chain.forward(&qp);
        qp[j] = orig;
        cols.push([
            (plus[0] - minus[0]) / (2.0 * h),
            (plus[1] - minus[1]) / (2.0 * h),
            (plus[2] - minus[2]) / (2.0 * h),
        ]);
    }
    cols
}

/// Solves `3x3` linear system `A x = b` by Gaussian elimination with
/// partial pivoting (A = J Jᵀ + λ²I is small and well conditioned thanks
/// to the damping).
#[allow(clippy::needless_range_loop)] // elimination indexes rows and b together
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for k in 0..3 {
        // Pivot.
        let mut p = k;
        for i in k + 1..3 {
            if a[i][k].abs() > a[p][k].abs() {
                p = i;
            }
        }
        a.swap(k, p);
        b.swap(k, p);
        let pivot = a[k][k];
        debug_assert!(pivot.abs() > 1e-300, "ik: singular damped system");
        for i in k + 1..3 {
            let f = a[i][k] / pivot;
            for j in k..3 {
                a[i][j] -= f * a[k][j];
            }
            b[i] -= f * b[k];
        }
    }
    let mut x = [0.0; 3];
    for i in (0..3).rev() {
        let mut v = b[i];
        for j in i + 1..3 {
            v -= a[i][j] * x[j];
        }
        x[i] = v / a[i][i];
    }
    x
}

/// Damped-least-squares IK for the end-effector **position** (3-DOF task;
/// orientation is free — enough for pick/place waypoint design).
///
/// Starts from `seed` (e.g. the current pose), returns the solution with
/// joints clamped to the model's limits each step.
///
/// # Panics
/// Panics if `seed` length mismatches the model.
pub fn solve_position(
    model: &ArmModel,
    target_m: [f64; 3],
    seed: &[f64],
    cfg: &IkConfig,
) -> IkSolution {
    assert_eq!(seed.len(), model.dof(), "ik: seed joint count mismatch");
    let mut q = model.clamp(seed);
    let mut error = f64::MAX;
    for iter in 0..cfg.max_iterations {
        let p = model.chain.forward(&q);
        let dp = [target_m[0] - p[0], target_m[1] - p[1], target_m[2] - p[2]];
        error = (dp[0] * dp[0] + dp[1] * dp[1] + dp[2] * dp[2]).sqrt();
        if error <= cfg.tolerance {
            return IkSolution {
                joints: q,
                error,
                iterations: iter,
                converged: true,
            };
        }
        let jac = jacobian(model, &q, cfg.fd_step);
        // A = J Jᵀ + λ² I (3×3).
        let mut a = [[0.0; 3]; 3];
        for col in &jac {
            for r in 0..3 {
                for c in 0..3 {
                    a[r][c] += col[r] * col[c];
                }
            }
        }
        let lambda2 = cfg.damping * cfg.damping;
        for (r, row) in a.iter_mut().enumerate() {
            row[r] += lambda2;
        }
        let y = solve3(a, dp);
        // Δq = Jᵀ y.
        for (j, col) in jac.iter().enumerate() {
            let dq = col[0] * y[0] + col[1] * y[1] + col[2] * y[2];
            q[j] = model.limits[j].clamp(q[j] + dq);
        }
    }
    IkSolution {
        joints: q,
        error,
        iterations: cfg.max_iterations,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::niryo_one;

    #[test]
    fn reaches_a_nearby_target() {
        let model = niryo_one();
        let seed = model.home();
        let start = model.chain.forward(&seed);
        let target = [start[0] + 0.03, start[1] - 0.02, start[2] + 0.01];
        let sol = solve_position(&model, target, &seed, &IkConfig::default());
        assert!(
            sol.converged,
            "error {} after {} iters",
            sol.error, sol.iterations
        );
        assert!(sol.error < 1e-3);
        assert!(model.within_limits(&sol.joints));
    }

    #[test]
    fn round_trips_fk_poses() {
        // Targets generated BY the arm must be reachable by IK.
        let model = niryo_one();
        let seed = model.home();
        for (i, q) in [
            vec![0.4, -0.2, 0.1, 0.0, -0.3, 0.0],
            vec![-0.6, 0.1, 0.3, 0.2, -0.5, 0.1],
            vec![0.9, 0.3, 0.3, 0.0, -0.75, 0.0], // the at_pick waypoint
        ]
        .iter()
        .enumerate()
        {
            let target = model.chain.forward(q);
            let sol = solve_position(&model, target, &seed, &IkConfig::default());
            assert!(
                sol.error < 1e-3,
                "pose {i}: error {} after {} iters",
                sol.error,
                sol.iterations
            );
        }
    }

    #[test]
    fn unreachable_target_reports_non_convergence() {
        let model = niryo_one();
        let seed = model.home();
        // Two metres out: far beyond the ~0.7 m reach.
        let sol = solve_position(&model, [2.0, 0.0, 0.3], &seed, &IkConfig::default());
        assert!(!sol.converged);
        assert!(sol.error > 1.0, "error {}", sol.error);
        assert!(
            model.within_limits(&sol.joints),
            "even failed solves stay legal"
        );
    }

    #[test]
    fn damping_keeps_steps_bounded_near_singularity() {
        let model = niryo_one();
        // Fully extended along the reach boundary = singular Jacobian.
        let seed = vec![0.0, -0.3, -1.0, 0.0, 0.3, 0.0];
        let start = model.chain.forward(&seed);
        let target = [start[0] + 0.01, start[1], start[2]];
        let sol = solve_position(&model, target, &seed, &IkConfig::default());
        // Must not blow up; joints stay finite and legal.
        assert!(sol.joints.iter().all(|v| v.is_finite()));
        assert!(model.within_limits(&sol.joints));
    }

    #[test]
    fn solve3_solves_exactly() {
        let a = [[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        let x = solve3(a, [9.0, 13.0, 8.0]);
        // Verify A x = b.
        let b0 = 4.0 * x[0] + x[1];
        let b1 = x[0] + 3.0 * x[1] + x[2];
        let b2 = x[1] + 2.0 * x[2];
        assert!((b0 - 9.0).abs() < 1e-10);
        assert!((b1 - 13.0).abs() < 1e-10);
        assert!((b2 - 8.0).abs() < 1e-10);
    }
}
