//! Property-based tests for the robot substrate.

use foreco_robot::{niryo_one, DriverConfig, Pid, PidGains, RobotDriver};
use proptest::prelude::*;

fn random_joints() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FK never exceeds the kinematic reach bound, at any joint vector.
    #[test]
    fn fk_respects_reach_bound(q in random_joints()) {
        let m = niryo_one();
        let q = m.clamp(&q);
        let p = m.chain.forward(&q);
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        prop_assert!(r <= m.chain.max_reach() + 1e-9, "reach {r}");
    }

    /// Clamping is idempotent and always lands inside the limits.
    #[test]
    fn clamp_idempotent(q in random_joints()) {
        let m = niryo_one();
        let once = m.clamp(&q);
        prop_assert!(m.within_limits(&once));
        prop_assert_eq!(m.clamp(&once), once);
    }

    /// Base-yaw rotation must not change the distance from origin
    /// (joint 1 spins about the z axis through the origin).
    #[test]
    fn base_yaw_invariance(q in random_joints(), yaw in -3.0f64..3.0) {
        let m = niryo_one();
        let mut a = m.clamp(&q);
        let d1 = m.chain.distance_from_origin_mm(&a);
        a[0] = m.limits[0].clamp(yaw);
        let d2 = m.chain.distance_from_origin_mm(&a);
        prop_assert!((d1 - d2).abs() < 1e-6, "{d1} vs {d2}");
    }

    /// PID output is always inside the clamp, whatever the history.
    #[test]
    fn pid_output_clamped(
        setpoints in proptest::collection::vec(-10.0f64..10.0, 1..50),
        vmax in 0.1f64..5.0,
    ) {
        let mut pid = Pid::new(PidGains::niryo_default(), vmax);
        let mut x = 0.0;
        for sp in setpoints {
            let v = pid.step(sp, x, 0.02);
            prop_assert!(v.abs() <= vmax + 1e-12);
            x += v * 0.02;
        }
    }

    /// The driver keeps joints inside limits and velocities inside axis
    /// bounds under arbitrary command streams (including misses).
    #[test]
    fn driver_invariants_under_random_commands(
        cmds in proptest::collection::vec(
            proptest::option::of(random_joints()), 1..80),
    ) {
        let m = niryo_one();
        let home = m.home();
        let mut d = RobotDriver::new(m, DriverConfig::default(), &home);
        let mut prev = home;
        for cmd in cmds {
            d.tick(cmd.as_deref());
            let now = d.joints().to_vec();
            prop_assert!(d.model().within_limits(&now));
            for (i, (a, b)) in now.iter().zip(&prev).enumerate() {
                let vmax = d.model().limits[i].max_velocity;
                prop_assert!(
                    (a - b).abs() <= vmax * 0.020 + 1e-9,
                    "joint {i} jumped {}",
                    (a - b).abs()
                );
            }
            prev = now;
        }
    }

    /// Trajectory samples have monotone timestamps and finite positions.
    #[test]
    fn trajectory_samples_well_formed(n in 1usize..60) {
        let m = niryo_one();
        let home = m.home();
        let mut d = RobotDriver::new(m, DriverConfig::default(), &home);
        for _ in 0..n {
            d.tick(Some(&home));
        }
        let trail = d.trajectory();
        prop_assert_eq!(trail.len(), n);
        let mut prev = 0.0;
        for s in trail {
            prop_assert!(s.t > prev);
            prop_assert!(s.position_mm.iter().all(|v| v.is_finite()));
            prop_assert!(s.distance_mm >= 0.0);
            prev = s.t;
        }
    }
}
