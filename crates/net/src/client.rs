//! The operator side: [`NetClient`] replays teleoperation traces over
//! the wire protocol — one frame per 50 Hz slot, a cumulative-ack send
//! window, optional retransmission, and **seeded artificial
//! impairments** (loss and lateness) applied above the transport so the
//! same seed produces the same wire behaviour on every run.
//!
//! Transports are traits: [`UdpWire`]/[`TcpControl`] speak real
//! sockets, [`LoopbackWire`]/[`LoopbackControl`] drive the gateway's
//! identical ingress/control code in-process. A trace replayed through
//! both must produce bit-identical session statistics — the determinism
//! contract pinned by `tests/gateway.rs`.
//!
//! # Flow control
//!
//! Telemetry frames carry the gateway's settled-slot watermark (every
//! slot below it is delivered, patched, or flushed as lost). The client
//! keeps at most [`ClientConfig::window`] unsettled frames in flight
//! and resends the oldest after [`ClientConfig::retransmit_after`]
//! without progress — so OS-level datagram drops are healed by the
//! protocol, while *deliberate* impairments stay visible: an
//! artificially lost frame is simply never sent — its slot flushes as a
//! loss at the gateway once later frames expose the gap (a loss
//! trailing the final received frame stays unknown, and the session
//! just ends that many ticks earlier) — and an artificially late frame
//! is held back [`ClientConfig::late_depth`] slots so it arrives behind
//! the reorder horizon and rides the §VII-C late path.

use crate::control::{self, ControlCore, ControlRequest, ControlResponse};
use crate::ingress::IngressState;
use crate::wire::{self, FrameKind, MAX_FRAME};
use crate::NetError;
use foreco_serve::{IngressSummary, SessionId, SessionReport};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A datagram transport for the data plane.
pub trait DataWire {
    /// Sends one encoded frame.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;
    /// Receives one frame if available within a short poll; `None` when
    /// nothing is pending.
    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<Option<usize>>;
}

/// A request/response transport for the control plane.
pub trait ControlWire {
    /// Performs one control round trip.
    fn request(&mut self, request: &ControlRequest) -> Result<ControlResponse, NetError>;
}

/// Real UDP data plane (connected to the gateway's data address).
pub struct UdpWire {
    socket: UdpSocket,
}

impl UdpWire {
    /// Binds an ephemeral local socket and connects it to the gateway.
    ///
    /// # Errors
    /// Socket bind/connect/configuration failures.
    pub fn connect(gateway: SocketAddr) -> std::io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(gateway)?;
        // Non-blocking: the replay loop polls between its own sleeps, so
        // a blocking ack read would only add latency to every window
        // check.
        socket.set_nonblocking(true)?;
        Ok(Self { socket })
    }
}

impl DataWire for UdpWire {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.socket.send(frame).map(|_| ())
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<Option<usize>> {
        match self.socket.recv(buf) {
            Ok(len) => Ok(Some(len)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Real TCP control plane (with the protocol handshake performed).
pub struct TcpControl {
    stream: TcpStream,
}

impl TcpControl {
    /// Connects to the gateway's control address and performs the
    /// version handshake.
    ///
    /// # Errors
    /// Socket failures ([`NetError::Io`]) or a handshake from a
    /// different protocol version ([`NetError::Protocol`]).
    pub fn connect(gateway: SocketAddr) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(gateway).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        control::write_hello(&mut stream).map_err(NetError::Io)?;
        control::read_hello(&mut stream)?;
        Ok(Self { stream })
    }
}

impl ControlWire for TcpControl {
    fn request(&mut self, request: &ControlRequest) -> Result<ControlResponse, NetError> {
        control::write_msg(&mut self.stream, &control::encode_request(request))
            .map_err(NetError::Io)?;
        control::decode_response(&control::read_msg(&mut self.stream)?)
    }
}

/// In-process data plane: every frame runs the gateway's real ingress
/// path (codec included) under its mutex; acks queue locally.
pub struct LoopbackWire {
    ingress: Arc<Mutex<IngressState>>,
    acks: VecDeque<Vec<u8>>,
}

impl LoopbackWire {
    pub(crate) fn new(ingress: Arc<Mutex<IngressState>>) -> Self {
        Self {
            ingress,
            acks: VecDeque::new(),
        }
    }
}

impl DataWire for LoopbackWire {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let mut ack = [0u8; MAX_FRAME];
        let ack_len = self
            .ingress
            .lock()
            .expect("ingress")
            .handle_datagram(frame, &mut ack);
        if let Some(len) = ack_len {
            self.acks.push_back(ack[..len].to_vec());
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<Option<usize>> {
        match self.acks.pop_front() {
            Some(ack) => {
                buf[..ack.len()].copy_from_slice(&ack);
                Ok(Some(ack.len()))
            }
            None => Ok(None),
        }
    }
}

/// In-process control plane: requests execute directly on the gateway's
/// [`ControlCore`] — the same code every TCP connection runs.
pub struct LoopbackControl {
    core: ControlCore,
}

impl LoopbackControl {
    pub(crate) fn new(core: ControlCore) -> Self {
        Self { core }
    }
}

impl ControlWire for LoopbackControl {
    fn request(&mut self, request: &ControlRequest) -> Result<ControlResponse, NetError> {
        // Round-trip through the JSON payload codec so the loopback path
        // exercises byte-identical (de)serialisation to the socket path.
        let request: ControlRequest = control::decode_request(&control::encode_request(request))?;
        let response = self.core.execute(request);
        control::decode_response(&control::encode_response(&response))
    }
}

/// Replay behaviour knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Max unsettled frames in flight before sending blocks on acks.
    pub window: u64,
    /// Probability a frame is never sent (a silent wire loss; its slot
    /// flushes as lost at the gateway).
    pub loss: f64,
    /// Probability a frame is deferred [`ClientConfig::late_depth`]
    /// slots (arriving behind the reorder horizon → §VII-C late path
    /// when `late_depth` exceeds the gateway's `reorder_window`).
    pub late: f64,
    /// How many later frames precede a deferred one.
    pub late_depth: u64,
    /// Impairment RNG seed — same seed, same wire behaviour.
    pub seed: u64,
    /// Per-slot pacing (e.g. 20 ms for the paper's 50 Hz); `None`
    /// replays as fast as flow control allows.
    pub pace: Option<Duration>,
    /// Resend the oldest unsettled frame after this long without ack
    /// progress (heals OS-level drops; duplicates are discarded).
    pub retransmit_after: Duration,
    /// Give up waiting for acks after this long without progress.
    pub stall_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            window: 32,
            loss: 0.0,
            late: 0.0,
            late_depth: 12,
            seed: 0,
            pace: None,
            retransmit_after: Duration::from_millis(50),
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// What a replay did on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Frames sent (first transmissions).
    pub sent: u64,
    /// Slots deliberately never sent.
    pub lost: u64,
    /// Frames deliberately deferred past the reorder horizon.
    pub deferred: u64,
    /// Retransmissions triggered by missing acks.
    pub retransmits: u64,
    /// The gateway's settled-slot watermark when the replay returned.
    pub acked: u64,
}

/// A remote operator: one session driven over a data wire and a control
/// wire (real sockets or loopback — same protocol either way).
pub struct NetClient<D: DataWire, C: ControlWire> {
    data: D,
    control: C,
    session: SessionId,
}

impl<D: DataWire, C: ControlWire> NetClient<D, C> {
    /// A client for `session` over the given transports.
    pub fn new(session: SessionId, data: D, control: C) -> Self {
        Self {
            data,
            control,
            session,
        }
    }

    /// The session this client drives.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Direct access to the control wire (for the typed SDK layered on
    /// top of this client).
    pub(crate) fn control_mut(&mut self) -> &mut C {
        &mut self.control
    }

    /// Attaches: opens the gated session on the gateway.
    ///
    /// # Errors
    /// [`NetError::Rejected`] with the gateway's reason, or transport
    /// failures.
    pub fn open(&mut self, initial: Vec<f64>, inbox_capacity: usize) -> Result<(), NetError> {
        match self.control.request(&ControlRequest::Open {
            id: self.session,
            initial,
            inbox_capacity,
        })? {
            ControlResponse::Opened { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Detaches: flushes the data plane, drains the session, and
    /// returns its final report plus the wire-side counters.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn close(&mut self) -> Result<(SessionReport, IngressSummary), NetError> {
        match self
            .control
            .request(&ControlRequest::Close { id: self.session })?
        {
            ControlResponse::Closed {
                report, ingress, ..
            } => Ok((report, ingress)),
            other => Err(unexpected(other)),
        }
    }

    /// Checkpoints the live session, returning the snapshot's portable
    /// byte form (the binary v3 frame, fetched through the v3
    /// `SnapshotBin` verb — the bytes cross the wire verbatim, with no
    /// JSON inflation).
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, NetError> {
        match self
            .control
            .request(&ControlRequest::SnapshotBin { id: self.session })?
        {
            ControlResponse::SnapshotBin { snapshot, .. } => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Revives a checkpoint on the gateway, returning the next sequence
    /// number to stream from. Accepts any `SessionSnapshot` byte form —
    /// binary v3 frames and legacy JSON checkpoints both adopt (the
    /// server sniffs the payload).
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn adopt(&mut self, snapshot: &[u8]) -> Result<u64, NetError> {
        match self.control.request(&ControlRequest::AdoptBin {
            snapshot: snapshot.to_vec(),
        })? {
            ControlResponse::Adopted { next_slot, .. } => Ok(next_slot),
            other => Err(unexpected(other)),
        }
    }

    /// The session's current wire-side counters.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn stats(&mut self) -> Result<IngressSummary, NetError> {
        match self
            .control
            .request(&ControlRequest::Stats { id: self.session })?
        {
            ControlResponse::Stats { ingress } => Ok(ingress),
            other => Err(unexpected(other)),
        }
    }

    /// Replays `trace` starting at sequence number `start_slot`
    /// (0 for a fresh session; an adopted session resumes where
    /// [`NetClient::adopt`] said). See the module docs for the window,
    /// retransmission, and impairment semantics.
    ///
    /// # Errors
    /// Transport failures, or [`NetError::Timeout`] when acks stall
    /// beyond [`ClientConfig::stall_timeout`].
    pub fn replay(
        &mut self,
        trace: &[Vec<f64>],
        start_slot: u64,
        cfg: &ClientConfig,
    ) -> Result<ReplayStats, NetError> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Impairment fates are pre-drawn per slot so they depend only on
        // the seed — never on transport timing.
        #[derive(Clone, Copy, PartialEq)]
        enum Fate {
            Send,
            Lose,
            Defer,
        }
        let fates: Vec<Fate> = trace
            .iter()
            .map(|_| {
                let roll: f64 = rng.gen();
                if roll < cfg.loss {
                    Fate::Lose
                } else if roll < cfg.loss + cfg.late {
                    Fate::Defer
                } else {
                    Fate::Send
                }
            })
            .collect();

        let mut stats = ReplayStats::default();
        let mut run = ReplayRun {
            client: self,
            trace,
            start_slot,
            cfg,
            unsettled: BTreeSet::new(),
            acked_to: start_slot,
            last_progress: Instant::now(),
            last_retransmit: Instant::now(),
            buf: [0u8; MAX_FRAME],
        };
        // Deferred frames waiting for their release point (in units of
        // slots walked past).
        let mut deferred: VecDeque<(u64, u64)> = VecDeque::new(); // (release_at, seq)
        for (i, fate) in fates.iter().enumerate() {
            let seq = start_slot + i as u64;
            while deferred
                .front()
                .is_some_and(|&(release_at, _)| release_at <= seq)
            {
                let (_, late_seq) = deferred.pop_front().expect("checked front");
                run.send_slot(late_seq, &mut stats)?;
            }
            match fate {
                Fate::Lose => stats.lost += 1,
                Fate::Defer => {
                    stats.deferred += 1;
                    deferred.push_back((seq + cfg.late_depth, seq));
                }
                Fate::Send => run.send_slot(seq, &mut stats)?,
            }
            run.wait_window(&mut stats)?;
            if let Some(pace) = cfg.pace {
                std::thread::sleep(pace);
            }
        }
        // Trailing deferred frames flush in order.
        while let Some((_, seq)) = deferred.pop_front() {
            run.send_slot(seq, &mut stats)?;
        }
        // Final drain: wait for every settleable slot to settle. Slots
        // behind a trailing silent loss can only settle at close (the
        // gateway flushes them then), so a *stall* here is expected —
        // but a transport failure is still a failure.
        if let Err(e) = run.drain(&mut stats) {
            if !matches!(e, NetError::Timeout(_)) {
                return Err(e);
            }
        }
        stats.acked = run.acked_to;
        Ok(stats)
    }
}

/// The borrow-heavy innards of one replay call.
struct ReplayRun<'a, D: DataWire, C: ControlWire> {
    client: &'a mut NetClient<D, C>,
    trace: &'a [Vec<f64>],
    start_slot: u64,
    cfg: &'a ClientConfig,
    /// Sent-but-unsettled sequence numbers.
    unsettled: BTreeSet<u64>,
    /// The gateway's cumulative watermark (all slots below it settled).
    acked_to: u64,
    last_progress: Instant,
    last_retransmit: Instant,
    buf: [u8; MAX_FRAME],
}

impl<D: DataWire, C: ControlWire> ReplayRun<'_, D, C> {
    fn send_slot(&mut self, seq: u64, stats: &mut ReplayStats) -> Result<(), NetError> {
        let joints = &self.trace[(seq - self.start_slot) as usize];
        let len = wire::encode_command(&mut self.buf, self.client.session, seq, seq, joints)
            .map_err(NetError::Wire)?;
        self.client
            .data
            .send(&self.buf[..len])
            .map_err(NetError::Io)?;
        // A slot the ack watermark already passed (a deliberately-late
        // frame whose slot was flushed as lost) is fire-and-forget: it
        // can never re-settle, so tracking it would make the window wait
        // on an ack that cannot come.
        if seq >= self.acked_to {
            self.unsettled.insert(seq);
        }
        stats.sent += 1;
        Ok(())
    }

    fn pump_acks(&mut self) -> Result<(), NetError> {
        let mut buf = [0u8; MAX_FRAME];
        while let Some(len) = self.client.data.recv(&mut buf).map_err(NetError::Io)? {
            let Ok(frame) = wire::decode(&buf[..len]) else {
                continue; // garbage on the return path: ignore
            };
            if frame.kind == FrameKind::Telemetry
                && frame.session == self.client.session
                && frame.seq > self.acked_to
            {
                self.acked_to = frame.seq;
                self.last_progress = Instant::now();
                let settled: Vec<u64> = self.unsettled.range(..self.acked_to).copied().collect();
                for seq in settled {
                    self.unsettled.remove(&seq);
                }
            }
        }
        Ok(())
    }

    /// Blocks (pumping acks, retransmitting on stalls) until the flight
    /// window has room.
    fn wait_window(&mut self, stats: &mut ReplayStats) -> Result<(), NetError> {
        while self.unsettled.len() as u64 >= self.cfg.window {
            self.step(stats)?;
        }
        Ok(())
    }

    /// Blocks until every unsettled frame settles; `Err` on stall (the
    /// caller decides whether a stall is fatal). Patience here is short:
    /// slots behind a trailing silent loss *cannot* settle before the
    /// close-time flush, so a drain stall is expected, not exceptional.
    fn drain(&mut self, stats: &mut ReplayStats) -> Result<(), NetError> {
        let patience = self.cfg.retransmit_after * 4 + Duration::from_millis(100);
        while !self.unsettled.is_empty() {
            if self.last_progress.elapsed() > patience {
                return Err(NetError::Timeout(format!(
                    "{} trailing slots unsettled (flushed at close)",
                    self.unsettled.len()
                )));
            }
            self.step(stats)?;
        }
        Ok(())
    }

    fn step(&mut self, stats: &mut ReplayStats) -> Result<(), NetError> {
        self.pump_acks()?;
        let waited = self.last_progress.elapsed();
        if waited > self.cfg.stall_timeout {
            return Err(NetError::Timeout(format!(
                "no ack progress for {waited:?} ({} unsettled from {})",
                self.unsettled.len(),
                self.acked_to
            )));
        }
        // Retransmission paces off its own clock: rewinding the
        // progress clock here would keep `waited` forever below the
        // stall timeout and turn a dead wire into an infinite loop.
        if waited > self.cfg.retransmit_after
            && self.last_retransmit.elapsed() > self.cfg.retransmit_after
        {
            if let Some(&oldest) = self.unsettled.iter().next() {
                let joints = &self.trace[(oldest - self.start_slot) as usize];
                let len = wire::encode_command(
                    &mut self.buf,
                    self.client.session,
                    oldest,
                    oldest,
                    joints,
                )
                .map_err(NetError::Wire)?;
                self.client
                    .data
                    .send(&self.buf[..len])
                    .map_err(NetError::Io)?;
                stats.retransmits += 1;
                self.last_retransmit = Instant::now();
            }
        }
        std::thread::sleep(Duration::from_micros(200));
        Ok(())
    }
}

pub(crate) fn unexpected(response: ControlResponse) -> NetError {
    match response {
        ControlResponse::Rejected { code, reason } => NetError::Rejected { code, reason },
        other => NetError::Protocol(format!("unexpected control response: {other:?}")),
    }
}
