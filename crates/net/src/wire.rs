//! The binary wire codec: how operator traffic looks on the network.
//!
//! Every datagram (and every framed control payload on the return path)
//! starts with the same fixed 32-byte header, little-endian throughout:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 4 | magic `"FRC0"` ([`WIRE_MAGIC`]) |
//! | 4  | 1 | wire version ([`WIRE_VERSION`]) |
//! | 5  | 1 | frame kind ([`FrameKind`]) |
//! | 6  | 2 | payload length in f64 words (`dims`) |
//! | 8  | 8 | session id |
//! | 16 | 8 | sequence number = virtual tick **slot** the payload is for |
//! | 24 | 8 | virtual tick (telemetry: slots settled; data: sender's clock) |
//!
//! followed by `dims × 8` bytes of IEEE-754 f64 joint values. A
//! [`FrameKind::Command`] carries the slot's joint-space command; a
//! [`FrameKind::Miss`] is the operator's explicit "this slot is gone"
//! (payload-free); a [`FrameKind::Telemetry`] flows gateway→operator
//! carrying the cumulative settled-slot watermark in `seq` — the ack
//! that drives the client's send window.
//!
//! Encoding and decoding are **zero-allocation**: encoders write into a
//! caller buffer and return the frame length, [`decode`] borrows the
//! payload and exposes joints as an on-demand iterator. Malformed input
//! never panics — every reject is a typed [`WireError`], pinned by the
//! codec property suite (`tests/wire_codec.rs`).
//!
//! # Versioning
//!
//! [`WIRE_VERSION`] follows the same rule as the snapshot format's
//! `SNAPSHOT_VERSION`: bump it whenever a header field changes meaning,
//! and keep any legacy decoding an explicit `match` on the version —
//! never implicit. A foreign version rejects with
//! [`WireError::Version`].

/// Leading magic of every FoReCo wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"FRC0";

/// Current wire format version (see the module docs for the bump rule).
pub const WIRE_VERSION: u8 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 32;

/// Hard cap on payload joints: no supported arm comes close, and the
/// cap keeps the largest legal datagram at [`MAX_FRAME`] bytes.
pub const MAX_JOINTS: usize = 32;

/// Largest legal frame in bytes (header + max payload); sized for
/// stack-allocated codec buffers.
pub const MAX_FRAME: usize = HEADER_LEN + MAX_JOINTS * 8;

/// What a frame is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Operator→gateway: the joint-space command for slot `seq`.
    Command,
    /// Operator→gateway: slot `seq` is declared lost (payload-free).
    Miss,
    /// Gateway→operator: cumulative ack — every slot below `seq` is
    /// settled (delivered, patched, or flushed as lost).
    Telemetry,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Command => 1,
            FrameKind::Miss => 2,
            FrameKind::Telemetry => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Command),
            2 => Some(FrameKind::Miss),
            3 => Some(FrameKind::Telemetry),
            _ => None,
        }
    }
}

/// A decoded frame borrowing its payload from the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame<'a> {
    /// Frame kind.
    pub kind: FrameKind,
    /// Session the frame belongs to.
    pub session: u64,
    /// Sequence number (= virtual tick slot; telemetry: settled
    /// watermark).
    pub seq: u64,
    /// Virtual tick field (see the module docs).
    pub tick: u64,
    payload: &'a [u8],
}

impl<'a> Frame<'a> {
    /// Number of f64 joints in the payload.
    pub fn dims(&self) -> usize {
        self.payload.len() / 8
    }

    /// The payload joints, decoded on demand (no allocation).
    pub fn joints(&self) -> impl Iterator<Item = f64> + 'a {
        self.payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
    }

    /// The payload joints as an owned vector (the one allocation the
    /// ingress path makes per delivered command — the `Vec` that rides
    /// the `Inject` into the session).
    pub fn joints_vec(&self) -> Vec<f64> {
        self.joints().collect()
    }
}

/// Why a frame failed to encode or decode. Every malformed input maps
/// to exactly one of these — the codec never panics on wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header (or than the header-declared
    /// payload) — a truncated datagram.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The leading magic is not [`WIRE_MAGIC`]: not our protocol.
    BadMagic {
        /// The four bytes found.
        found: [u8; 4],
    },
    /// A frame from a different protocol version.
    Version {
        /// Version found in the header.
        found: u8,
        /// Version this build speaks.
        expected: u8,
    },
    /// An unassigned frame-kind byte.
    UnknownKind {
        /// The byte found.
        found: u8,
    },
    /// The header declares more joints than [`MAX_JOINTS`].
    Oversized {
        /// Declared joint count.
        dims: usize,
        /// The cap.
        max: usize,
    },
    /// The buffer holds more bytes than the header accounts for —
    /// trailing garbage is rejected, not ignored.
    TrailingBytes {
        /// Expected total frame length.
        expect: usize,
        /// Bytes present.
        got: usize,
    },
    /// An encode target buffer too small for the frame.
    BufferTooSmall {
        /// Bytes required.
        need: usize,
        /// Buffer capacity.
        got: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            WireError::Version { found, expected } => {
                write!(f, "wire version {found}, this build speaks {expected}")
            }
            WireError::UnknownKind { found } => write!(f, "unknown frame kind {found:#04x}"),
            WireError::Oversized { dims, max } => {
                write!(f, "oversized payload: {dims} joints > max {max}")
            }
            WireError::TrailingBytes { expect, got } => {
                write!(f, "trailing bytes: frame is {expect}, buffer holds {got}")
            }
            WireError::BufferTooSmall { need, got } => {
                write!(f, "encode buffer too small: need {need}, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn encode_header(
    buf: &mut [u8],
    kind: FrameKind,
    dims: usize,
    session: u64,
    seq: u64,
    tick: u64,
) -> Result<usize, WireError> {
    if dims > MAX_JOINTS {
        return Err(WireError::Oversized {
            dims,
            max: MAX_JOINTS,
        });
    }
    let need = HEADER_LEN + dims * 8;
    if buf.len() < need {
        return Err(WireError::BufferTooSmall {
            need,
            got: buf.len(),
        });
    }
    buf[0..4].copy_from_slice(&WIRE_MAGIC);
    buf[4] = WIRE_VERSION;
    buf[5] = kind.to_byte();
    buf[6..8].copy_from_slice(&(dims as u16).to_le_bytes());
    buf[8..16].copy_from_slice(&session.to_le_bytes());
    buf[16..24].copy_from_slice(&seq.to_le_bytes());
    buf[24..32].copy_from_slice(&tick.to_le_bytes());
    Ok(need)
}

/// Encodes a command frame into `buf`, returning the frame length.
///
/// # Errors
/// [`WireError::Oversized`] over [`MAX_JOINTS`] joints,
/// [`WireError::BufferTooSmall`] when `buf` cannot hold the frame.
pub fn encode_command(
    buf: &mut [u8],
    session: u64,
    seq: u64,
    tick: u64,
    joints: &[f64],
) -> Result<usize, WireError> {
    let len = encode_header(buf, FrameKind::Command, joints.len(), session, seq, tick)?;
    for (i, v) in joints.iter().enumerate() {
        let at = HEADER_LEN + i * 8;
        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
    Ok(len)
}

/// Encodes an explicit-loss frame (payload-free).
///
/// # Errors
/// [`WireError::BufferTooSmall`] when `buf` is shorter than
/// [`HEADER_LEN`].
pub fn encode_miss(buf: &mut [u8], session: u64, seq: u64, tick: u64) -> Result<usize, WireError> {
    encode_header(buf, FrameKind::Miss, 0, session, seq, tick)
}

/// Encodes a telemetry/ack frame: `ack` is the cumulative settled-slot
/// watermark, `tick` the session's slot clock.
///
/// # Errors
/// [`WireError::BufferTooSmall`] when `buf` is shorter than
/// [`HEADER_LEN`].
pub fn encode_telemetry(
    buf: &mut [u8],
    session: u64,
    ack: u64,
    tick: u64,
) -> Result<usize, WireError> {
    encode_header(buf, FrameKind::Telemetry, 0, session, ack, tick)
}

/// Decodes one frame from `buf` (which must hold exactly one frame —
/// the datagram boundary is the frame boundary).
///
/// # Errors
/// A typed [`WireError`] for every malformed shape; never panics.
pub fn decode(buf: &[u8]) -> Result<Frame<'_>, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            need: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf[0..4]);
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if buf[4] != WIRE_VERSION {
        return Err(WireError::Version {
            found: buf[4],
            expected: WIRE_VERSION,
        });
    }
    let kind = FrameKind::from_byte(buf[5]).ok_or(WireError::UnknownKind { found: buf[5] })?;
    let dims = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes")) as usize;
    if dims > MAX_JOINTS {
        return Err(WireError::Oversized {
            dims,
            max: MAX_JOINTS,
        });
    }
    let expect = HEADER_LEN + dims * 8;
    if buf.len() < expect {
        return Err(WireError::Truncated {
            need: expect,
            got: buf.len(),
        });
    }
    if buf.len() > expect {
        return Err(WireError::TrailingBytes {
            expect,
            got: buf.len(),
        });
    }
    Ok(Frame {
        kind,
        session: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        seq: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        tick: u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes")),
        payload: &buf[HEADER_LEN..expect],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trip_is_bit_exact() {
        let joints = [0.1, -2.5, f64::MIN_POSITIVE, -0.0, 1.0e300, f64::NAN];
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_command(&mut buf, 42, 7, 9, &joints).unwrap();
        assert_eq!(len, HEADER_LEN + joints.len() * 8);
        let frame = decode(&buf[..len]).unwrap();
        assert_eq!(frame.kind, FrameKind::Command);
        assert_eq!((frame.session, frame.seq, frame.tick), (42, 7, 9));
        assert_eq!(frame.dims(), joints.len());
        for (a, b) in frame.joints().zip(joints) {
            assert_eq!(a.to_bits(), b.to_bits(), "payload must be bit-exact");
        }
    }

    #[test]
    fn miss_and_telemetry_are_payload_free() {
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_miss(&mut buf, 1, 2, 3).unwrap();
        assert_eq!(len, HEADER_LEN);
        assert_eq!(decode(&buf[..len]).unwrap().kind, FrameKind::Miss);
        let len = encode_telemetry(&mut buf, 1, 100, 99).unwrap();
        let frame = decode(&buf[..len]).unwrap();
        assert_eq!(frame.kind, FrameKind::Telemetry);
        assert_eq!(frame.seq, 100);
        assert_eq!(frame.dims(), 0);
    }

    #[test]
    fn malformed_frames_reject_with_typed_errors() {
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_command(&mut buf, 5, 6, 7, &[1.0, 2.0]).unwrap();

        assert!(matches!(
            decode(&buf[..HEADER_LEN - 1]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&buf[..len - 3]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&buf[..len + 8]),
            Err(WireError::TrailingBytes { .. })
        ));

        let mut bad = buf;
        bad[0] = b'X';
        assert!(matches!(
            decode(&bad[..len]),
            Err(WireError::BadMagic { .. })
        ));

        let mut bad = buf;
        bad[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode(&bad[..len]),
            Err(WireError::Version {
                found: WIRE_VERSION + 1,
                expected: WIRE_VERSION
            })
        );

        let mut bad = buf;
        bad[5] = 0xEE;
        assert!(matches!(
            decode(&bad[..len]),
            Err(WireError::UnknownKind { found: 0xEE })
        ));

        let mut bad = buf;
        bad[6..8].copy_from_slice(&(MAX_JOINTS as u16 + 1).to_le_bytes());
        assert!(matches!(
            decode(&bad[..len]),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn oversized_and_tiny_buffers_reject_on_encode() {
        let joints = vec![0.0; MAX_JOINTS + 1];
        let mut buf = [0u8; MAX_FRAME];
        assert!(matches!(
            encode_command(&mut buf, 0, 0, 0, &joints),
            Err(WireError::Oversized { .. })
        ));
        let mut tiny = [0u8; 10];
        let err = encode_miss(&mut tiny, 0, 0, 0).unwrap_err();
        assert!(matches!(err, WireError::BufferTooSmall { need: 32, .. }));
        // Errors are boxable std errors for callers.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("too small"));
    }
}
