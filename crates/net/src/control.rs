//! The TCP control plane: length-prefixed request/response messages for
//! everything that is not per-tick traffic — attach (open), detach
//! (close + final report), checkpoint (snapshot), revive (adopt),
//! ingress stats, durable event subscriptions, and the Prometheus
//! metrics endpoint.
//!
//! # Framing
//!
//! A connection opens with a 5-byte handshake (`WIRE_MAGIC` +
//! [`CONTROL_VERSION`], echoed by the server — the same versioning gate
//! as the data plane). Every message after that is `u32` little-endian
//! length + a [`ControlRequest`] / [`ControlResponse`] payload. Most
//! verbs are JSON; the v3 checkpoint verbs
//! ([`ControlRequest::SnapshotBin`] / [`ControlRequest::AdoptBin`] and
//! the [`ControlResponse::SnapshotBin`] reply) are compact binary
//! payloads — a 4-byte magic, a kind byte, and the snapshot's binary
//! frame verbatim, so checkpoints cross the wire with zero base64/JSON
//! inflation. One leading byte disambiguates (JSON opens with `{`).
//!
//! # Versioning
//!
//! Control protocol **v2** added [`ControlRequest::Subscribe`] /
//! [`ControlRequest::PollEvents`] / [`ControlRequest::Unsubscribe`] /
//! [`ControlRequest::Metrics`], their responses, and the typed
//! [`RejectCode`] on [`ControlResponse::Rejected`]. **v3** added the
//! opaque-binary checkpoint verbs. Per the versioning invariant, legacy
//! decode is kept explicitly: the server accepts a v1/v2 hello and
//! echoes the *client's* version back (old operators keep speaking
//! their dialect — every v1 message is a valid v3 message, a `Rejected`
//! without a `code` field decodes as [`RejectCode::Unknown`] on modern
//! clients, and the legacy JSON `Snapshot`/`Adopt` verbs still work;
//! `Adopt`/`AdoptBin` both sniff the snapshot bytes, so v2-era JSON
//! checkpoints revive on a v3 server).
//!
//! The server side ([`ControlCore`]) is transport-agnostic: the TCP
//! connection handler and the in-process loopback control both call
//! [`ControlCore::execute`] — one implementation, two transports,
//! mirroring the data plane's design.

use crate::gateway::{EventHub, GatewayConfig};
use crate::ingress::IngressState;
use crate::wire::WIRE_MAGIC;
use crate::NetError;
use foreco_serve::{
    render_prometheus, IngressSummary, ServiceError, ServiceHandle, SessionId, SessionReport,
    SessionSnapshot, SessionSpec, SourceSpec, SourceState,
};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

/// Hard cap on one control message (a snapshot of a long scripted
/// session is the largest legitimate payload).
pub const MAX_CONTROL_MSG: usize = 64 << 20;

/// Control-plane protocol version spoken by this build. Distinct from
/// the data plane's `WIRE_VERSION`: v2 added event subscriptions, the
/// metrics endpoint, and typed reject codes; v3 added the opaque-binary
/// checkpoint verbs ([`ControlRequest::SnapshotBin`] /
/// [`ControlRequest::AdoptBin`]) so snapshot payloads travel as raw
/// bytes instead of JSON-inflated text (see the module docs for the
/// compatibility rules).
pub const CONTROL_VERSION: u8 = 3;

/// Leading magic of a binary control payload (the v3 checkpoint verbs).
/// JSON payloads open with `{`, so one byte disambiguates.
pub(crate) const CONTROL_BIN_MAGIC: [u8; 4] = *b"FCTL";

/// Operator→gateway control messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Attach: materialise a gated session for this operator. The
    /// gateway supplies the recovery/channel template; the operator
    /// supplies identity, start pose, and inbox bound.
    Open {
        /// Session id (also the shard-placement input).
        id: SessionId,
        /// Start pose both ends agree on.
        initial: Vec<f64>,
        /// Queued-command bound (overflow drops become losses).
        inbox_capacity: usize,
    },
    /// Detach: flush the data plane, drain the session, return its
    /// final report and ingress counters.
    Close {
        /// Session id.
        id: SessionId,
    },
    /// Checkpoint the live session; the response carries the snapshot's
    /// portable JSON form.
    Snapshot {
        /// Session id.
        id: SessionId,
    },
    /// Revive a checkpointed session (e.g. across a gateway restart)
    /// and re-attach its data plane at the snapshot's slot watermark.
    Adopt {
        /// Snapshot JSON as produced by [`ControlResponse::Snapshot`].
        snapshot: String,
    },
    /// Checkpoint the live session with the response as an opaque
    /// binary snapshot frame (v3) — no JSON inflation; the payload is
    /// `SessionSnapshot::to_bytes` verbatim. Travels as a binary
    /// control payload, never JSON.
    SnapshotBin {
        /// Session id.
        id: SessionId,
    },
    /// Revive a checkpointed session from its opaque byte form (v3).
    /// The server sniffs the payload, so legacy JSON snapshots adopt
    /// through this verb too.
    AdoptBin {
        /// Snapshot bytes as produced by [`ControlResponse::SnapshotBin`]
        /// (or any `SessionSnapshot::to_bytes` / `to_json_bytes` form).
        snapshot: Vec<u8>,
    },
    /// The session's current ingress counters.
    Stats {
        /// Session id.
        id: SessionId,
    },
    /// Register a durable fleet-event subscription (v2). The server
    /// starts queueing lifecycle events ([`FleetEvent`]) and enables
    /// park-level narration fleet-wide while any subscription is live.
    Subscribe {
        /// `true`: after the [`ControlResponse::Subscribed`] reply the
        /// server dedicates this TCP connection to pushing
        /// [`ControlResponse::Event`] frames until it closes. `false`
        /// (and every loopback transport): drain with
        /// [`ControlRequest::PollEvents`] instead.
        stream: bool,
    },
    /// Drain queued events from a poll-mode subscription (v2).
    PollEvents {
        /// Subscription id from [`ControlResponse::Subscribed`].
        subscription: u64,
        /// Upper bound on events returned in one reply.
        max: usize,
    },
    /// Tear a subscription down (v2). Stream-mode subscriptions end
    /// with their connection instead.
    Unsubscribe {
        /// Subscription id from [`ControlResponse::Subscribed`].
        subscription: u64,
    },
    /// The fleet's live telemetry in the Prometheus text exposition
    /// format (v2): per-shard counters, scheduler load, cumulative
    /// ingress totals, completed-session RMSE quantiles.
    Metrics,
}

/// Gateway→operator control replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlResponse {
    /// The session is live; start streaming datagrams at slot 0.
    Opened {
        /// Session id.
        id: SessionId,
    },
    /// The session drained and reported.
    Closed {
        /// Session id.
        id: SessionId,
        /// Final engine-side accounting.
        report: SessionReport,
        /// Final wire-side accounting.
        ingress: IngressSummary,
    },
    /// The checkpoint, as portable JSON.
    Snapshot {
        /// Session id.
        id: SessionId,
        /// `SessionSnapshot::to_bytes` content (UTF-8 JSON).
        snapshot: String,
    },
    /// The checkpoint as an opaque binary frame (v3; travels as a
    /// binary control payload, never JSON).
    SnapshotBin {
        /// Session id.
        id: SessionId,
        /// `SessionSnapshot::to_bytes` content, verbatim.
        snapshot: Vec<u8>,
    },
    /// The snapshot was revived; stream datagrams from `next_slot`.
    Adopted {
        /// Session id.
        id: SessionId,
        /// Virtual tick the session resumed at.
        tick: u64,
        /// The data-plane watermark: the next sequence number to send.
        next_slot: u64,
    },
    /// Current ingress counters.
    Stats {
        /// The counters.
        ingress: IngressSummary,
    },
    /// The subscription is live (v2).
    Subscribed {
        /// Id to poll/unsubscribe with.
        subscription: u64,
    },
    /// The subscription was torn down (v2).
    Unsubscribed {
        /// The removed id.
        subscription: u64,
    },
    /// One batch of queued events (v2, poll mode).
    Events {
        /// Oldest-first drained events.
        events: Vec<FleetEvent>,
        /// Events evicted from the subscription's bounded queue since
        /// the previous poll (cumulative loss signal, reset per reply).
        dropped: u64,
    },
    /// One pushed event (v2, stream mode). Never a reply to a request —
    /// only sent on a connection dedicated by
    /// `Subscribe { stream: true }`.
    Event {
        /// The event.
        event: FleetEvent,
    },
    /// The metrics scrape body (v2).
    Metrics {
        /// Prometheus text exposition format, UTF-8.
        body: String,
    },
    /// The request could not be honoured; nothing changed.
    Rejected {
        /// Machine-readable cause (v2; decodes as
        /// [`RejectCode::Unknown`] from v1 peers that omit it).
        code: RejectCode,
        /// Human-readable cause.
        reason: String,
    },
}

/// A lifecycle event published to control-plane subscribers. Mapped
/// from the service's `SessionEvent` stream by the gateway's event
/// pump; snapshot payloads are deliberately elided (checkpoints travel
/// on the request path, not the firehose).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A session was materialised.
    Opened {
        /// Session id.
        id: SessionId,
        /// Owning shard.
        shard: usize,
    },
    /// A session ran to completion.
    Completed {
        /// Session id.
        id: SessionId,
        /// Final per-session accounting.
        report: SessionReport,
    },
    /// A session was checkpointed (payload elided).
    Snapshotted {
        /// Session id.
        id: SessionId,
        /// Owning shard.
        shard: usize,
    },
    /// A session left its shard mid-migration.
    Migrated {
        /// Session id.
        id: SessionId,
        /// Shard it left.
        from: usize,
        /// Shard it is moving to.
        to: usize,
    },
    /// A session parked at a verified idle fixed point. Emitted only
    /// while a subscription is live (park-level narration is gated by
    /// the fleet's observer count — see `foreco_serve::telemetry`).
    Parked {
        /// Session id.
        id: SessionId,
        /// Shard it parked on.
        shard: usize,
    },
    /// A session was rehydrated from a snapshot (adopt, or the resume
    /// half of a migration).
    Adopted {
        /// Session id.
        id: SessionId,
        /// Shard now owning it.
        shard: usize,
        /// Virtual tick it resumed at.
        tick: u64,
    },
    /// A command was dropped on a full inbox (a loss event the
    /// session's recovery engine covers).
    Dropped {
        /// Session id.
        id: SessionId,
        /// The session's virtual tick at drop time.
        tick: u64,
    },
}

/// Machine-readable rejection causes (v2). Serialised as the variant
/// name; anything unrecognised — including the absent field in a v1
/// `Rejected` payload — decodes as [`RejectCode::Unknown`], so old and
/// new peers interoperate without negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RejectCode {
    /// Malformed or invalid request parameters (wrong pose dims, zero
    /// inbox, undecodable payload, bad snapshot JSON, …).
    BadRequest,
    /// An open/adopt reused a live session's id.
    DuplicateSession,
    /// The target session is unknown to (or not attached to) the
    /// gateway.
    UnknownSession,
    /// The service did not answer within the control timeout.
    Timeout,
    /// The session exists but its state cannot be exported.
    SnapshotFailed,
    /// The snapshot could not be rehydrated.
    RestoreFailed,
    /// The service's control channel is full; retry.
    Backpressure,
    /// The fronted service is terminating.
    Unavailable,
    /// A v1 peer's rejection (no code on the wire), or a code minted by
    /// a newer protocol than this build speaks.
    Unknown,
}

// Hand-written so a missing field (`Value::Null` under the vendored
// serde's missing-field convention) and unrecognised names both decode
// as `Unknown` — the `#[serde(default)]`-style behaviour the
// versioning invariant requires, without attribute support in the
// offline derive shim.
impl Deserialize for RejectCode {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(match v {
            serde::Value::String(s) => match s.as_str() {
                "BadRequest" => RejectCode::BadRequest,
                "DuplicateSession" => RejectCode::DuplicateSession,
                "UnknownSession" => RejectCode::UnknownSession,
                "Timeout" => RejectCode::Timeout,
                "SnapshotFailed" => RejectCode::SnapshotFailed,
                "RestoreFailed" => RejectCode::RestoreFailed,
                "Backpressure" => RejectCode::Backpressure,
                "Unavailable" => RejectCode::Unavailable,
                _ => RejectCode::Unknown,
            },
            _ => RejectCode::Unknown,
        })
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A typed rejection in flight inside the gateway (hub waits, control
/// handlers) before it becomes a [`ControlResponse::Rejected`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Reject {
    pub(crate) code: RejectCode,
    pub(crate) reason: String,
}

impl Reject {
    pub(crate) fn new(code: RejectCode, reason: impl Into<String>) -> Self {
        Self {
            code,
            reason: reason.into(),
        }
    }

    /// Maps a `ServiceHandle` send failure onto a wire code.
    pub(crate) fn service(context: &str, e: ServiceError) -> Self {
        let code = match e {
            ServiceError::Backpressure => RejectCode::Backpressure,
            ServiceError::Disconnected => RejectCode::Unavailable,
            ServiceError::NoSuchShard { .. } | ServiceError::CorruptArchive { .. } => {
                RejectCode::BadRequest
            }
        };
        Self::new(code, format!("service rejected {context}: {e}"))
    }
}

impl From<Reject> for ControlResponse {
    fn from(r: Reject) -> Self {
        ControlResponse::Rejected {
            code: r.code,
            reason: r.reason,
        }
    }
}

/// Writes the 5-byte protocol handshake at this build's version.
pub fn write_hello<W: Write>(w: &mut W) -> std::io::Result<()> {
    write_hello_version(w, CONTROL_VERSION)
}

/// Writes the 5-byte handshake at an explicit version (the server
/// echoes the *client's* version so v1 operators keep speaking v1).
pub fn write_hello_version<W: Write>(w: &mut W, version: u8) -> std::io::Result<()> {
    let mut hello = [0u8; 5];
    hello[..4].copy_from_slice(&WIRE_MAGIC);
    hello[4] = version;
    w.write_all(&hello)
}

/// Reads and validates the 5-byte protocol handshake, returning the
/// negotiated version (1 ..= [`CONTROL_VERSION`]).
pub fn read_hello<R: Read>(r: &mut R) -> Result<u8, NetError> {
    let mut hello = [0u8; 5];
    r.read_exact(&mut hello).map_err(NetError::Io)?;
    if hello[..4] != WIRE_MAGIC {
        return Err(NetError::Protocol("control handshake: bad magic".into()));
    }
    if hello[4] == 0 || hello[4] > CONTROL_VERSION {
        return Err(NetError::Protocol(format!(
            "control handshake: version {} (this build speaks 1..={CONTROL_VERSION})",
            hello[4]
        )));
    }
    Ok(hello[4])
}

/// Writes one length-prefixed message.
pub fn write_msg<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed message (bounded by [`MAX_CONTROL_MSG`]).
pub fn read_msg<R: Read>(r: &mut R) -> Result<Vec<u8>, NetError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(NetError::Io)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_CONTROL_MSG {
        return Err(NetError::Protocol(format!(
            "control message of {len} bytes exceeds the {MAX_CONTROL_MSG}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(NetError::Io)?;
    Ok(payload)
}

/// The transport-agnostic control-plane executor (shared by every TCP
/// connection handler and the loopback control).
#[derive(Clone)]
pub struct ControlCore {
    pub(crate) handle: ServiceHandle,
    pub(crate) ingress: Arc<Mutex<IngressState>>,
    pub(crate) hub: Arc<EventHub>,
    pub(crate) cfg: Arc<GatewayConfig>,
    pub(crate) dof: usize,
}

impl ControlCore {
    /// Executes one control request against the service.
    pub fn execute(&self, request: ControlRequest) -> ControlResponse {
        match request {
            ControlRequest::Open {
                id,
                initial,
                inbox_capacity,
            } => self.open(id, initial, inbox_capacity),
            ControlRequest::Close { id } => self.close(id),
            ControlRequest::Snapshot { id } => self.snapshot(id, false),
            ControlRequest::SnapshotBin { id } => self.snapshot(id, true),
            ControlRequest::Adopt { snapshot } => self.adopt(snapshot.as_bytes()),
            ControlRequest::AdoptBin { snapshot } => self.adopt(&snapshot),
            ControlRequest::Stats { id } => match self.ingress.lock().expect("ingress").summary(id)
            {
                Some(ingress) => ControlResponse::Stats { ingress },
                None => Reject::new(
                    RejectCode::UnknownSession,
                    format!("session {id} is not attached"),
                )
                .into(),
            },
            ControlRequest::Subscribe { .. } => {
                // The `stream` flag is a transport concern: the TCP
                // handler dedicates its connection after this reply;
                // loopback (and poll-mode TCP) subscriptions drain via
                // PollEvents. Either way the registration — and the
                // fleet-wide observer it enables — is identical.
                let subscription = self.hub.subscribe();
                self.handle.attach_observer();
                ControlResponse::Subscribed { subscription }
            }
            ControlRequest::PollEvents { subscription, max } => {
                match self.hub.poll_events(subscription, max) {
                    Ok((events, dropped)) => ControlResponse::Events { events, dropped },
                    Err(r) => r.into(),
                }
            }
            ControlRequest::Unsubscribe { subscription } => {
                if self.release_subscription(subscription) {
                    ControlResponse::Unsubscribed { subscription }
                } else {
                    Reject::new(
                        RejectCode::UnknownSession,
                        format!("no subscription {subscription}"),
                    )
                    .into()
                }
            }
            ControlRequest::Metrics => self.metrics(),
        }
    }

    /// Removes a subscription and, if it existed, its fleet-wide
    /// lifecycle observer. Also called by the TCP handler when a
    /// connection owning subscriptions disconnects.
    pub(crate) fn release_subscription(&self, subscription: u64) -> bool {
        let removed = self.hub.unsubscribe(subscription);
        if removed {
            self.handle.detach_observer();
        }
        removed
    }

    /// Renders the fleet's live telemetry as Prometheus text. All the
    /// allocation happens here, in the control plane — the shards only
    /// ever touched relaxed atomics (the observability discipline).
    fn metrics(&self) -> ControlResponse {
        let mut fleet = self.handle.telemetry();
        fleet.ingress = self.ingress.lock().expect("ingress").totals();
        let rmse = self.hub.rmse_summary();
        ControlResponse::Metrics {
            body: render_prometheus(&fleet, rmse.as_ref()),
        }
    }

    fn open(&self, id: SessionId, initial: Vec<f64>, inbox_capacity: usize) -> ControlResponse {
        if initial.len() != self.dof {
            return Reject::new(
                RejectCode::BadRequest,
                format!(
                    "initial pose has {} joints, the arm has {}",
                    initial.len(),
                    self.dof
                ),
            )
            .into();
        }
        if inbox_capacity == 0 {
            return Reject::new(RejectCode::BadRequest, "inbox capacity must be ≥ 1").into();
        }
        let spec = SessionSpec::new(
            id,
            SourceSpec::Gated {
                initial,
                inbox_capacity,
            },
            self.cfg.channel.clone(),
            self.cfg.recovery.clone(),
        );
        if let Err(e) = self.handle.open(spec) {
            return Reject::service("open", e).into();
        }
        match self.hub.wait_opened(id, self.cfg.control_timeout) {
            Ok(()) => {
                self.ingress.lock().expect("ingress").attach(id, 0);
                ControlResponse::Opened { id }
            }
            Err(reject) => reject.into(),
        }
    }

    fn close(&self, id: SessionId) -> ControlResponse {
        // Flush but stay attached: `Rejected` promises "nothing
        // changed", so the session must survive a failed close for the
        // operator to retry. The flush is re-attempted without holding
        // the ingress lock across shard backpressure — one session's
        // close must never stall the whole data plane.
        loop {
            let flushed = {
                let mut state = self.ingress.lock().expect("ingress");
                if state.summary(id).is_none() {
                    return Reject::new(
                        RejectCode::UnknownSession,
                        format!("session {id} is not attached"),
                    )
                    .into();
                }
                state.try_flush(id)
            };
            if flushed {
                break;
            }
            std::thread::yield_now();
        }
        // Purge any stale UnknownSession leftover (a retransmitted
        // datagram racing an earlier teardown) before the close is
        // issued — its genuine answer must not be confused with it.
        self.hub.forget_unknown(id);
        if let Err(e) = self.handle.close(id) {
            return Reject::service("close", e).into();
        }
        match self.hub.wait_report(id, self.cfg.control_timeout) {
            Ok(report) => {
                let ingress = self
                    .ingress
                    .lock()
                    .expect("ingress")
                    .detach(id)
                    .expect("session was attached above");
                // The session is finished end to end: drop its hub
                // bookkeeping so a long-lived gateway stays O(live).
                self.hub.purge(id);
                ControlResponse::Closed {
                    id,
                    report,
                    ingress,
                }
            }
            // The report may still arrive; the hub keeps it for a
            // retried Close, and the session stays attached meanwhile.
            Err(reject) => reject.into(),
        }
    }

    fn snapshot(&self, id: SessionId, binary: bool) -> ControlResponse {
        // Land any loss verdicts parked on shard backpressure first:
        // the checkpoint's queue must reflect every verdict the ingress
        // watermark has issued, or the adopt-side slot arithmetic would
        // resume below where the wire's acks already reached.
        while !self.ingress.lock().expect("ingress").try_settle(id) {
            std::thread::yield_now();
        }
        self.hub.forget_unknown(id);
        if let Err(e) = self.handle.snapshot(id) {
            return Reject::service("snapshot", e).into();
        }
        match self.hub.wait_snapshot(id, self.cfg.control_timeout) {
            // The v3 verb ships the binary frame verbatim; the legacy
            // verb keeps its JSON contract for pre-v3 operators.
            Ok(snapshot) if binary => ControlResponse::SnapshotBin {
                id,
                snapshot: snapshot.to_bytes(),
            },
            Ok(snapshot) => ControlResponse::Snapshot {
                id,
                snapshot: String::from_utf8(snapshot.to_json_bytes())
                    .expect("snapshot JSON is UTF-8"),
            },
            Err(reject) => reject.into(),
        }
    }

    fn adopt(&self, snapshot_bytes: &[u8]) -> ControlResponse {
        let snapshot = match SessionSnapshot::from_bytes(snapshot_bytes) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                return Reject::new(RejectCode::BadRequest, format!("snapshot rejected: {e}"))
                    .into()
            }
        };
        let id = snapshot.id;
        // The data-plane watermark resumes at the snapshot's settled
        // slot count: consumed ticks plus still-queued tick-consuming
        // slots (late patches ride between ticks and consume none).
        let next_slot = match &snapshot.source {
            SourceState::Gated { inbox, .. } => {
                let queued = inbox.queue.iter().try_fold(0u64, |acc, s| {
                    acc.checked_add(match s {
                        foreco_serve::GatedSlot::Late { .. } => 0,
                        foreco_serve::GatedSlot::Miss { count } => *count,
                        foreco_serve::GatedSlot::Command(_) => 1,
                    })
                });
                match queued.and_then(|q| snapshot.tick.checked_add(q)) {
                    Some(next_slot) => next_slot,
                    None => {
                        return Reject::new(
                            RejectCode::BadRequest,
                            "snapshot slot arithmetic overflows",
                        )
                        .into()
                    }
                }
            }
            _ => {
                return Reject::new(
                    RejectCode::BadRequest,
                    "only gated (socket-ingress) sessions attach to the gateway",
                )
                .into()
            }
        };
        if let Err(e) = self.handle.adopt(snapshot) {
            return Reject::service("adopt", e).into();
        }
        match self.hub.wait_restored(id, self.cfg.control_timeout) {
            Ok(tick) => {
                self.ingress.lock().expect("ingress").attach(id, next_slot);
                ControlResponse::Adopted {
                    id,
                    tick,
                    next_slot,
                }
            }
            Err(reject) => reject.into(),
        }
    }
}

/// Serialises a control message to its JSON wire payload.
pub(crate) fn to_payload<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("control messages serialise infallibly")
        .into_bytes()
}

/// Parses a control payload.
pub(crate) fn from_payload<T: Deserialize>(payload: &[u8]) -> Result<T, NetError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| NetError::Protocol("control payload is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| NetError::Protocol(format!("control payload: {e}")))
}

// Binary payload kinds (v3). One byte after `CONTROL_BIN_MAGIC`; the
// snapshot bytes inside are opaque to this layer.
const BIN_SNAPSHOT_REQ: u8 = 1;
const BIN_ADOPT_REQ: u8 = 2;
const BIN_SNAPSHOT_RESP: u8 = 3;

fn bin_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + body.len());
    payload.extend_from_slice(&CONTROL_BIN_MAGIC);
    payload.push(kind);
    payload.extend_from_slice(body);
    payload
}

fn bin_body(payload: &[u8]) -> Option<(u8, &[u8])> {
    if payload.len() < 5 || payload[..4] != CONTROL_BIN_MAGIC {
        return None;
    }
    Some((payload[4], &payload[5..]))
}

fn bin_u64(body: &[u8], what: &str) -> Result<u64, NetError> {
    let bytes: [u8; 8] = body
        .try_into()
        .map_err(|_| NetError::Protocol(format!("{what}: expected 8 bytes, got {}", body.len())))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Serialises a control request: the v3 checkpoint verbs become compact
/// binary payloads (magic + kind + raw bytes — no base64/JSON
/// inflation), everything else stays JSON.
pub(crate) fn encode_request(request: &ControlRequest) -> Vec<u8> {
    match request {
        ControlRequest::SnapshotBin { id } => bin_frame(BIN_SNAPSHOT_REQ, &id.to_le_bytes()),
        ControlRequest::AdoptBin { snapshot } => bin_frame(BIN_ADOPT_REQ, snapshot),
        _ => to_payload(request),
    }
}

/// Parses a control request — binary v3 payloads by magic, JSON
/// otherwise.
pub(crate) fn decode_request(payload: &[u8]) -> Result<ControlRequest, NetError> {
    match bin_body(payload) {
        Some((BIN_SNAPSHOT_REQ, body)) => Ok(ControlRequest::SnapshotBin {
            id: bin_u64(body, "SnapshotBin request")?,
        }),
        Some((BIN_ADOPT_REQ, body)) => Ok(ControlRequest::AdoptBin {
            snapshot: body.to_vec(),
        }),
        Some((kind, _)) => Err(NetError::Protocol(format!(
            "binary control request: unknown kind {kind}"
        ))),
        None => from_payload(payload),
    }
}

/// Serialises a control response (binary for [`ControlResponse::SnapshotBin`],
/// JSON otherwise).
pub(crate) fn encode_response(response: &ControlResponse) -> Vec<u8> {
    match response {
        ControlResponse::SnapshotBin { id, snapshot } => {
            let mut body = Vec::with_capacity(8 + snapshot.len());
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(snapshot);
            bin_frame(BIN_SNAPSHOT_RESP, &body)
        }
        _ => to_payload(response),
    }
}

/// Parses a control response — binary v3 payloads by magic, JSON
/// otherwise.
pub(crate) fn decode_response(payload: &[u8]) -> Result<ControlResponse, NetError> {
    match bin_body(payload) {
        Some((BIN_SNAPSHOT_RESP, body)) => {
            if body.len() < 8 {
                return Err(NetError::Protocol(
                    "SnapshotBin response: truncated id".into(),
                ));
            }
            Ok(ControlResponse::SnapshotBin {
                id: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                snapshot: body[8..].to_vec(),
            })
        }
        Some((kind, _)) => Err(NetError::Protocol(format!(
            "binary control response: unknown kind {kind}"
        ))),
        None => from_payload(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_rejected_payload_decodes_with_unknown_code() {
        // A v1 peer sends Rejected with only `reason`; the absent code
        // field must decode as Unknown, not fail.
        let legacy = br#"{"Rejected":{"reason":"no such session"}}"#;
        let response: ControlResponse = from_payload(legacy).expect("legacy decode");
        assert_eq!(
            response,
            ControlResponse::Rejected {
                code: RejectCode::Unknown,
                reason: "no such session".into(),
            }
        );
    }

    #[test]
    fn unknown_reject_code_names_decode_as_unknown() {
        let future = br#"{"Rejected":{"code":"QuotaExceeded","reason":"x"}}"#;
        let response: ControlResponse = from_payload(future).expect("forward decode");
        let ControlResponse::Rejected { code, .. } = response else {
            panic!("expected Rejected");
        };
        assert_eq!(code, RejectCode::Unknown);
    }

    #[test]
    fn typed_rejects_round_trip() {
        let response = ControlResponse::Rejected {
            code: RejectCode::DuplicateSession,
            reason: "session 7 already exists".into(),
        };
        let decoded: ControlResponse =
            from_payload(&to_payload(&response)).expect("round trip decode");
        assert_eq!(decoded, response);
    }

    #[test]
    fn hello_negotiates_both_versions() {
        for version in [1u8, CONTROL_VERSION] {
            let mut wire = Vec::new();
            write_hello_version(&mut wire, version).unwrap();
            let got = read_hello(&mut wire.as_slice()).expect("accept version");
            assert_eq!(got, version);
        }
        let mut wire = Vec::new();
        write_hello_version(&mut wire, CONTROL_VERSION + 1).unwrap();
        assert!(read_hello(&mut wire.as_slice()).is_err(), "future version");
        let mut wire = Vec::new();
        write_hello_version(&mut wire, 0).unwrap();
        assert!(read_hello(&mut wire.as_slice()).is_err(), "version zero");
    }

    #[test]
    fn fleet_events_round_trip_the_wire_codec() {
        let events = vec![
            FleetEvent::Opened { id: 1, shard: 0 },
            FleetEvent::Parked { id: 1, shard: 0 },
            FleetEvent::Migrated {
                id: 1,
                from: 0,
                to: 3,
            },
            FleetEvent::Dropped { id: 2, tick: 40 },
        ];
        let response = ControlResponse::Events {
            events: events.clone(),
            dropped: 5,
        };
        let decoded: ControlResponse = from_payload(&to_payload(&response)).expect("decode");
        assert_eq!(decoded, response);
    }
}
