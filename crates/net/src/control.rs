//! The TCP control plane: length-prefixed request/response messages for
//! everything that is not per-tick traffic — attach (open), detach
//! (close + final report), checkpoint (snapshot), revive (adopt), and
//! ingress stats.
//!
//! # Framing
//!
//! A connection opens with a 5-byte handshake (`WIRE_MAGIC` +
//! `WIRE_VERSION`, echoed by the server — the same versioning gate as
//! the data plane). Every message after that is `u32` little-endian
//! length + a JSON-encoded [`ControlRequest`] / [`ControlResponse`]
//! (JSON because the heaviest payload — a session snapshot — already
//! *is* the snapshot JSON; wrapping it in a second binary codec would
//! buy nothing).
//!
//! The server side ([`ControlCore`]) is transport-agnostic: the TCP
//! connection handler and the in-process loopback control both call
//! [`ControlCore::execute`] — one implementation, two transports,
//! mirroring the data plane's design.

use crate::gateway::{EventHub, GatewayConfig};
use crate::ingress::IngressState;
use crate::wire::{WIRE_MAGIC, WIRE_VERSION};
use crate::NetError;
use foreco_serve::{
    IngressSummary, ServiceHandle, SessionId, SessionReport, SessionSnapshot, SessionSpec,
    SourceSpec, SourceState,
};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};

/// Hard cap on one control message (a snapshot of a long scripted
/// session is the largest legitimate payload).
pub const MAX_CONTROL_MSG: usize = 64 << 20;

/// Operator→gateway control messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Attach: materialise a gated session for this operator. The
    /// gateway supplies the recovery/channel template; the operator
    /// supplies identity, start pose, and inbox bound.
    Open {
        /// Session id (also the shard-placement input).
        id: SessionId,
        /// Start pose both ends agree on.
        initial: Vec<f64>,
        /// Queued-command bound (overflow drops become losses).
        inbox_capacity: usize,
    },
    /// Detach: flush the data plane, drain the session, return its
    /// final report and ingress counters.
    Close {
        /// Session id.
        id: SessionId,
    },
    /// Checkpoint the live session; the response carries the snapshot's
    /// portable JSON form.
    Snapshot {
        /// Session id.
        id: SessionId,
    },
    /// Revive a checkpointed session (e.g. across a gateway restart)
    /// and re-attach its data plane at the snapshot's slot watermark.
    Adopt {
        /// Snapshot JSON as produced by [`ControlResponse::Snapshot`].
        snapshot: String,
    },
    /// The session's current ingress counters.
    Stats {
        /// Session id.
        id: SessionId,
    },
}

/// Gateway→operator control replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlResponse {
    /// The session is live; start streaming datagrams at slot 0.
    Opened {
        /// Session id.
        id: SessionId,
    },
    /// The session drained and reported.
    Closed {
        /// Session id.
        id: SessionId,
        /// Final engine-side accounting.
        report: SessionReport,
        /// Final wire-side accounting.
        ingress: IngressSummary,
    },
    /// The checkpoint, as portable JSON.
    Snapshot {
        /// Session id.
        id: SessionId,
        /// `SessionSnapshot::to_bytes` content (UTF-8 JSON).
        snapshot: String,
    },
    /// The snapshot was revived; stream datagrams from `next_slot`.
    Adopted {
        /// Session id.
        id: SessionId,
        /// Virtual tick the session resumed at.
        tick: u64,
        /// The data-plane watermark: the next sequence number to send.
        next_slot: u64,
    },
    /// Current ingress counters.
    Stats {
        /// The counters.
        ingress: IngressSummary,
    },
    /// The request could not be honoured; nothing changed.
    Rejected {
        /// Human-readable cause.
        reason: String,
    },
}

/// Writes the 5-byte protocol handshake.
pub fn write_hello<W: Write>(w: &mut W) -> std::io::Result<()> {
    let mut hello = [0u8; 5];
    hello[..4].copy_from_slice(&WIRE_MAGIC);
    hello[4] = WIRE_VERSION;
    w.write_all(&hello)
}

/// Reads and validates the 5-byte protocol handshake.
pub fn read_hello<R: Read>(r: &mut R) -> Result<(), NetError> {
    let mut hello = [0u8; 5];
    r.read_exact(&mut hello).map_err(NetError::Io)?;
    if hello[..4] != WIRE_MAGIC {
        return Err(NetError::Protocol("control handshake: bad magic".into()));
    }
    if hello[4] != WIRE_VERSION {
        return Err(NetError::Protocol(format!(
            "control handshake: version {} (this build speaks {WIRE_VERSION})",
            hello[4]
        )));
    }
    Ok(())
}

/// Writes one length-prefixed message.
pub fn write_msg<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed message (bounded by [`MAX_CONTROL_MSG`]).
pub fn read_msg<R: Read>(r: &mut R) -> Result<Vec<u8>, NetError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(NetError::Io)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_CONTROL_MSG {
        return Err(NetError::Protocol(format!(
            "control message of {len} bytes exceeds the {MAX_CONTROL_MSG}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(NetError::Io)?;
    Ok(payload)
}

/// The transport-agnostic control-plane executor (shared by every TCP
/// connection handler and the loopback control).
#[derive(Clone)]
pub struct ControlCore {
    pub(crate) handle: ServiceHandle,
    pub(crate) ingress: Arc<Mutex<IngressState>>,
    pub(crate) hub: Arc<EventHub>,
    pub(crate) cfg: Arc<GatewayConfig>,
    pub(crate) dof: usize,
}

impl ControlCore {
    /// Executes one control request against the service.
    pub fn execute(&self, request: ControlRequest) -> ControlResponse {
        match request {
            ControlRequest::Open {
                id,
                initial,
                inbox_capacity,
            } => self.open(id, initial, inbox_capacity),
            ControlRequest::Close { id } => self.close(id),
            ControlRequest::Snapshot { id } => self.snapshot(id),
            ControlRequest::Adopt { snapshot } => self.adopt(&snapshot),
            ControlRequest::Stats { id } => match self.ingress.lock().expect("ingress").summary(id)
            {
                Some(ingress) => ControlResponse::Stats { ingress },
                None => reject(format!("session {id} is not attached")),
            },
        }
    }

    fn open(&self, id: SessionId, initial: Vec<f64>, inbox_capacity: usize) -> ControlResponse {
        if initial.len() != self.dof {
            return reject(format!(
                "initial pose has {} joints, the arm has {}",
                initial.len(),
                self.dof
            ));
        }
        if inbox_capacity == 0 {
            return reject("inbox capacity must be ≥ 1".into());
        }
        let spec = SessionSpec::new(
            id,
            SourceSpec::Gated {
                initial,
                inbox_capacity,
            },
            self.cfg.channel.clone(),
            self.cfg.recovery.clone(),
        );
        if let Err(e) = self.handle.open(spec) {
            return reject(format!("service rejected open: {e}"));
        }
        match self.hub.wait_opened(id, self.cfg.control_timeout) {
            Ok(()) => {
                self.ingress.lock().expect("ingress").attach(id, 0);
                ControlResponse::Opened { id }
            }
            Err(reason) => reject(reason),
        }
    }

    fn close(&self, id: SessionId) -> ControlResponse {
        // Flush but stay attached: `Rejected` promises "nothing
        // changed", so the session must survive a failed close for the
        // operator to retry. The flush is re-attempted without holding
        // the ingress lock across shard backpressure — one session's
        // close must never stall the whole data plane.
        loop {
            let flushed = {
                let mut state = self.ingress.lock().expect("ingress");
                if state.summary(id).is_none() {
                    return reject(format!("session {id} is not attached"));
                }
                state.try_flush(id)
            };
            if flushed {
                break;
            }
            std::thread::yield_now();
        }
        // Purge any stale UnknownSession leftover (a retransmitted
        // datagram racing an earlier teardown) before the close is
        // issued — its genuine answer must not be confused with it.
        self.hub.forget_unknown(id);
        if let Err(e) = self.handle.close(id) {
            return reject(format!("service rejected close: {e}"));
        }
        match self.hub.wait_report(id, self.cfg.control_timeout) {
            Ok(report) => {
                let ingress = self
                    .ingress
                    .lock()
                    .expect("ingress")
                    .detach(id)
                    .expect("session was attached above");
                // The session is finished end to end: drop its hub
                // bookkeeping so a long-lived gateway stays O(live).
                self.hub.purge(id);
                ControlResponse::Closed {
                    id,
                    report,
                    ingress,
                }
            }
            // The report may still arrive; the hub keeps it for a
            // retried Close, and the session stays attached meanwhile.
            Err(reason) => reject(reason),
        }
    }

    fn snapshot(&self, id: SessionId) -> ControlResponse {
        // Land any loss verdicts parked on shard backpressure first:
        // the checkpoint's queue must reflect every verdict the ingress
        // watermark has issued, or the adopt-side slot arithmetic would
        // resume below where the wire's acks already reached.
        while !self.ingress.lock().expect("ingress").try_settle(id) {
            std::thread::yield_now();
        }
        self.hub.forget_unknown(id);
        if let Err(e) = self.handle.snapshot(id) {
            return reject(format!("service rejected snapshot: {e}"));
        }
        match self.hub.wait_snapshot(id, self.cfg.control_timeout) {
            Ok(snapshot) => ControlResponse::Snapshot {
                id,
                snapshot: String::from_utf8(snapshot.to_bytes()).expect("snapshot JSON is UTF-8"),
            },
            Err(reason) => reject(reason),
        }
    }

    fn adopt(&self, snapshot_json: &str) -> ControlResponse {
        let snapshot = match SessionSnapshot::from_bytes(snapshot_json.as_bytes()) {
            Ok(snapshot) => snapshot,
            Err(e) => return reject(format!("snapshot rejected: {e}")),
        };
        let id = snapshot.id;
        // The data-plane watermark resumes at the snapshot's settled
        // slot count: consumed ticks plus still-queued tick-consuming
        // slots (late patches ride between ticks and consume none).
        let next_slot = match &snapshot.source {
            SourceState::Gated { inbox, .. } => {
                let queued = inbox.queue.iter().try_fold(0u64, |acc, s| {
                    acc.checked_add(match s {
                        foreco_serve::GatedSlot::Late { .. } => 0,
                        foreco_serve::GatedSlot::Miss { count } => *count,
                        foreco_serve::GatedSlot::Command(_) => 1,
                    })
                });
                match queued.and_then(|q| snapshot.tick.checked_add(q)) {
                    Some(next_slot) => next_slot,
                    None => return reject("snapshot slot arithmetic overflows".into()),
                }
            }
            _ => {
                return reject("only gated (socket-ingress) sessions attach to the gateway".into())
            }
        };
        if let Err(e) = self.handle.adopt(snapshot) {
            return reject(format!("service rejected adopt: {e}"));
        }
        match self.hub.wait_restored(id, self.cfg.control_timeout) {
            Ok(tick) => {
                self.ingress.lock().expect("ingress").attach(id, next_slot);
                ControlResponse::Adopted {
                    id,
                    tick,
                    next_slot,
                }
            }
            Err(reason) => reject(reason),
        }
    }
}

fn reject(reason: String) -> ControlResponse {
    ControlResponse::Rejected { reason }
}

/// Serialises a control message to its JSON wire payload.
pub(crate) fn to_payload<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("control messages serialise infallibly")
        .into_bytes()
}

/// Parses a control payload.
pub(crate) fn from_payload<T: Deserialize>(payload: &[u8]) -> Result<T, NetError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| NetError::Protocol("control payload is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| NetError::Protocol(format!("control payload: {e}")))
}
