//! The UDP data plane's brain: per-session sequence reassembly turning
//! raw datagrams into the gated slot stream the service consumes.
//!
//! One sequence number = one virtual tick slot. For every attached
//! session the ingress keeps a **delivery watermark** (the next slot to
//! hand the service) and a bounded **reorder buffer** of frames that
//! arrived ahead of it:
//!
//! - an in-order frame delivers immediately
//!   ([`ServiceHandle::try_inject`], the non-blocking hot path — a
//!   bounce is counted and the slot becomes an explicit loss, so a
//!   socket thread never blocks on a shard);
//! - a frame ahead of the watermark waits in the reorder buffer; small
//!   reorderings are healed invisibly (delivered in order);
//! - a gap that stays open for [`IngressConfig::reorder_window`]
//!   subsequent slots is **flushed as lost**
//!   (`ServiceHandle::inject_miss`) — the bounded-wait analogue of the
//!   paper's deadline: a command that hasn't shown up `w` slots later is
//!   as good as gone, and the recovery engine forecasts over it;
//! - a frame arriving for an already-flushed slot is **late** and rides
//!   the §VII-C path (`ServiceHandle::inject_late`): it consumes no
//!   tick, it patches the forecast history with truth;
//! - everything else below the watermark is a retransmission duplicate,
//!   dropped.
//!
//! Every decision depends only on the **arrival order** of frames —
//! never on wall time — which, combined with the gated source's
//! slot-driven clock, is what makes a session's outputs bit-identical
//! across transports (localhost UDP vs in-process loopback) for the
//! same frame sequence.
//!
//! The gateway and the loopback transport share one [`IngressState`]
//! behind a mutex: both run literally this code on every frame.

use crate::wire::{self, FrameKind, HEADER_LEN};
use foreco_serve::{IngressSummary, IngressTotals, ServiceError, ServiceHandle, SessionId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Data-plane knobs.
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// How many slots past a gap may arrive before the gap is flushed as
    /// lost. Larger values heal deeper reordering but delay delivery
    /// behind a genuine loss; it is the wire analogue of the paper's
    /// deadline tolerance `τ`, measured in slots.
    pub reorder_window: u64,
    /// Bound on buffered out-of-order frames per session; a full buffer
    /// drops the incoming frame (it may be retransmitted, or flush as a
    /// loss later).
    pub max_buffer: usize,
    /// How many slots below the watermark a flushed loss stays eligible
    /// for a §VII-C late patch before the bookkeeping is pruned.
    pub late_horizon: u64,
}

impl Default for IngressConfig {
    fn default() -> Self {
        Self {
            reorder_window: 8,
            max_buffer: 256,
            late_horizon: 64,
        }
    }
}

/// Live per-session ingress counters (the mutable twin of
/// [`IngressSummary`]).
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    received: u64,
    delivered: u64,
    lost: u64,
    late: u64,
    reordered: u64,
    duplicates: u64,
    malformed: u64,
    bounced: u64,
}

/// One attached session's reassembly state.
#[derive(Debug)]
struct SessionIngress {
    /// Next slot to deliver to the service.
    next_slot: u64,
    /// Frames ahead of the watermark: seq → command (or `None` for an
    /// explicit client-declared miss).
    buffer: BTreeMap<u64, Option<Vec<f64>>>,
    /// Slots below the watermark flushed as lost, still eligible for a
    /// late patch.
    missed: BTreeSet<u64>,
    /// Highest seq ever seen (reordering detection).
    highest: Option<u64>,
    /// Loss verdicts already accounted (watermark advanced) whose
    /// `inject_miss` bounced on shard backpressure; they must land
    /// before any newer slot delivers.
    pending_misses: u64,
    counters: Counters,
}

impl SessionIngress {
    fn new(start_slot: u64) -> Self {
        Self {
            next_slot: start_slot,
            buffer: BTreeMap::new(),
            missed: BTreeSet::new(),
            highest: None,
            pending_misses: 0,
            counters: Counters::default(),
        }
    }
}

/// The shared data-plane state: every attached session's reassembly
/// machine plus the handle used to inject into the service.
pub(crate) struct IngressState {
    handle: ServiceHandle,
    cfg: IngressConfig,
    /// Joint count every command payload must match.
    dof: usize,
    sessions: HashMap<SessionId, SessionIngress>,
    /// Counters folded in from detached sessions, so fleet-level totals
    /// stay cumulative (and Prometheus counters monotonic) across
    /// session churn.
    retired: IngressTotals,
    /// Datagrams that failed to decode at all (no session attributable).
    pub(crate) undecodable: u64,
    /// Well-formed frames addressed to unattached sessions.
    pub(crate) unknown: u64,
}

impl IngressState {
    pub(crate) fn new(handle: ServiceHandle, cfg: IngressConfig, dof: usize) -> Self {
        Self {
            handle,
            cfg,
            dof,
            sessions: HashMap::new(),
            retired: IngressTotals::default(),
            undecodable: 0,
            unknown: 0,
        }
    }

    /// Registers a session with the data plane; `start_slot` is the next
    /// expected sequence number (0 for a fresh session, the snapshot's
    /// settled-slot count for an adopted one).
    pub(crate) fn attach(&mut self, id: SessionId, start_slot: u64) {
        self.sessions.insert(id, SessionIngress::new(start_slot));
    }

    /// Removes a session from the data plane, returning its final
    /// counter summary (also folded into the cumulative totals).
    pub(crate) fn detach(&mut self, id: SessionId) -> Option<IngressSummary> {
        let summary = self.summary(id);
        if let Some(summary) = &summary {
            self.retired.absorb(summary);
        }
        self.sessions.remove(&id);
        summary
    }

    /// Fleet-cumulative ingress totals: every retired session plus
    /// every live one. Monotonic across churn — the metrics endpoint's
    /// view of the wire.
    pub(crate) fn totals(&self) -> IngressTotals {
        let mut totals = self.retired;
        for session in self.sessions.values() {
            totals.absorb(&IngressSummary {
                session: 0,
                received: session.counters.received,
                delivered: session.counters.delivered,
                lost: session.counters.lost,
                late: session.counters.late,
                reordered: session.counters.reordered,
                duplicates: session.counters.duplicates,
                malformed: session.counters.malformed,
                bounced: session.counters.bounced,
            });
        }
        totals
    }

    /// The per-session counter snapshot.
    pub(crate) fn summary(&self, id: SessionId) -> Option<IngressSummary> {
        self.sessions.get(&id).map(|s| IngressSummary {
            session: id,
            received: s.counters.received,
            delivered: s.counters.delivered,
            lost: s.counters.lost,
            late: s.counters.late,
            reordered: s.counters.reordered,
            duplicates: s.counters.duplicates,
            malformed: s.counters.malformed,
            bounced: s.counters.bounced,
        })
    }

    /// Every attached session's counters, id-ordered.
    pub(crate) fn summaries(&self) -> Vec<IngressSummary> {
        let mut ids: Vec<SessionId> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        ids.iter().filter_map(|&id| self.summary(id)).collect()
    }

    /// Processes one datagram; on a data frame, writes the telemetry ack
    /// into `ack` and returns its length. This is the entire per-frame
    /// code path — the UDP thread and the loopback transport both call
    /// exactly this.
    pub(crate) fn handle_datagram(&mut self, bytes: &[u8], ack: &mut [u8]) -> Option<usize> {
        let frame = match wire::decode(bytes) {
            Ok(frame) => frame,
            Err(_) => {
                self.undecodable += 1;
                return None;
            }
        };
        let id = frame.session;
        let Some(sess) = self.sessions.get_mut(&id) else {
            self.unknown += 1;
            return None;
        };
        match frame.kind {
            // Clients don't send telemetry; tolerate and ignore.
            FrameKind::Telemetry => return None,
            FrameKind::Command | FrameKind::Miss => {}
        }
        sess.counters.received += 1;
        let seq = frame.seq;
        let payload = match frame.kind {
            FrameKind::Command => {
                if frame.dims() != self.dof {
                    // Structurally valid frame, semantically broken
                    // payload: attributable, counted, never delivered.
                    sess.counters.malformed += 1;
                    return ack_for(id, sess, ack);
                }
                Some(frame.joints_vec())
            }
            _ => None,
        };
        if seq < sess.next_slot {
            match payload {
                // The slot was flushed as lost and its command finally
                // showed up: the §VII-C late path. Consumes no tick.
                Some(command) if sess.missed.remove(&seq) => {
                    let age = (sess.next_slot - seq) as usize;
                    sess.counters.late += 1;
                    if self.handle.inject_late(id, command, age).is_err() {
                        // A dropped late patch is a loss staying a loss.
                        sess.counters.bounced += 1;
                    }
                }
                // A late Miss merely confirms what the flush already
                // said — the slot stays patch-eligible in case the real
                // command still resurfaces.
                None if sess.missed.contains(&seq) => {}
                _ => sess.counters.duplicates += 1,
            }
        } else if seq - sess.next_slot > self.cfg.max_buffer as u64 + self.cfg.reorder_window {
            // A structurally valid frame with an absurd sequence jump —
            // a spoofed datagram or a client streaming from the wrong
            // slot. No honest sender under window flow control can run
            // this far ahead, and accepting it would stampede the
            // watermark across the gap (every skipped slot a miss) and
            // turn all later legitimate frames into "duplicates".
            // Reject it like any other malformed frame.
            sess.counters.malformed += 1;
        } else if sess.buffer.contains_key(&seq) {
            sess.counters.duplicates += 1;
        } else if sess.buffer.len() >= self.cfg.max_buffer {
            // Reorder buffer full: drop the frame (bounded memory); the
            // slot will be retransmitted or flushed as lost later.
            sess.counters.bounced += 1;
        } else {
            if sess.highest.is_some_and(|h| seq < h) {
                sess.counters.reordered += 1;
            }
            sess.highest = Some(sess.highest.map_or(seq, |h| h.max(seq)));
            sess.buffer.insert(seq, payload);
        }
        // Drain on every frame — not just inserts — so verdicts parked
        // on shard backpressure are retried by the very next datagram
        // (the client's retransmissions guarantee one arrives).
        Self::drain(&self.handle, &self.cfg, id, sess);
        ack_for(id, sess, ack)
    }

    /// Delivers every slot it can: backlogged loss verdicts first, then
    /// in-order buffered frames, with gaps flushed as lost once the
    /// reorder window has passed them. Fully non-blocking: on shard
    /// backpressure the verdict parks (`pending_misses` / the buffer)
    /// and the next datagram retries — no socket thread ever spins on a
    /// shard while holding the ingress lock.
    fn drain(
        handle: &ServiceHandle,
        cfg: &IngressConfig,
        id: SessionId,
        sess: &mut SessionIngress,
    ) {
        // Loss verdicts whose injection bounced earlier must land before
        // any newer slot, or the timeline would reorder.
        if !Self::settle_pending(handle, id, sess) {
            return;
        }
        loop {
            if let Some(payload) = sess.buffer.remove(&sess.next_slot) {
                if !Self::deliver(handle, id, sess, payload) {
                    break;
                }
            } else {
                let stale = sess
                    .buffer
                    .keys()
                    .next_back()
                    .is_some_and(|&max| max - sess.next_slot >= cfg.reorder_window);
                if !stale {
                    break;
                }
                // The gap outlived the reorder window: declare the slot
                // lost so delivery can resume — and remember it, in case
                // its command still shows up (late path).
                if !Self::flush_lost(handle, id, sess) {
                    break;
                }
            }
        }
        // Bound the late-patch bookkeeping.
        let horizon = sess.next_slot.saturating_sub(cfg.late_horizon);
        while let Some(&oldest) = sess.missed.iter().next() {
            if oldest >= horizon {
                break;
            }
            sess.missed.remove(&oldest);
        }
    }

    /// Injects backlogged miss verdicts; false when backpressure (or a
    /// dead pool) still holds some back.
    fn settle_pending(handle: &ServiceHandle, id: SessionId, sess: &mut SessionIngress) -> bool {
        while sess.pending_misses > 0 {
            match handle.inject_miss(id) {
                Ok(()) => sess.pending_misses -= 1,
                Err(ServiceError::Backpressure) => return false,
                Err(_) => {
                    sess.pending_misses = 0; // pool tearing down
                    return false;
                }
            }
        }
        true
    }

    /// Hands one slot verdict to the service; false when delivery must
    /// pause (backpressure parked a verdict, or the pool is gone).
    /// `Some` is a command — a bounce converts it to a loss, so the hot
    /// path never blocks — and `None` a client-declared miss.
    fn deliver(
        handle: &ServiceHandle,
        id: SessionId,
        sess: &mut SessionIngress,
        payload: Option<Vec<f64>>,
    ) -> bool {
        match payload {
            Some(command) => match handle.try_inject(id, command) {
                Ok(()) => {
                    sess.counters.delivered += 1;
                    sess.next_slot += 1;
                    true
                }
                Err((ServiceError::Backpressure, _)) => {
                    sess.counters.bounced += 1;
                    Self::flush_lost(handle, id, sess)
                }
                Err(_) => false, // pool tearing down; nothing to account
            },
            None => Self::flush_lost(handle, id, sess),
        }
    }

    /// Declares the watermark slot lost and advances past it. The
    /// bookkeeping (counter, late-patch eligibility, watermark) is
    /// immediate; if the miss marker itself bounces it parks in
    /// `pending_misses` (false) and later drains retry it before
    /// touching newer slots.
    fn flush_lost(handle: &ServiceHandle, id: SessionId, sess: &mut SessionIngress) -> bool {
        sess.counters.lost += 1;
        sess.missed.insert(sess.next_slot);
        sess.next_slot += 1;
        match handle.inject_miss(id) {
            Ok(()) => true,
            Err(ServiceError::Backpressure) => {
                sess.pending_misses += 1;
                false
            }
            Err(_) => false, // pool tearing down
        }
    }

    /// One close-time flush attempt: deliver every still-buffered frame
    /// in order with the remaining gaps declared lost, so the session's
    /// slot timeline is complete before it drains and reports. (Slots
    /// behind the last *received* frame are unknowable — the gateway
    /// cannot mourn datagrams it never heard of; the session simply
    /// ends that many ticks earlier, identically on every transport.)
    ///
    /// Non-blocking, like the datagram path: `false` means shard
    /// backpressure parked a verdict — the caller should release the
    /// ingress lock (so the data plane keeps flowing for everyone else)
    /// and retry. An absent session or a dead pool reports `true`:
    /// there is nothing left this flush could ever do.
    pub(crate) fn try_flush(&mut self, id: SessionId) -> bool {
        let Some(sess) = self.sessions.get_mut(&id) else {
            return true;
        };
        if !Self::settle_pending(&self.handle, id, sess) {
            return sess.pending_misses == 0; // false = parked, true = pool gone
        }
        while let Some((&seq, _)) = sess.buffer.iter().next() {
            if sess.next_slot < seq {
                if !Self::flush_lost(&self.handle, id, sess) {
                    return sess.pending_misses == 0;
                }
                continue;
            }
            let payload = sess.buffer.remove(&seq).expect("first key exists");
            match payload {
                Some(command) => match self.handle.try_inject(id, command) {
                    Ok(()) => {
                        sess.counters.delivered += 1;
                        sess.next_slot += 1;
                    }
                    Err((ServiceError::Backpressure, returned)) => {
                        sess.buffer.insert(seq, Some(returned));
                        return false;
                    }
                    Err(_) => return true, // pool tearing down
                },
                None => {
                    if !Self::flush_lost(&self.handle, id, sess) {
                        return sess.pending_misses == 0;
                    }
                }
            }
        }
        true
    }

    /// One attempt at landing a session's parked loss verdicts (the
    /// snapshot path calls this so a checkpoint's queue reflects every
    /// verdict the watermark has already issued). `false` = still
    /// parked on backpressure, release the lock and retry.
    pub(crate) fn try_settle(&mut self, id: SessionId) -> bool {
        match self.sessions.get_mut(&id) {
            Some(sess) => Self::settle_pending(&self.handle, id, sess) || sess.pending_misses == 0,
            None => true,
        }
    }
}

/// Builds the telemetry ack for the session's current watermark.
fn ack_for(id: SessionId, sess: &SessionIngress, ack: &mut [u8]) -> Option<usize> {
    debug_assert!(ack.len() >= HEADER_LEN);
    wire::encode_telemetry(ack, id, sess.next_slot, sess.next_slot).ok()
}
