//! The typed operator SDK: [`ForecoClient`] wraps the raw
//! request/response plumbing of [`NetClient`] into one object with a
//! method per fleet operation, and [`EventStream`] turns a control
//! connection into a push-mode feed of [`FleetEvent`]s.
//!
//! [`NetClient`] stays the low-level replay engine (send windows,
//! retransmission, impairments); this module is the surface operators
//! program against:
//!
//! - lifecycle — [`ForecoClient::open`], [`ForecoClient::close`],
//!   [`ForecoClient::snapshot`], [`ForecoClient::adopt`],
//!   [`ForecoClient::replay`];
//! - observation — [`ForecoClient::stats`] (one session's wire
//!   counters), [`ForecoClient::metrics`] (the whole fleet in
//!   Prometheus text exposition format), and poll-mode subscriptions
//!   ([`ForecoClient::subscribe`] → [`ForecoClient::poll_events`] →
//!   [`ForecoClient::unsubscribe`]);
//! - streaming — [`EventStream::connect`] opens a dedicated TCP
//!   control connection in stream mode, where the gateway *pushes*
//!   every fleet event as it happens.
//!
//! Every failure is a typed [`NetError`]; gateway-side rejections
//! carry a machine-readable [`RejectCode`](crate::RejectCode) so
//! callers can branch on *why* (`Backpressure` vs `UnknownSession` vs
//! `BadRequest`) instead of parsing reason strings.
//!
//! # Example: drive a session while watching the fleet
//!
//! ```
//! use foreco_net::{ForecoClient, Gateway, GatewayConfig, ClientConfig};
//! use foreco_serve::ServiceConfig;
//! use foreco_teleop::{Dataset, Skill};
//!
//! let gateway = Gateway::spawn(ServiceConfig::with_shards(2), GatewayConfig::default()).unwrap();
//! let mut operator = ForecoClient::loopback(&gateway, 7);
//! let mut watcher = ForecoClient::loopback(&gateway, 0);
//! let subscription = watcher.subscribe().unwrap();
//!
//! let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 5).head(120);
//! operator.open(trace.commands[0].clone(), 256).unwrap();
//! operator.replay(&trace.commands, 0, &ClientConfig::default()).unwrap();
//! let (report, _) = operator.close().unwrap();
//! assert_eq!(report.ticks, 120);
//!
//! let batch = watcher.poll_events(subscription, 64).unwrap();
//! assert!(!batch.events.is_empty());
//! let metrics = watcher.metrics().unwrap();
//! assert!(metrics.contains("foreco_ticks_total"));
//! watcher.unsubscribe(subscription).unwrap();
//! gateway.shutdown();
//! ```

use crate::client::{
    unexpected, ClientConfig, ControlWire, DataWire, LoopbackControl, LoopbackWire, NetClient,
    ReplayStats, TcpControl, UdpWire,
};
use crate::control::{self, ControlRequest, ControlResponse, FleetEvent};
use crate::gateway::Gateway;
use crate::NetError;
use foreco_serve::{IngressSummary, SessionId, SessionReport};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One drain of a poll-mode subscription queue.
#[derive(Debug, Clone, PartialEq)]
pub struct EventBatch {
    /// Events in fleet order, oldest first.
    pub events: Vec<FleetEvent>,
    /// Events the bounded queue had to shed (oldest-first) since the
    /// previous drain because the subscriber fell behind.
    pub dropped: u64,
}

/// The typed operator SDK: one fleet session plus fleet-wide
/// observation, over any data/control transport pair.
pub struct ForecoClient<D: DataWire, C: ControlWire> {
    inner: NetClient<D, C>,
}

impl ForecoClient<UdpWire, TcpControl> {
    /// Connects a remote operator: UDP data plane + TCP control plane
    /// (version handshake included).
    ///
    /// # Errors
    /// Socket failures ([`NetError::Io`]) or a handshake the gateway
    /// refused ([`NetError::Protocol`]).
    pub fn connect(session: SessionId, udp: SocketAddr, tcp: SocketAddr) -> Result<Self, NetError> {
        let data = UdpWire::connect(udp).map_err(NetError::Io)?;
        let control = TcpControl::connect(tcp)?;
        Ok(Self::new(session, data, control))
    }
}

impl ForecoClient<LoopbackWire, LoopbackControl> {
    /// An in-process operator running the gateway's identical codec,
    /// ingress, and control code without sockets.
    pub fn loopback(gateway: &Gateway, session: SessionId) -> Self {
        let (data, control) = gateway.loopback();
        Self::new(session, data, control)
    }
}

impl<D: DataWire, C: ControlWire> ForecoClient<D, C> {
    /// An SDK client for `session` over the given transports.
    pub fn new(session: SessionId, data: D, control: C) -> Self {
        Self {
            inner: NetClient::new(session, data, control),
        }
    }

    /// The session this client drives.
    pub fn session(&self) -> SessionId {
        self.inner.session()
    }

    /// The underlying replay client, for wire-level knobs the SDK does
    /// not re-export.
    pub fn into_inner(self) -> NetClient<D, C> {
        self.inner
    }

    /// Attaches: opens the gated session on the gateway.
    ///
    /// # Errors
    /// [`NetError::Rejected`] (typed code + gateway reason) or
    /// transport failures.
    pub fn open(&mut self, initial: Vec<f64>, inbox_capacity: usize) -> Result<(), NetError> {
        self.inner.open(initial, inbox_capacity)
    }

    /// Detaches: drains the session and returns its final report plus
    /// the wire-side counters.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn close(&mut self) -> Result<(SessionReport, IngressSummary), NetError> {
        self.inner.close()
    }

    /// Checkpoints the live session into portable snapshot bytes.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.snapshot()
    }

    /// Revives a checkpoint on the gateway; returns the next sequence
    /// number to stream from.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn adopt(&mut self, snapshot: &[u8]) -> Result<u64, NetError> {
        self.inner.adopt(snapshot)
    }

    /// The session's current wire-side counters.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn stats(&mut self) -> Result<IngressSummary, NetError> {
        self.inner.stats()
    }

    /// Replays `trace` from `start_slot` with the configured window,
    /// pacing, and impairments (see [`NetClient::replay`]).
    ///
    /// # Errors
    /// Transport failures or [`NetError::Timeout`] on ack stalls.
    pub fn replay(
        &mut self,
        trace: &[Vec<f64>],
        start_slot: u64,
        cfg: &ClientConfig,
    ) -> Result<ReplayStats, NetError> {
        self.inner.replay(trace, start_slot, cfg)
    }

    /// Scrapes the fleet-wide metrics snapshot in Prometheus text
    /// exposition format.
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.inner.control_mut().request(&ControlRequest::Metrics)? {
            ControlResponse::Metrics { body } => Ok(body),
            other => Err(unexpected(other)),
        }
    }

    /// Opens a poll-mode fleet event subscription; drain it with
    /// [`ForecoClient::poll_events`] and release it with
    /// [`ForecoClient::unsubscribe`].
    ///
    /// # Errors
    /// [`NetError::Rejected`] / transport failures.
    pub fn subscribe(&mut self) -> Result<u64, NetError> {
        match self
            .inner
            .control_mut()
            .request(&ControlRequest::Subscribe { stream: false })?
        {
            ControlResponse::Subscribed { subscription } => Ok(subscription),
            other => Err(unexpected(other)),
        }
    }

    /// Drains up to `max` queued events from a subscription.
    ///
    /// # Errors
    /// [`NetError::Rejected`] with
    /// [`RejectCode::UnknownSession`](crate::RejectCode) when the
    /// subscription does not exist; transport failures.
    pub fn poll_events(&mut self, subscription: u64, max: usize) -> Result<EventBatch, NetError> {
        match self
            .inner
            .control_mut()
            .request(&ControlRequest::PollEvents { subscription, max })?
        {
            ControlResponse::Events { events, dropped } => Ok(EventBatch { events, dropped }),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a poll-mode subscription (detaching its observer).
    ///
    /// # Errors
    /// [`NetError::Rejected`] when the subscription does not exist;
    /// transport failures.
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<(), NetError> {
        match self
            .inner
            .control_mut()
            .request(&ControlRequest::Unsubscribe { subscription })?
        {
            ControlResponse::Unsubscribed { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// A push-mode fleet event feed over a dedicated TCP control
/// connection.
///
/// [`EventStream::connect`] performs the handshake, subscribes in
/// stream mode, and hands back the subscription id; after that the
/// gateway pushes one [`ControlResponse::Event`] frame per fleet event
/// and [`EventStream::next`] yields them. Dropping the stream closes
/// the connection, which releases the subscription (and its observer)
/// gateway-side.
pub struct EventStream {
    stream: TcpStream,
    /// Bytes received but not yet parsed into a complete frame.
    buf: Vec<u8>,
}

impl EventStream {
    /// Connects, subscribes in stream mode, and returns the stream plus
    /// its subscription id.
    ///
    /// # Errors
    /// Socket failures, a refused handshake, or a gateway rejection.
    pub fn connect(tcp: SocketAddr) -> Result<(Self, u64), NetError> {
        let mut stream = TcpStream::connect(tcp).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        control::write_hello(&mut stream).map_err(NetError::Io)?;
        control::read_hello(&mut stream)?;
        control::write_msg(
            &mut stream,
            &control::to_payload(&ControlRequest::Subscribe { stream: true }),
        )
        .map_err(NetError::Io)?;
        let response: ControlResponse = control::from_payload(&control::read_msg(&mut stream)?)?;
        let subscription = match response {
            ControlResponse::Subscribed { subscription } => subscription,
            other => return Err(unexpected(other)),
        };
        Ok((
            Self {
                stream,
                buf: Vec::new(),
            },
            subscription,
        ))
    }

    /// Waits up to `timeout` for the next pushed event; `Ok(None)` when
    /// none arrived in time (partial frames carry over to the next
    /// call).
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a frame that is not
    /// an event push.
    pub fn next(&mut self, timeout: Duration) -> Result<Option<FleetEvent>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(event) = self.parse_frame()? {
                return Ok(Some(event));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Short read timeouts keep the deadline honest without
            // busy-polling; WouldBlock/TimedOut just re-check it.
            let wait = (deadline - now)
                .min(Duration::from_millis(50))
                .max(Duration::from_millis(1));
            self.stream
                .set_read_timeout(Some(wait))
                .map_err(NetError::Io)?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(NetError::Protocol(
                        "event stream closed by the gateway".into(),
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Parses one complete length-prefixed frame out of the buffer, if
    /// one has fully arrived.
    fn parse_frame(&mut self) -> Result<Option<FleetEvent>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > control::MAX_CONTROL_MSG {
            return Err(NetError::Protocol(format!(
                "event frame of {len} bytes exceeds the control message cap"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        match control::decode_response(&payload)? {
            ControlResponse::Event { event } => Ok(Some(event)),
            other => Err(unexpected(other)),
        }
    }
}
