//! Socket ingress for the FoReCo service: real operator traffic, over a
//! real (lossy, reordering) network, in front of the recovery engine.
//!
//! The paper's whole premise is commands arriving over an imperfect
//! link — lost and late datagrams are the events FoReCo forecasts over
//! (§II, §VII-C). `foreco-serve` hosts the recovery loops; this crate
//! puts a wire in front of them:
//!
//! - [`wire`] — the versioned **binary codec**: fixed 32-byte header
//!   (magic, version, kind, session, seq, tick) + f64 joint payload,
//!   zero-allocation encode/decode, every malformed shape a typed
//!   [`WireError`];
//! - [`Gateway`] — the **UDP data plane** (datagrams → in-order gated
//!   slots: delivered, flushed-as-lost past the reorder horizon, or
//!   §VII-C-late) and the **TCP control plane** (length-prefixed
//!   open/close/snapshot/adopt/stats, so operators attach, detach, and
//!   survive gateway restarts);
//! - [`NetClient`] — the operator: replays `foreco-teleop` traces frame
//!   by frame with a cumulative-ack send window, optional 50 Hz pacing,
//!   and seeded artificial loss/lateness;
//! - [`Gateway::loopback`] — an in-process transport running the
//!   *identical* codec, ingress, and control code without sockets, so
//!   determinism tests stay hermetic.
//!
//! # The determinism contract
//!
//! One sequence number is one virtual tick slot, and a gated session's
//! clock advances only as slots are consumed. Every ingress decision
//! (deliver / flush as lost / late-patch / duplicate) depends on frame
//! **arrival order**, never on wall time. Together that makes the
//! pipeline end-to-end reproducible: the same frame sequence produces
//! bit-identical session statistics whether it travelled over localhost
//! UDP or the in-process loopback — pinned by `tests/gateway.rs`.
//!
//! # Quickstart
//!
//! ```
//! use foreco_net::{ClientConfig, Gateway, GatewayConfig, NetClient, TcpControl, UdpWire};
//! use foreco_serve::ServiceConfig;
//! use foreco_teleop::{Dataset, Skill};
//!
//! let gateway = Gateway::spawn(ServiceConfig::with_shards(2), GatewayConfig::default()).unwrap();
//!
//! // A remote operator: attach over TCP, stream datagrams over UDP.
//! let data = UdpWire::connect(gateway.udp_addr()).unwrap();
//! let control = TcpControl::connect(gateway.tcp_addr()).unwrap();
//! let mut operator = NetClient::new(7, data, control);
//!
//! let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 5).head(120);
//! operator.open(trace.commands[0].clone(), 256).unwrap();
//! operator
//!     .replay(&trace.commands, 0, &ClientConfig::default())
//!     .unwrap();
//! let (report, ingress) = operator.close().unwrap();
//! assert_eq!(report.ticks, 120);
//! assert_eq!(ingress.delivered, 120);
//! gateway.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod control;
mod gateway;
mod ingress;
pub mod sdk;
pub mod wire;

pub use client::{
    ClientConfig, ControlWire, DataWire, LoopbackControl, LoopbackWire, NetClient, ReplayStats,
    TcpControl, UdpWire,
};
pub use control::{
    ControlCore, ControlRequest, ControlResponse, FleetEvent, RejectCode, CONTROL_VERSION,
};
pub use gateway::{Gateway, GatewayConfig};
pub use ingress::IngressConfig;
pub use sdk::{EventBatch, EventStream, ForecoClient};
pub use wire::{
    Frame, FrameKind, WireError, HEADER_LEN, MAX_FRAME, MAX_JOINTS, WIRE_MAGIC, WIRE_VERSION,
};

/// Why a client-side operation failed.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(std::io::Error),
    /// The wire codec rejected a frame.
    Wire(WireError),
    /// The gateway rejected the request (typed code + its reason verbatim).
    Rejected {
        /// Machine-readable category ([`RejectCode`]).
        code: RejectCode,
        /// Human-readable explanation, verbatim from the gateway.
        reason: String,
    },
    /// Acks stopped flowing for longer than the configured patience.
    Timeout(String),
    /// The peer violated the control protocol.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Wire(e) => write!(f, "wire codec: {e}"),
            NetError::Rejected { code, reason } => {
                write!(f, "gateway rejected [{code}]: {reason}")
            }
            NetError::Timeout(reason) => write!(f, "timed out: {reason}"),
            NetError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}
