//! The ingress gateway: real sockets in front of a [`Service`].
//!
//! [`Gateway::spawn`] binds a UDP socket (data plane) and a TCP
//! listener (control plane) on loopback-ephemeral ports, spawns the
//! shard pool, and runs three thread groups in front of it:
//!
//! - the **UDP thread** receives datagrams, runs them through the
//!   shared [`IngressState`] (decode → reorder → inject, see the
//!   `ingress` module docs), and sends the telemetry ack back to the
//!   datagram's source address;
//! - the **TCP accept thread** spawns one handler thread per operator
//!   connection, each speaking the length-prefixed control protocol
//!   through the shared [`ControlCore`];
//! - the **event pump** owns the [`Service`] and its event stream,
//!   routing `Completed`/`Snapshotted`/`Restored`/… to whichever
//!   control request is waiting on them (via [`EventHub`]).
//!
//! The in-process **loopback transport** ([`Gateway::loopback`])
//! returns a data wire and a control wire that bypass the sockets but
//! run the *identical* codec, ingress, and control code — the hermetic
//! twin the determinism suite compares real-socket runs against.

use crate::client::{LoopbackControl, LoopbackWire};
use crate::control::{self, ControlCore, ControlRequest, FleetEvent, Reject, RejectCode};
use crate::ingress::{IngressConfig, IngressState};
use crate::wire::MAX_FRAME;
use foreco_serve::{
    ChannelSpec, IngressSummary, MetricsRegistry, PercentileSummary, RecoverySpec, Service,
    ServiceConfig, ServiceHandle, SessionEvent, SessionId, SessionReport, SessionSnapshot,
};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway construction knobs. The recovery/channel pair is the
/// **session template**: operators supply identity and a start pose,
/// the deployment decides how misses are covered (the trained
/// forecaster lives server-side, exactly the paper's edge-cloud split).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Recovery mode every attached session runs.
    pub recovery: RecoverySpec,
    /// Composed impairment channel per session. `Ideal` by default —
    /// with a real network in front, the wire itself is the impairment.
    pub channel: ChannelSpec,
    /// Data-plane reassembly knobs.
    pub ingress: IngressConfig,
    /// How long a control request waits for its service event.
    pub control_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            recovery: RecoverySpec::Baseline,
            channel: ChannelSpec::Ideal,
            ingress: IngressConfig::default(),
            control_timeout: Duration::from_secs(30),
        }
    }
}

/// Bound on one subscriber's unread event queue; beyond it the oldest
/// events are evicted and counted as dropped (a slow consumer never
/// backpressures the event pump).
const SUBSCRIBER_QUEUE_CAP: usize = 4096;

/// Bound on the completed-session RMSE window the metrics endpoint's
/// quantiles are computed over (a rolling sample, like the registry's
/// report retention).
const RMSE_WINDOW: usize = 4096;

/// One durable subscriber's queue of unread fleet events.
#[derive(Default)]
struct SubscriberQueue {
    queue: VecDeque<FleetEvent>,
    /// Events evicted since the last poll.
    dropped: u64,
}

/// What the event pump knows, keyed by session: control-plane waiters
/// block on this (condvar) until their event lands. Since control v2
/// it also fans lifecycle events out to durable subscriber queues and
/// keeps the rolling RMSE window behind the metrics endpoint.
#[derive(Default)]
struct HubState {
    opened: HashMap<SessionId, Result<(), Reject>>,
    reports: HashMap<SessionId, SessionReport>,
    snapshots: HashMap<SessionId, Result<Box<SessionSnapshot>, Reject>>,
    restored: HashMap<SessionId, Result<u64, Reject>>,
    /// `UnknownSession` answers, claimable by whichever request raced it.
    unknown: HashMap<SessionId, u64>,
    /// Engine-side overflow drops observed per session.
    engine_drops: HashMap<SessionId, u64>,
    /// Live event subscriptions, keyed by subscription id.
    subscribers: HashMap<u64, SubscriberQueue>,
    next_subscriber: u64,
    /// Rolling window of completed sessions' task-space RMSE (mm).
    rmse: VecDeque<f64>,
    pump_alive: bool,
}

impl HubState {
    /// Pushes one event to every subscriber queue (drop-oldest under
    /// the cap) — a no-op without subscribers, so an unobserved fleet
    /// pays nothing here beyond the map-emptiness check.
    fn publish(&mut self, event: FleetEvent) {
        for sub in self.subscribers.values_mut() {
            if sub.queue.len() >= SUBSCRIBER_QUEUE_CAP {
                sub.queue.pop_front();
                sub.dropped += 1;
            }
            sub.queue.push_back(event.clone());
        }
    }
}

/// Routes service events to waiting control requests.
pub(crate) struct EventHub {
    state: Mutex<HubState>,
    cv: Condvar,
}

impl EventHub {
    fn new() -> Self {
        Self {
            state: Mutex::new(HubState {
                pump_alive: true,
                ..HubState::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn absorb(&self, event: SessionEvent) {
        let mut state = self.state.lock().expect("hub");
        match event {
            SessionEvent::Opened { id, shard } => {
                state.opened.insert(id, Ok(()));
                state.publish(FleetEvent::Opened { id, shard });
            }
            SessionEvent::DuplicateSession { id } => {
                // A duplicate answers either an Open or an Adopt; feed
                // both waiters so neither waits out its full timeout.
                let duplicate = || {
                    Reject::new(
                        RejectCode::DuplicateSession,
                        format!("session {id} already exists"),
                    )
                };
                state.opened.insert(id, Err(duplicate()));
                state.restored.insert(id, Err(duplicate()));
            }
            SessionEvent::Completed { id, report } => {
                if state.rmse.len() >= RMSE_WINDOW {
                    state.rmse.pop_front();
                }
                state.rmse.push_back(report.rmse_mm);
                state.publish(FleetEvent::Completed {
                    id,
                    report: report.clone(),
                });
                state.reports.insert(id, report);
            }
            SessionEvent::Snapshotted {
                id,
                shard,
                snapshot,
            } => {
                state.publish(FleetEvent::Snapshotted { id, shard });
                state.snapshots.insert(id, Ok(snapshot));
            }
            SessionEvent::SnapshotFailed { id, reason } => {
                state
                    .snapshots
                    .insert(id, Err(Reject::new(RejectCode::SnapshotFailed, reason)));
            }
            SessionEvent::Restored { id, shard, tick } => {
                state.publish(FleetEvent::Adopted { id, shard, tick });
                state.restored.insert(id, Ok(tick));
            }
            SessionEvent::RestoreFailed { id, reason } => {
                state
                    .restored
                    .insert(id, Err(Reject::new(RejectCode::RestoreFailed, reason)));
            }
            SessionEvent::UnknownSession { id } => {
                *state.unknown.entry(id).or_insert(0) += 1;
            }
            SessionEvent::CommandDropped { id, tick } => {
                state.publish(FleetEvent::Dropped { id, tick });
                *state.engine_drops.entry(id).or_insert(0) += 1;
            }
            SessionEvent::Migrated { id, from, to } => {
                state.publish(FleetEvent::Migrated { id, from, to });
            }
            SessionEvent::Parked { id, shard } => {
                // Only emitted while an observer is attached (the
                // subscription registered one), so this cannot flood an
                // unobserved fleet's pump.
                state.publish(FleetEvent::Parked { id, shard });
            }
            SessionEvent::ShardTerminated { .. } => {}
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Registers a durable subscriber queue, returning its id. The
    /// caller is responsible for pairing this with a fleet observer
    /// registration (see `ControlCore::release_subscription`).
    pub(crate) fn subscribe(&self) -> u64 {
        let mut state = self.state.lock().expect("hub");
        let id = state.next_subscriber;
        state.next_subscriber += 1;
        state.subscribers.insert(id, SubscriberQueue::default());
        id
    }

    /// Removes a subscriber queue; false when the id was unknown.
    pub(crate) fn unsubscribe(&self, subscription: u64) -> bool {
        self.state
            .lock()
            .expect("hub")
            .subscribers
            .remove(&subscription)
            .is_some()
    }

    /// Drains up to `max` queued events (oldest first) plus the number
    /// evicted from the queue since the previous poll.
    pub(crate) fn poll_events(
        &self,
        subscription: u64,
        max: usize,
    ) -> Result<(Vec<FleetEvent>, u64), Reject> {
        let mut state = self.state.lock().expect("hub");
        let Some(sub) = state.subscribers.get_mut(&subscription) else {
            return Err(Reject::new(
                RejectCode::UnknownSession,
                format!("no subscription {subscription}"),
            ));
        };
        let take = sub.queue.len().min(max);
        let events: Vec<FleetEvent> = sub.queue.drain(..take).collect();
        let dropped = std::mem::take(&mut sub.dropped);
        Ok((events, dropped))
    }

    /// Blocks until the subscription has an event, the pump dies, or
    /// `timeout` passes (`Ok(None)`). The stream-mode TCP handler's
    /// wait primitive.
    pub(crate) fn next_event(
        &self,
        subscription: u64,
        timeout: Duration,
    ) -> Result<Option<FleetEvent>, Reject> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("hub");
        loop {
            let Some(sub) = state.subscribers.get_mut(&subscription) else {
                return Err(Reject::new(
                    RejectCode::UnknownSession,
                    format!("no subscription {subscription}"),
                ));
            };
            if let Some(event) = sub.queue.pop_front() {
                return Ok(Some(event));
            }
            if !state.pump_alive {
                return Err(Reject::new(RejectCode::Unavailable, "service terminated"));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("hub poisoned");
            state = next;
        }
    }

    /// Percentile summary of the rolling completed-session RMSE window
    /// (`None` before the first completion).
    pub(crate) fn rmse_summary(&self) -> Option<PercentileSummary> {
        let state = self.state.lock().expect("hub");
        let window: Vec<f64> = state.rmse.iter().copied().collect();
        drop(state);
        PercentileSummary::of(&window)
    }

    fn dead(&self) {
        self.state.lock().expect("hub").pump_alive = false;
        self.cv.notify_all();
    }

    /// Drops any stale `UnknownSession` answer for `id`. Call **before
    /// issuing** a command whose wait treats unknowns as failure, so a
    /// leftover from an earlier race (e.g. a retransmitted datagram
    /// landing after a completed session was removed) cannot fail a
    /// fresh request — and the genuine answer, arriving after the
    /// command, is never discarded.
    pub(crate) fn forget_unknown(&self, id: SessionId) {
        self.state.lock().expect("hub").unknown.remove(&id);
    }

    /// Waits until `claim` yields a value, the pump dies, or `timeout`
    /// passes. With `unknown_fails`, an `UnknownSession` answer for the
    /// id fails the wait — only for requests the service actually
    /// answers that way (close/snapshot); an Open/Adopt can race stray
    /// datagrams whose unknowns mean nothing about it.
    fn wait<T>(
        &self,
        id: SessionId,
        timeout: Duration,
        unknown_fails: bool,
        mut claim: impl FnMut(&mut HubState) -> Option<T>,
    ) -> Result<T, Reject> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("hub");
        loop {
            if let Some(value) = claim(&mut state) {
                return Ok(value);
            }
            if unknown_fails && state.unknown.remove(&id).is_some() {
                return Err(Reject::new(
                    RejectCode::UnknownSession,
                    format!("session {id} is unknown to the service"),
                ));
            }
            if !state.pump_alive {
                return Err(Reject::new(RejectCode::Unavailable, "service terminated"));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Reject::new(
                    RejectCode::Timeout,
                    format!("timed out waiting on session {id}"),
                ));
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("hub poisoned");
            state = next;
        }
    }

    pub(crate) fn wait_opened(&self, id: SessionId, timeout: Duration) -> Result<(), Reject> {
        self.wait(id, timeout, false, |s| s.opened.remove(&id))?
    }

    pub(crate) fn wait_report(
        &self,
        id: SessionId,
        timeout: Duration,
    ) -> Result<SessionReport, Reject> {
        self.wait(id, timeout, true, |s| s.reports.remove(&id))
    }

    pub(crate) fn wait_snapshot(
        &self,
        id: SessionId,
        timeout: Duration,
    ) -> Result<Box<SessionSnapshot>, Reject> {
        self.wait(id, timeout, true, |s| s.snapshots.remove(&id))?
    }

    pub(crate) fn wait_restored(&self, id: SessionId, timeout: Duration) -> Result<u64, Reject> {
        self.wait(id, timeout, false, |s| s.restored.remove(&id))?
    }

    pub(crate) fn engine_drops(&self, id: SessionId) -> u64 {
        self.state
            .lock()
            .expect("hub")
            .engine_drops
            .get(&id)
            .copied()
            .unwrap_or(0)
    }

    /// Forgets everything recorded for a finished session, so a
    /// long-lived gateway's hub stays O(live sessions) instead of
    /// accreting an entry per session ever served.
    pub(crate) fn purge(&self, id: SessionId) {
        let mut state = self.state.lock().expect("hub");
        state.opened.remove(&id);
        state.reports.remove(&id);
        state.snapshots.remove(&id);
        state.restored.remove(&id);
        state.unknown.remove(&id);
        state.engine_drops.remove(&id);
    }
}

/// A running socket ingress gateway (see the module docs).
pub struct Gateway {
    core: ControlCore,
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Spawns the service and the gateway threads; binds loopback
    /// ephemeral ports (read them back from [`Gateway::udp_addr`] /
    /// [`Gateway::tcp_addr`]).
    ///
    /// # Errors
    /// Socket bind/configuration failures.
    pub fn spawn(service_config: ServiceConfig, config: GatewayConfig) -> std::io::Result<Self> {
        let dof = service_config.model.dof();
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        udp.set_read_timeout(Some(Duration::from_millis(5)))?;
        let tcp = TcpListener::bind("127.0.0.1:0")?;
        tcp.set_nonblocking(true)?;
        let udp_addr = udp.local_addr()?;
        let tcp_addr = tcp.local_addr()?;

        let service = Service::spawn(service_config);
        let handle = service.handle();
        let ingress = Arc::new(Mutex::new(IngressState::new(
            handle.clone(),
            config.ingress.clone(),
            dof,
        )));
        let hub = Arc::new(EventHub::new());
        let stop = Arc::new(AtomicBool::new(false));
        let core = ControlCore {
            handle,
            ingress: Arc::clone(&ingress),
            hub: Arc::clone(&hub),
            cfg: Arc::new(config),
            dof,
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::new();
        // Event pump: owns the Service; shuts the pool down when asked.
        {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("foreco-net-events".into())
                    .spawn(move || event_pump(service, hub, stop))
                    .expect("spawn event pump"),
            );
        }
        // UDP data plane.
        {
            let ingress = Arc::clone(&ingress);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("foreco-net-udp".into())
                    .spawn(move || udp_loop(udp, ingress, stop))
                    .expect("spawn udp thread"),
            );
        }
        // TCP control plane.
        {
            let core = core.clone();
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            threads.push(
                std::thread::Builder::new()
                    .name("foreco-net-tcp".into())
                    .spawn(move || accept_loop(tcp, core, stop, conns))
                    .expect("spawn tcp thread"),
            );
        }
        Ok(Self {
            core,
            udp_addr,
            tcp_addr,
            stop,
            threads,
            conns,
        })
    }

    /// The data plane's UDP address.
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The control plane's TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// An in-process transport pair running the identical codec,
    /// ingress, and control paths without sockets — the hermetic twin
    /// for determinism tests.
    pub fn loopback(&self) -> (LoopbackWire, LoopbackControl) {
        (
            LoopbackWire::new(Arc::clone(&self.core.ingress)),
            LoopbackControl::new(self.core.clone()),
        )
    }

    /// A handle into the fronted service (for operators of the gateway
    /// itself: shard loads, manual migration, …).
    pub fn service_handle(&self) -> ServiceHandle {
        self.core.handle.clone()
    }

    /// Every attached session's ingress counters, id-ordered.
    pub fn ingress_summaries(&self) -> Vec<IngressSummary> {
        self.core.ingress.lock().expect("ingress").summaries()
    }

    /// Datagrams that failed to decode, and well-formed frames for
    /// unattached sessions — the gateway-level reject counters no
    /// session can own.
    pub fn reject_counters(&self) -> (u64, u64) {
        let state = self.core.ingress.lock().expect("ingress");
        (state.undecodable, state.unknown)
    }

    /// Records the gateway's ingress picture into a metrics registry
    /// (next to the session reports the wire produced).
    pub fn record_ingress(&self, registry: &mut MetricsRegistry) {
        registry.record_ingress(self.ingress_summaries());
    }

    /// Engine-side drops (gated-inbox overflow, refused late patches)
    /// the event stream reported for `id` — the admission-control half
    /// of the loss picture, next to the wire-side counters.
    pub fn engine_drops(&self, id: SessionId) -> u64 {
        self.core.hub.engine_drops(id)
    }

    /// Stops every thread and tears the fronted service down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conns"));
        for conn in conns {
            let _ = conn.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // Threads observe the flag within their poll timeouts; a drop
        // without `shutdown()` still stops them, just asynchronously.
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn event_pump(service: Service, hub: Arc<EventHub>, stop: Arc<AtomicBool>) {
    loop {
        match service.next_event_timeout(Duration::from_millis(20)) {
            foreco_serve::EventWait::Event(event) => hub.absorb(event),
            foreco_serve::EventWait::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            foreco_serve::EventWait::Disconnected => break,
        }
    }
    hub.dead();
    service.join();
}

fn udp_loop(socket: UdpSocket, ingress: Arc<Mutex<IngressState>>, stop: Arc<AtomicBool>) {
    // One receive datagram, one ack frame: the hot path allocates
    // nothing beyond the command vector that rides into the session.
    let mut buf = [0u8; MAX_FRAME + 64];
    let mut ack = [0u8; MAX_FRAME];
    while !stop.load(Ordering::SeqCst) {
        match socket.recv_from(&mut buf) {
            Ok((len, src)) => {
                let ack_len = ingress
                    .lock()
                    .expect("ingress")
                    .handle_datagram(&buf[..len], &mut ack);
                if let Some(ack_len) = ack_len {
                    let _ = socket.send_to(&ack[..ack_len], src);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    core: ControlCore,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let core = core.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("foreco-net-conn".into())
                    .spawn(move || connection(stream, core, stop))
                    .expect("spawn connection thread");
                let mut conns = conns.lock().expect("conns");
                // Reap finished handlers as we go; a long-lived gateway
                // sees one connection per operator attach/detach cycle.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn connection(mut stream: TcpStream, core: ControlCore, stop: Arc<AtomicBool>) {
    // Subscriptions registered over this connection: released (queue
    // dropped, fleet observer detached) however the connection ends, so
    // a vanished operator cannot leak a queue or pin park narration on.
    let mut owned_subscriptions: Vec<u64> = Vec::new();
    connection_loop(&mut stream, &core, &stop, &mut owned_subscriptions);
    for subscription in owned_subscriptions {
        core.release_subscription(subscription);
    }
}

fn connection_loop(
    stream: &mut TcpStream,
    core: &ControlCore,
    stop: &Arc<AtomicBool>,
    owned_subscriptions: &mut Vec<u64>,
) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let Some(hello) = read_exact_with_stop(stream, 5, stop) else {
        return;
    };
    // Accept every control version this build knows (1 = the original
    // request/response set, 2 = subscriptions/metrics/typed rejects)
    // and echo the *client's* version: a v1 operator keeps speaking v1.
    let version = hello[4];
    if hello[..4] != crate::wire::WIRE_MAGIC || version == 0 || version > control::CONTROL_VERSION {
        return; // wrong protocol or future version: hang up, send nothing
    }
    if control::write_hello_version(stream, version).is_err() {
        return;
    }
    loop {
        let Some(len_bytes) = read_exact_with_stop(stream, 4, stop) else {
            return;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len > control::MAX_CONTROL_MSG {
            return;
        }
        let Some(payload) = read_exact_with_stop(stream, len, stop) else {
            return;
        };
        let request = control::decode_request(&payload);
        let wants_stream = matches!(request, Ok(ControlRequest::Subscribe { stream: true }));
        let response = match request {
            Ok(request) => core.execute(request),
            Err(e) => crate::control::ControlResponse::Rejected {
                code: crate::control::RejectCode::BadRequest,
                reason: e.to_string(),
            },
        };
        match &response {
            crate::control::ControlResponse::Subscribed { subscription } => {
                owned_subscriptions.push(*subscription);
            }
            crate::control::ControlResponse::Unsubscribed { subscription } => {
                owned_subscriptions.retain(|s| s != subscription);
            }
            _ => {}
        }
        if control::write_msg(stream, &control::encode_response(&response)).is_err() {
            return;
        }
        if wants_stream {
            if let crate::control::ControlResponse::Subscribed { subscription } = response {
                // The connection is now a one-way event stream: push
                // every queued event as its own frame until the peer
                // hangs up, the pump dies, or the gateway stops.
                push_events(stream, core, subscription, stop);
                return;
            }
        }
    }
}

/// Stream-mode subscription pump: blocks on the hub and writes each
/// event as a [`control::ControlResponse::Event`] frame.
fn push_events(stream: &mut TcpStream, core: &ControlCore, subscription: u64, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match core
            .hub
            .next_event(subscription, Duration::from_millis(100))
        {
            Ok(Some(event)) => {
                let frame = crate::control::ControlResponse::Event { event };
                if control::write_msg(stream, &control::encode_response(&frame)).is_err() {
                    return; // peer hung up
                }
            }
            Ok(None) => {}    // timeout tick: re-check the stop flag
            Err(_) => return, // pump dead or subscription force-removed
        }
    }
}

/// Reads exactly `n` bytes, tolerating read timeouts (to observe the
/// stop flag) and partial reads. `None` on EOF, error, or stop.
fn read_exact_with_stop(stream: &mut TcpStream, n: usize, stop: &AtomicBool) -> Option<Vec<u8>> {
    let mut buf = vec![0u8; n];
    let mut read = 0;
    while read < n {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut buf[read..]) {
            Ok(0) => return None,
            Ok(k) => read += k,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(buf)
}
