//! Wire-codec property suite: encode→decode bit-identity over generated
//! frames, and a malformed-frame corpus that must reject with typed
//! errors — never panic, never misread.
//!
//! Run with a pinned case count in CI: `PROPTEST_CASES=64 cargo test -q
//! -p foreco-net --test wire_codec`.

use foreco_net::wire::{
    decode, encode_command, encode_miss, encode_telemetry, FrameKind, WireError, HEADER_LEN,
    MAX_FRAME, MAX_JOINTS, WIRE_MAGIC, WIRE_VERSION,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::env_or(64))]

    /// Any joint vector (any f64 bit pattern, NaNs and -0.0 included)
    /// survives the wire bit-for-bit.
    #[test]
    fn command_round_trip_is_bit_identical(
        session in any::<u64>(),
        seq in any::<u64>(),
        tick in any::<u64>(),
        bits in prop::collection::vec(any::<u64>(), 0..33usize),
    ) {
        let joints: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_command(&mut buf, session, seq, tick, &joints).unwrap();
        prop_assert_eq!(len, HEADER_LEN + joints.len() * 8);
        let frame = decode(&buf[..len]).unwrap();
        prop_assert_eq!(frame.kind, FrameKind::Command);
        prop_assert_eq!(frame.session, session);
        prop_assert_eq!(frame.seq, seq);
        prop_assert_eq!(frame.tick, tick);
        prop_assert_eq!(frame.dims(), joints.len());
        let decoded_bits: Vec<u64> = frame.joints().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, bits);
    }

    /// Payload-free frames round-trip too.
    #[test]
    fn control_frames_round_trip(
        session in any::<u64>(),
        seq in any::<u64>(),
        tick in any::<u64>(),
        telemetry in any::<bool>(),
    ) {
        let mut buf = [0u8; MAX_FRAME];
        let len = if telemetry {
            encode_telemetry(&mut buf, session, seq, tick).unwrap()
        } else {
            encode_miss(&mut buf, session, seq, tick).unwrap()
        };
        prop_assert_eq!(len, HEADER_LEN);
        let frame = decode(&buf[..len]).unwrap();
        let expect = if telemetry { FrameKind::Telemetry } else { FrameKind::Miss };
        prop_assert_eq!(frame.kind, expect);
        prop_assert_eq!((frame.session, frame.seq, frame.tick), (session, seq, tick));
    }

    /// Truncating a valid frame anywhere yields `Truncated` (or, below
    /// 4 bytes of magic… still `Truncated` — the header check comes
    /// first); never a panic, never a bogus success.
    #[test]
    fn every_truncation_rejects(
        bits in prop::collection::vec(any::<u64>(), 1..7usize),
        cut_frac in 0.0f64..1.0,
    ) {
        let joints: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_command(&mut buf, 9, 9, 9, &joints).unwrap();
        let cut = ((len - 1) as f64 * cut_frac) as usize;
        prop_assert!(matches!(
            decode(&buf[..cut]),
            Err(WireError::Truncated { .. })
        ));
    }

    /// Arbitrary bytes never panic the decoder: they either decode (if
    /// they happen to be a valid frame) or reject with a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u64..256, 0..80usize)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let _ = decode(&bytes);
    }

    /// Flipping any single byte of a valid frame either still decodes
    /// (payload bytes are opaque) or rejects with a typed error —
    /// headers are fully validated.
    #[test]
    fn single_byte_corruption_is_contained(
        bits in prop::collection::vec(any::<u64>(), 1..7usize),
        at_frac in 0.0f64..1.0,
        xor in 1u64..256,
    ) {
        let joints: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut buf = [0u8; MAX_FRAME];
        let len = encode_command(&mut buf, 3, 4, 5, &joints).unwrap();
        let at = ((len - 1) as f64 * at_frac) as usize;
        buf[at] ^= xor as u8;
        match decode(&buf[..len]) {
            Ok(frame) => {
                // Corruption landed in an opaque field: the frame still
                // parses structurally.
                prop_assert_eq!(frame.dims(), joints.len());
            }
            Err(
                WireError::BadMagic { .. }
                | WireError::Version { .. }
                | WireError::UnknownKind { .. }
                | WireError::Oversized { .. }
                | WireError::Truncated { .. }
                | WireError::TrailingBytes { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected reject: {other:?}"),
        }
    }
}

/// The fixed malformed-frame corpus of the issue: truncated, bad magic,
/// wrong version, unknown kind, oversized, trailing — all typed, none
/// panicking.
#[test]
fn malformed_corpus_rejects_with_typed_errors() {
    let mut valid = [0u8; MAX_FRAME];
    let len = encode_command(&mut valid, 1, 2, 3, &[0.5, -0.5, 1.5]).unwrap();

    // Truncated: empty, sub-header, sub-payload.
    for cut in [0, 1, HEADER_LEN - 1, len - 1] {
        assert!(
            matches!(decode(&valid[..cut]), Err(WireError::Truncated { .. })),
            "cut at {cut}"
        );
    }
    // Bad magic (each magic byte).
    for i in 0..4 {
        let mut bad = valid;
        bad[i] ^= 0xFF;
        assert!(matches!(
            decode(&bad[..len]),
            Err(WireError::BadMagic { .. })
        ));
    }
    // Every wrong version byte.
    for version in (0..=255u8).filter(|&v| v != WIRE_VERSION) {
        let mut bad = valid;
        bad[4] = version;
        assert_eq!(
            decode(&bad[..len]),
            Err(WireError::Version {
                found: version,
                expected: WIRE_VERSION
            })
        );
    }
    // Every unassigned kind byte.
    for kind in (0..=255u8).filter(|&k| !(1..=3).contains(&k)) {
        let mut bad = valid;
        bad[5] = kind;
        assert!(matches!(
            decode(&bad[..len]),
            Err(WireError::UnknownKind { found }) if found == kind
        ));
    }
    // Oversized dims declaration.
    let mut bad = valid;
    bad[6..8].copy_from_slice(&(MAX_JOINTS as u16 + 7).to_le_bytes());
    assert!(matches!(
        decode(&bad[..len]),
        Err(WireError::Oversized {
            max: MAX_JOINTS,
            ..
        })
    ));
    // Trailing garbage.
    assert!(matches!(
        decode(&valid[..len + 1]),
        Err(WireError::TrailingBytes { .. })
    ));
    // And the original still decodes (the corpus never mutated it).
    assert_eq!(decode(&valid[..len]).unwrap().kind, FrameKind::Command);
    assert_eq!(&valid[..4], &WIRE_MAGIC);
}
