//! Gateway integration suite: the issue's acceptance criterion.
//!
//! A teleop trace replayed by [`ForecoClient`] over **localhost
//! UDP/TCP** must produce session statistics **bit-identical** to the
//! same trace driven through the in-process **loopback transport** —
//! and the client's injected drops/lateness must surface as engine
//! loss events (misses the forecaster covers) and §VII-C late patches
//! in the [`MetricsRegistry`].
//!
//! Determinism over a real socket holds because (a) a gated session's
//! clock advances only as ingress slots are consumed, and (b) every
//! ingress decision depends on frame arrival order, not wall time. The
//! replay keeps its tail impairment-free so every settleable slot is
//! acked before close — the one wall-clock race (a datagram still in
//! flight at close) is thereby excluded by construction.
//!
//! The observability plane rides the same bar: an attached event
//! subscriber must not change a single output bit, the metrics
//! endpoint must emit conformant Prometheus text with monotonic
//! counters, and every rejection must carry a typed [`RejectCode`].

use foreco_core::RecoveryConfig;
use foreco_net::{
    ClientConfig, ControlWire, DataWire, EventStream, FleetEvent, ForecoClient, Gateway,
    GatewayConfig, IngressConfig, NetError, RejectCode, ReplayStats,
};
use foreco_serve::{
    ChannelSpec, IngressSummary, MetricsRegistry, RecoverySpec, ServiceConfig, SessionReport,
    SharedForecaster,
};
use foreco_teleop::{Dataset, Skill};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const SESSION: u64 = 7;
const CLEAN_TAIL: usize = 80;

fn foreco_gateway_config() -> GatewayConfig {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = foreco_forecast::Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let model = foreco_robot::niryo_one();
    let mut recovery = RecoveryConfig::for_model(&model);
    // §VII-C on: late frames must patch the forecast history.
    recovery.use_late_commands = true;
    GatewayConfig {
        recovery: RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(var),
            config: recovery,
        },
        channel: ChannelSpec::Ideal,
        ingress: IngressConfig {
            // A short reorder horizon so deliberately-late frames
            // (late_depth below) genuinely miss it and ride §VII-C.
            reorder_window: 3,
            ..IngressConfig::default()
        },
        ..GatewayConfig::default()
    }
}

fn test_trace() -> Vec<Vec<f64>> {
    Dataset::record(Skill::Inexperienced, 1, 0.02, 321)
        .head(400)
        .commands
}

fn impaired_config() -> ClientConfig {
    ClientConfig {
        loss: 0.04,
        late: 0.05,
        late_depth: 4, // > reorder_window: arrives behind the horizon
        seed: 0xC0FFEE,
        ..ClientConfig::default()
    }
}

/// Attach, replay (impaired body + clean tail), detach.
fn drive<D: DataWire, C: ControlWire>(
    mut client: ForecoClient<D, C>,
    trace: &[Vec<f64>],
) -> (SessionReport, IngressSummary, ReplayStats) {
    client
        .open(trace[0].clone(), trace.len().max(16))
        .expect("open session");
    let cut = trace.len().saturating_sub(CLEAN_TAIL);
    let stats = client
        .replay(&trace[..cut], 0, &impaired_config())
        .expect("impaired replay");
    // Clean tail: every outstanding gap flushes and every settleable
    // slot settles before close (see the module docs).
    client
        .replay(&trace[cut..], cut as u64, &ClientConfig::default())
        .expect("clean tail");
    let (report, ingress) = client.close().expect("close");
    (report, ingress, stats)
}

#[test]
fn udp_replay_is_bit_identical_to_loopback_and_losses_reach_the_engine() {
    let trace = test_trace();
    assert!(trace.len() > 2 * CLEAN_TAIL, "trace long enough to impair");

    // Loopback: the hermetic ground truth.
    let loop_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn loopback gateway");
    let (loop_report, loop_ingress, loop_stats) =
        drive(ForecoClient::loopback(&loop_gw, SESSION), &trace);
    loop_gw.shutdown();

    // Real sockets: localhost UDP data plane + TCP control plane.
    let udp_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn socket gateway");
    let client = ForecoClient::connect(SESSION, udp_gw.udp_addr(), udp_gw.tcp_addr())
        .expect("connect over sockets");
    let (udp_report, udp_ingress, udp_stats) = drive(client, &trace);
    udp_gw.shutdown();

    // The client made identical impairment decisions on both transports…
    assert_eq!(loop_stats.sent, udp_stats.sent);
    assert_eq!(loop_stats.lost, udp_stats.lost);
    assert_eq!(loop_stats.deferred, udp_stats.deferred);
    assert!(loop_stats.lost > 0, "impairment must actually drop frames");
    assert!(loop_stats.deferred > 0, "impairment must defer frames");

    // …the gateway reached identical ingress verdicts…
    assert_eq!(loop_ingress.delivered, udp_ingress.delivered);
    assert_eq!(loop_ingress.lost, udp_ingress.lost);
    assert_eq!(loop_ingress.late, udp_ingress.late);
    assert!(loop_ingress.lost > 0, "drops surface as ingress losses");
    assert!(loop_ingress.late > 0, "deferred frames ride the late path");

    // …and the sessions' final statistics are bit-identical.
    assert_eq!(loop_report.ticks, udp_report.ticks);
    assert_eq!(loop_report.misses, udp_report.misses);
    assert_eq!(loop_report.stats, udp_report.stats);
    assert_eq!(
        loop_report.rmse_mm.to_bits(),
        udp_report.rmse_mm.to_bits(),
        "rmse must be bit-identical across transports: {} vs {}",
        loop_report.rmse_mm,
        udp_report.rmse_mm
    );
    assert_eq!(
        loop_report.max_deviation_mm.to_bits(),
        udp_report.max_deviation_mm.to_bits()
    );

    // The client's injected impairments are visible as engine events in
    // the registry: losses became forecast-covered misses, late frames
    // became §VII-C history patches.
    let mut registry = MetricsRegistry::new();
    registry.record(udp_report.clone());
    registry.record_ingress(vec![udp_ingress]);
    let engine = udp_report.stats.expect("FoReCo session has stats");
    assert!(
        udp_report.misses as u64 >= udp_ingress.lost,
        "every wire loss is an engine miss"
    );
    assert!(
        engine.forecasts + engine.warmup_repeats + engine.horizon_holds >= udp_ingress.lost,
        "engine covered the losses"
    );
    assert!(engine.late_patches > 0, "§VII-C patches landed");
    assert_eq!(registry.ingress()[0].lost, udp_ingress.lost);
    assert_eq!(
        registry.summary().expect("session completed").total_misses,
        udp_report.misses as u64
    );
}

#[test]
fn snapshot_adopt_survives_a_gateway_restart_bit_identically() {
    let trace = test_trace();
    let cut = trace.len() / 2;
    let clean = ClientConfig::default();

    // Twin: the same trace, uninterrupted, on its own gateway.
    let twin_gw = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn twin gateway");
    let mut twin = ForecoClient::loopback(&twin_gw, SESSION);
    twin.open(trace[0].clone(), trace.len()).expect("open twin");
    twin.replay(&trace, 0, &clean).expect("twin replay");
    let (twin_report, _) = twin.close().expect("twin close");
    twin_gw.shutdown();

    // First gateway "process": half the trace, checkpoint, die.
    let gw_a = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway A");
    let mut operator = ForecoClient::loopback(&gw_a, SESSION);
    operator.open(trace[0].clone(), trace.len()).expect("open");
    operator
        .replay(&trace[..cut], 0, &clean)
        .expect("first half");
    let snapshot = operator.snapshot().expect("checkpoint over the wire");
    gw_a.shutdown(); // the gateway restarts…

    // …and the operator re-attaches to the revived session.
    let gw_b = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway B");
    let mut operator = ForecoClient::loopback(&gw_b, SESSION);
    let next_slot = operator.adopt(&snapshot).expect("adopt");
    assert_eq!(next_slot as usize, cut, "resume where the wire left off");
    operator
        .replay(&trace[cut..], next_slot, &clean)
        .expect("second half");
    let (report, ingress) = operator.close().expect("close");
    gw_b.shutdown();

    assert_eq!(report.ticks, twin_report.ticks);
    assert_eq!(report.misses, twin_report.misses);
    assert_eq!(report.stats, twin_report.stats);
    assert_eq!(report.rmse_mm.to_bits(), twin_report.rmse_mm.to_bits());
    assert_eq!(ingress.delivered as usize, trace.len() - cut);
}

#[test]
fn impairment_through_the_final_slot_terminates_and_closes_cleanly() {
    // Regression: a replay whose *last* slots are lost or deferred must
    // not hang — stale frames are fire-and-forget (they can never
    // re-settle below the ack watermark), retransmission paces off its
    // own clock instead of rewinding the progress clock, and the drain
    // gives up on trailing unsettleable slots so close() can flush
    // every gap the gateway knows about.
    let trace = test_trace();
    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway");
    let mut client = ForecoClient::loopback(&gateway, SESSION);
    client.open(trace[0].clone(), trace.len()).expect("open");
    let stats = client
        .replay(&trace, 0, &impaired_config())
        .expect("impaired replay to the last slot");
    assert!(stats.lost > 0 && stats.deferred > 0);
    let (report, ingress) = client.close().expect("close");
    gateway.shutdown();
    // Every slot the gateway settled got exactly one verdict: the
    // session's tick count is deliveries plus flushed losses, and only
    // slots trailing the final received frame are missing from it.
    assert_eq!(report.ticks, ingress.delivered + ingress.lost);
    assert!(report.ticks as usize <= trace.len());
    assert!(
        trace.len() as u64 - report.ticks <= impaired_config().late_depth + 1,
        "only a trailing loss/deferral span may go unheard: {} of {}",
        report.ticks,
        trace.len()
    );
    assert!(report.misses as u64 >= ingress.lost);
}

#[test]
fn malformed_and_unknown_traffic_is_counted_and_contained() {
    use std::net::UdpSocket;

    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), GatewayConfig::default())
        .expect("spawn gateway");
    let raw = UdpSocket::bind("127.0.0.1:0").expect("bind raw socket");
    raw.connect(gateway.udp_addr()).expect("connect raw socket");

    // Garbage, bad magic, wrong version, truncation: all undecodable.
    raw.send(b"not a frame at all").unwrap();
    let mut bad = [0u8; 32];
    bad[..4].copy_from_slice(b"XXXX");
    raw.send(&bad).unwrap();
    let mut wrong_version = [0u8; 32];
    wrong_version[..4].copy_from_slice(&foreco_net::WIRE_MAGIC);
    wrong_version[4] = foreco_net::WIRE_VERSION + 9;
    raw.send(&wrong_version).unwrap();
    // A well-formed frame for a session nobody attached.
    let mut buf = [0u8; foreco_net::MAX_FRAME];
    let len = foreco_net::wire::encode_miss(&mut buf, 999, 0, 0).unwrap();
    raw.send(&buf[..len]).unwrap();

    // A real operator is unbothered: attach and stream a short trace,
    // including one frame with a wrong joint count (attributably
    // malformed, counted, never delivered — its slot flushes as lost).
    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 9)
        .head(40)
        .commands;
    let mut client = ForecoClient::connect(3, gateway.udp_addr(), gateway.tcp_addr())
        .expect("connect over sockets");
    client.open(trace[0].clone(), 64).expect("open");
    let len = foreco_net::wire::encode_command(&mut buf, 3, 0, 0, &[1.0, 2.0, 3.0]).unwrap();
    raw.connect(gateway.udp_addr()).unwrap();
    raw.send(&buf[..len]).unwrap();
    // A structurally valid frame with an absurd sequence jump (a
    // spoofed datagram): it must be rejected as malformed, not allowed
    // to stampede the watermark across 2^63 missing slots.
    let pose: Vec<f64> = trace[0].clone();
    let len = foreco_net::wire::encode_command(&mut buf, 3, u64::MAX - 1, 0, &pose).unwrap();
    raw.send(&buf[..len]).unwrap();
    // Give the junk frames time to land before the real slot 0 (this
    // test asserts counters, not bit-determinism).
    std::thread::sleep(std::time::Duration::from_millis(50));
    client
        .replay(&trace, 0, &ClientConfig::default())
        .expect("replay");
    let stats = client.stats().expect("stats over the wire");
    assert_eq!(
        stats.malformed, 2,
        "wrong-dims and absurd-seq frames counted"
    );
    assert_eq!(stats.delivered, trace.len() as u64);
    assert_eq!(stats.lost, 0, "the spoofed seq must not flush real slots");
    let (report, ingress) = client.close().expect("close");
    assert_eq!(report.ticks as usize, trace.len());
    assert_eq!(ingress.malformed, 2);

    let (undecodable, unknown) = gateway.reject_counters();
    assert!(undecodable >= 3, "garbage datagrams counted: {undecodable}");
    assert!(unknown >= 1, "unattached-session frames counted: {unknown}");
    gateway.shutdown();
}

#[test]
fn attached_subscriber_leaves_results_bit_identical() {
    let trace = test_trace();

    // Ground truth: nobody watching.
    let quiet_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn quiet gateway");
    let (quiet_report, quiet_ingress, _) =
        drive(ForecoClient::loopback(&quiet_gw, SESSION), &trace);
    quiet_gw.shutdown();

    // Same trace with a poll-mode subscriber attached for the whole
    // run — lifecycle narration (including the observer-gated Parked
    // events) must not change a single output bit.
    let watched_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn watched gateway");
    let mut watcher = ForecoClient::loopback(&watched_gw, 0);
    let subscription = watcher.subscribe().expect("subscribe");
    let (report, ingress, _) = drive(ForecoClient::loopback(&watched_gw, SESSION), &trace);

    let mut events = Vec::new();
    loop {
        let batch = watcher.poll_events(subscription, 1024).expect("poll");
        assert_eq!(batch.dropped, 0, "one session cannot overflow the queue");
        if batch.events.is_empty() {
            break;
        }
        events.extend(batch.events);
    }
    watcher.unsubscribe(subscription).expect("unsubscribe");
    watched_gw.shutdown();

    assert_eq!(report.ticks, quiet_report.ticks);
    assert_eq!(report.misses, quiet_report.misses);
    assert_eq!(report.stats, quiet_report.stats);
    assert_eq!(report.rmse_mm.to_bits(), quiet_report.rmse_mm.to_bits());
    assert_eq!(
        report.max_deviation_mm.to_bits(),
        quiet_report.max_deviation_mm.to_bits()
    );
    assert_eq!(ingress.delivered, quiet_ingress.delivered);
    assert_eq!(ingress.lost, quiet_ingress.lost);

    // The subscription saw the session's lifecycle, and the Completed
    // event carried the same bits the close handshake returned.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FleetEvent::Opened { id, .. } if *id == SESSION)),
        "subscriber saw the open"
    );
    let completed = events
        .iter()
        .find_map(|e| match e {
            FleetEvent::Completed { id, report } if *id == SESSION => Some(report),
            _ => None,
        })
        .expect("subscriber saw the completion");
    assert_eq!(completed.rmse_mm.to_bits(), report.rmse_mm.to_bits());
    assert_eq!(completed.ticks, report.ticks);
}

#[test]
fn stream_mode_pushes_events_over_tcp() {
    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 11)
        .head(80)
        .commands;
    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway");

    // A dedicated push-mode connection, attached before any traffic.
    let (mut stream, _subscription) =
        EventStream::connect(gateway.tcp_addr()).expect("event stream");

    let mut client = ForecoClient::connect(3, gateway.udp_addr(), gateway.tcp_addr())
        .expect("connect over sockets");
    client.open(trace[0].clone(), trace.len()).expect("open");
    client
        .replay(&trace, 0, &ClientConfig::default())
        .expect("replay");
    let (report, _) = client.close().expect("close");

    // The gateway pushes the lifecycle without being polled.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_opened = false;
    let mut completed = None;
    while completed.is_none() && Instant::now() < deadline {
        match stream.next(Duration::from_millis(200)).expect("next event") {
            Some(FleetEvent::Opened { id: 3, .. }) => saw_opened = true,
            Some(FleetEvent::Completed { id: 3, report }) => completed = Some(report),
            _ => {}
        }
    }
    gateway.shutdown();

    assert!(saw_opened, "push stream delivered the open");
    let completed = completed.expect("push stream delivered the completion");
    assert_eq!(completed.rmse_mm.to_bits(), report.rmse_mm.to_bits());
    assert_eq!(completed.ticks, report.ticks);
}

#[test]
fn rejections_carry_typed_codes() {
    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), GatewayConfig::default())
        .expect("spawn gateway");
    let mut client = ForecoClient::loopback(&gateway, 11);

    // A zero-capacity inbox is a malformed request.
    match client.open(vec![0.0; 6], 0) {
        Err(NetError::Rejected { code, reason }) => {
            assert_eq!(code, RejectCode::BadRequest, "reason: {reason}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // Stats for a session nobody attached.
    match client.stats() {
        Err(NetError::Rejected { code, .. }) => assert_eq!(code, RejectCode::UnknownSession),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    // Releasing a subscription that does not exist.
    match client.unsubscribe(999) {
        Err(NetError::Rejected { code, .. }) => assert_eq!(code, RejectCode::UnknownSession),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    gateway.shutdown();
}

/// Splits one exposition body into `(samples, family → type)` while
/// asserting line-level conformance: every line is a well-formed
/// HELP/TYPE comment or a `name[{labels}] value` sample, every sample
/// belongs to a declared family, metric names use the legal charset,
/// no series (name + label set) appears twice, and counter families
/// carry the `_total` suffix.
fn parse_exposition(body: &str) -> (BTreeMap<String, f64>, BTreeMap<String, String>) {
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(!name.is_empty(), "comment without a metric name: {line}");
            match keyword {
                "HELP" => assert!(
                    parts.next().is_some_and(|help| !help.is_empty()),
                    "HELP without text: {line}"
                ),
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    assert!(
                        matches!(kind, "counter" | "gauge" | "summary"),
                        "unknown metric type: {line}"
                    );
                    if kind == "counter" {
                        assert!(
                            name.ends_with("_total"),
                            "counter family without _total suffix: {name}"
                        );
                    }
                    assert!(
                        families
                            .insert(name.to_string(), kind.to_string())
                            .is_none(),
                        "family declared twice: {name}"
                    );
                }
                other => panic!("unknown comment keyword {other:?}: {line}"),
            }
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value: {line}"));
        let name = &series[..series.find('{').unwrap_or(series.len())];
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name: {line}"
        );
        assert!(
            series.len() == name.len() || series.ends_with('}'),
            "unterminated label set: {line}"
        );
        assert!(
            families.contains_key(name),
            "sample without a TYPE declaration: {line}"
        );
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate series: {series}"
        );
    }
    (samples, families)
}

#[test]
fn metrics_exposition_is_conformant_and_counters_are_monotonic() {
    let trace = test_trace();
    let gateway = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn gateway");
    let mut client = ForecoClient::loopback(&gateway, SESSION);
    let mut scraper = ForecoClient::loopback(&gateway, 0);

    // First scrape mid-churn, second after more traffic completed.
    client.open(trace[0].clone(), trace.len()).expect("open");
    let cut = trace.len() / 2;
    client
        .replay(&trace[..cut], 0, &ClientConfig::default())
        .expect("first half");
    let first = scraper.metrics().expect("first scrape");
    client
        .replay(&trace[cut..], cut as u64, &ClientConfig::default())
        .expect("second half");
    let (report, _) = client.close().expect("close");
    let second = scraper.metrics().expect("second scrape");
    gateway.shutdown();

    let (first_samples, first_families) = parse_exposition(&first);
    let (second_samples, second_families) = parse_exposition(&second);
    assert!(!first_samples.is_empty(), "scrape produced samples");
    for expected in [
        "foreco_ticks_total",
        "foreco_sessions_opened_total",
        "foreco_shard_sessions",
        "foreco_ingress_delivered_total",
    ] {
        assert!(
            first_families.contains_key(expected),
            "missing family {expected}"
        );
    }
    // A completed FoReCo session puts the RMSE summary on the board.
    assert_eq!(
        second_families
            .get("foreco_session_rmse_mm")
            .map(String::as_str),
        Some("summary")
    );
    assert!(
        second_samples
            .get("foreco_session_rmse_mm{quantile=\"0.5\"}")
            .is_some_and(|v| v.is_finite()),
        "rmse quantiles rendered"
    );
    assert!(report.rmse_mm.is_finite());

    // Every counter series is monotonic across the two scrapes, and the
    // second scrape reflects the finished replay.
    for (series, value) in &first_samples {
        let name = &series[..series.find('{').unwrap_or(series.len())];
        if first_families.get(name).map(String::as_str) == Some("counter") {
            let later = second_samples
                .get(series)
                .unwrap_or_else(|| panic!("series vanished between scrapes: {series}"));
            assert!(
                later >= value,
                "counter went backwards: {series} {value} -> {later}"
            );
        }
    }
    let delivered_after = second_samples["foreco_ingress_delivered_total"];
    assert!(
        delivered_after >= trace.len() as f64,
        "second scrape saw the whole replay: {delivered_after}"
    );
}
