//! Gateway integration suite: the issue's acceptance criterion.
//!
//! A teleop trace replayed by [`NetClient`] over **localhost UDP/TCP**
//! must produce session statistics **bit-identical** to the same trace
//! driven through the in-process **loopback transport** — and the
//! client's injected drops/lateness must surface as engine loss events
//! (misses the forecaster covers) and §VII-C late patches in the
//! [`MetricsRegistry`].
//!
//! Determinism over a real socket holds because (a) a gated session's
//! clock advances only as ingress slots are consumed, and (b) every
//! ingress decision depends on frame arrival order, not wall time. The
//! replay keeps its tail impairment-free so every settleable slot is
//! acked before close — the one wall-clock race (a datagram still in
//! flight at close) is thereby excluded by construction.

use foreco_core::RecoveryConfig;
use foreco_net::{
    ClientConfig, ControlWire, DataWire, Gateway, GatewayConfig, IngressConfig, NetClient,
    ReplayStats, TcpControl, UdpWire,
};
use foreco_serve::{
    ChannelSpec, IngressSummary, MetricsRegistry, RecoverySpec, ServiceConfig, SessionReport,
    SharedForecaster,
};
use foreco_teleop::{Dataset, Skill};

const SESSION: u64 = 7;
const CLEAN_TAIL: usize = 80;

fn foreco_gateway_config() -> GatewayConfig {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let var = foreco_forecast::Var::fit_differenced(&train, 5, 1e-6).expect("fit VAR");
    let model = foreco_robot::niryo_one();
    let mut recovery = RecoveryConfig::for_model(&model);
    // §VII-C on: late frames must patch the forecast history.
    recovery.use_late_commands = true;
    GatewayConfig {
        recovery: RecoverySpec::FoReCo {
            forecaster: SharedForecaster::new(var),
            config: recovery,
        },
        channel: ChannelSpec::Ideal,
        ingress: IngressConfig {
            // A short reorder horizon so deliberately-late frames
            // (late_depth below) genuinely miss it and ride §VII-C.
            reorder_window: 3,
            ..IngressConfig::default()
        },
        ..GatewayConfig::default()
    }
}

fn test_trace() -> Vec<Vec<f64>> {
    Dataset::record(Skill::Inexperienced, 1, 0.02, 321)
        .head(400)
        .commands
}

fn impaired_config() -> ClientConfig {
    ClientConfig {
        loss: 0.04,
        late: 0.05,
        late_depth: 4, // > reorder_window: arrives behind the horizon
        seed: 0xC0FFEE,
        ..ClientConfig::default()
    }
}

/// Attach, replay (impaired body + clean tail), detach.
fn drive<D: DataWire, C: ControlWire>(
    mut client: NetClient<D, C>,
    trace: &[Vec<f64>],
) -> (SessionReport, IngressSummary, ReplayStats) {
    client
        .open(trace[0].clone(), trace.len().max(16))
        .expect("open session");
    let cut = trace.len().saturating_sub(CLEAN_TAIL);
    let stats = client
        .replay(&trace[..cut], 0, &impaired_config())
        .expect("impaired replay");
    // Clean tail: every outstanding gap flushes and every settleable
    // slot settles before close (see the module docs).
    client
        .replay(&trace[cut..], cut as u64, &ClientConfig::default())
        .expect("clean tail");
    let (report, ingress) = client.close().expect("close");
    (report, ingress, stats)
}

#[test]
fn udp_replay_is_bit_identical_to_loopback_and_losses_reach_the_engine() {
    let trace = test_trace();
    assert!(trace.len() > 2 * CLEAN_TAIL, "trace long enough to impair");

    // Loopback: the hermetic ground truth.
    let loop_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn loopback gateway");
    let (data, control) = loop_gw.loopback();
    let (loop_report, loop_ingress, loop_stats) =
        drive(NetClient::new(SESSION, data, control), &trace);
    loop_gw.shutdown();

    // Real sockets: localhost UDP data plane + TCP control plane.
    let udp_gw = Gateway::spawn(ServiceConfig::with_shards(2), foreco_gateway_config())
        .expect("spawn socket gateway");
    let data = UdpWire::connect(udp_gw.udp_addr()).expect("udp connect");
    let control = TcpControl::connect(udp_gw.tcp_addr()).expect("tcp connect");
    let (udp_report, udp_ingress, udp_stats) =
        drive(NetClient::new(SESSION, data, control), &trace);
    udp_gw.shutdown();

    // The client made identical impairment decisions on both transports…
    assert_eq!(loop_stats.sent, udp_stats.sent);
    assert_eq!(loop_stats.lost, udp_stats.lost);
    assert_eq!(loop_stats.deferred, udp_stats.deferred);
    assert!(loop_stats.lost > 0, "impairment must actually drop frames");
    assert!(loop_stats.deferred > 0, "impairment must defer frames");

    // …the gateway reached identical ingress verdicts…
    assert_eq!(loop_ingress.delivered, udp_ingress.delivered);
    assert_eq!(loop_ingress.lost, udp_ingress.lost);
    assert_eq!(loop_ingress.late, udp_ingress.late);
    assert!(loop_ingress.lost > 0, "drops surface as ingress losses");
    assert!(loop_ingress.late > 0, "deferred frames ride the late path");

    // …and the sessions' final statistics are bit-identical.
    assert_eq!(loop_report.ticks, udp_report.ticks);
    assert_eq!(loop_report.misses, udp_report.misses);
    assert_eq!(loop_report.stats, udp_report.stats);
    assert_eq!(
        loop_report.rmse_mm.to_bits(),
        udp_report.rmse_mm.to_bits(),
        "rmse must be bit-identical across transports: {} vs {}",
        loop_report.rmse_mm,
        udp_report.rmse_mm
    );
    assert_eq!(
        loop_report.max_deviation_mm.to_bits(),
        udp_report.max_deviation_mm.to_bits()
    );

    // The client's injected impairments are visible as engine events in
    // the registry: losses became forecast-covered misses, late frames
    // became §VII-C history patches.
    let mut registry = MetricsRegistry::new();
    registry.record(udp_report.clone());
    registry.record_ingress(vec![udp_ingress]);
    let engine = udp_report.stats.expect("FoReCo session has stats");
    assert!(
        udp_report.misses as u64 >= udp_ingress.lost,
        "every wire loss is an engine miss"
    );
    assert!(
        engine.forecasts + engine.warmup_repeats + engine.horizon_holds >= udp_ingress.lost,
        "engine covered the losses"
    );
    assert!(engine.late_patches > 0, "§VII-C patches landed");
    assert_eq!(registry.ingress()[0].lost, udp_ingress.lost);
    assert_eq!(
        registry.summary().expect("session completed").total_misses,
        udp_report.misses as u64
    );
}

#[test]
fn snapshot_adopt_survives_a_gateway_restart_bit_identically() {
    let trace = test_trace();
    let cut = trace.len() / 2;
    let clean = ClientConfig::default();

    // Twin: the same trace, uninterrupted, on its own gateway.
    let twin_gw = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn twin gateway");
    let (data, control) = twin_gw.loopback();
    let mut twin = NetClient::new(SESSION, data, control);
    twin.open(trace[0].clone(), trace.len()).expect("open twin");
    twin.replay(&trace, 0, &clean).expect("twin replay");
    let (twin_report, _) = twin.close().expect("twin close");
    twin_gw.shutdown();

    // First gateway "process": half the trace, checkpoint, die.
    let gw_a = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway A");
    let (data, control) = gw_a.loopback();
    let mut operator = NetClient::new(SESSION, data, control);
    operator.open(trace[0].clone(), trace.len()).expect("open");
    operator
        .replay(&trace[..cut], 0, &clean)
        .expect("first half");
    let snapshot = operator.snapshot().expect("checkpoint over the wire");
    gw_a.shutdown(); // the gateway restarts…

    // …and the operator re-attaches to the revived session.
    let gw_b = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway B");
    let (data, control) = gw_b.loopback();
    let mut operator = NetClient::new(SESSION, data, control);
    let next_slot = operator.adopt(&snapshot).expect("adopt");
    assert_eq!(next_slot as usize, cut, "resume where the wire left off");
    operator
        .replay(&trace[cut..], next_slot, &clean)
        .expect("second half");
    let (report, ingress) = operator.close().expect("close");
    gw_b.shutdown();

    assert_eq!(report.ticks, twin_report.ticks);
    assert_eq!(report.misses, twin_report.misses);
    assert_eq!(report.stats, twin_report.stats);
    assert_eq!(report.rmse_mm.to_bits(), twin_report.rmse_mm.to_bits());
    assert_eq!(ingress.delivered as usize, trace.len() - cut);
}

#[test]
fn impairment_through_the_final_slot_terminates_and_closes_cleanly() {
    // Regression: a replay whose *last* slots are lost or deferred must
    // not hang — stale frames are fire-and-forget (they can never
    // re-settle below the ack watermark), retransmission paces off its
    // own clock instead of rewinding the progress clock, and the drain
    // gives up on trailing unsettleable slots so close() can flush
    // every gap the gateway knows about.
    let trace = test_trace();
    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), foreco_gateway_config())
        .expect("spawn gateway");
    let (data, control) = gateway.loopback();
    let mut client = NetClient::new(SESSION, data, control);
    client.open(trace[0].clone(), trace.len()).expect("open");
    let stats = client
        .replay(&trace, 0, &impaired_config())
        .expect("impaired replay to the last slot");
    assert!(stats.lost > 0 && stats.deferred > 0);
    let (report, ingress) = client.close().expect("close");
    gateway.shutdown();
    // Every slot the gateway settled got exactly one verdict: the
    // session's tick count is deliveries plus flushed losses, and only
    // slots trailing the final received frame are missing from it.
    assert_eq!(report.ticks, ingress.delivered + ingress.lost);
    assert!(report.ticks as usize <= trace.len());
    assert!(
        trace.len() as u64 - report.ticks <= impaired_config().late_depth + 1,
        "only a trailing loss/deferral span may go unheard: {} of {}",
        report.ticks,
        trace.len()
    );
    assert!(report.misses as u64 >= ingress.lost);
}

#[test]
fn malformed_and_unknown_traffic_is_counted_and_contained() {
    use std::net::UdpSocket;

    let gateway = Gateway::spawn(ServiceConfig::with_shards(1), GatewayConfig::default())
        .expect("spawn gateway");
    let raw = UdpSocket::bind("127.0.0.1:0").expect("bind raw socket");
    raw.connect(gateway.udp_addr()).expect("connect raw socket");

    // Garbage, bad magic, wrong version, truncation: all undecodable.
    raw.send(b"not a frame at all").unwrap();
    let mut bad = [0u8; 32];
    bad[..4].copy_from_slice(b"XXXX");
    raw.send(&bad).unwrap();
    let mut wrong_version = [0u8; 32];
    wrong_version[..4].copy_from_slice(&foreco_net::WIRE_MAGIC);
    wrong_version[4] = foreco_net::WIRE_VERSION + 9;
    raw.send(&wrong_version).unwrap();
    // A well-formed frame for a session nobody attached.
    let mut buf = [0u8; foreco_net::MAX_FRAME];
    let len = foreco_net::wire::encode_miss(&mut buf, 999, 0, 0).unwrap();
    raw.send(&buf[..len]).unwrap();

    // A real operator is unbothered: attach and stream a short trace,
    // including one frame with a wrong joint count (attributably
    // malformed, counted, never delivered — its slot flushes as lost).
    let trace = Dataset::record(Skill::Inexperienced, 1, 0.02, 9)
        .head(40)
        .commands;
    let data = UdpWire::connect(gateway.udp_addr()).expect("udp connect");
    let control = TcpControl::connect(gateway.tcp_addr()).expect("tcp connect");
    let mut client = NetClient::new(3, data, control);
    client.open(trace[0].clone(), 64).expect("open");
    let len = foreco_net::wire::encode_command(&mut buf, 3, 0, 0, &[1.0, 2.0, 3.0]).unwrap();
    raw.connect(gateway.udp_addr()).unwrap();
    raw.send(&buf[..len]).unwrap();
    // A structurally valid frame with an absurd sequence jump (a
    // spoofed datagram): it must be rejected as malformed, not allowed
    // to stampede the watermark across 2^63 missing slots.
    let pose: Vec<f64> = trace[0].clone();
    let len = foreco_net::wire::encode_command(&mut buf, 3, u64::MAX - 1, 0, &pose).unwrap();
    raw.send(&buf[..len]).unwrap();
    // Give the junk frames time to land before the real slot 0 (this
    // test asserts counters, not bit-determinism).
    std::thread::sleep(std::time::Duration::from_millis(50));
    client
        .replay(&trace, 0, &ClientConfig::default())
        .expect("replay");
    let stats = client.stats().expect("stats over the wire");
    assert_eq!(
        stats.malformed, 2,
        "wrong-dims and absurd-seq frames counted"
    );
    assert_eq!(stats.delivered, trace.len() as u64);
    assert_eq!(stats.lost, 0, "the spoofed seq must not flush real slots");
    let (report, ingress) = client.close().expect("close");
    assert_eq!(report.ticks as usize, trace.len());
    assert_eq!(ingress.malformed, 2);

    let (undecodable, unknown) = gateway.reject_counters();
    assert!(undecodable >= 3, "garbage datagrams counted: {undecodable}");
    assert!(unknown >= 1, "unattached-session frames counted: {unknown}");
    gateway.shutdown();
}
