//! Golden-vector regression tests: committed input/output fixtures per
//! forecaster, compared **bit-exactly**, so a refactor of any forecaster
//! (or of `foreco-linalg` underneath the trained ones) cannot silently
//! change imputation numerics. The service-level determinism suite
//! compares runs against each other; this file pins the absolute values.
//!
//! The fixture `tests/fixtures/golden_vectors.json` holds, per
//! forecaster, the 6-step recursive forecast horizon (step 0 is the
//! plain one-step forecast) over a fixed history window. Inputs are
//! fully deterministic: the synthetic dataset below uses only +,-,×,÷
//! (no libm trig, whose last bits can differ across platforms), and the
//! trained models fit on it with the in-tree deterministic OLS.
//!
//! `Seq2SeqForecaster` is deliberately not pinned here: its training is
//! three orders of magnitude slower than everything else combined and
//! leans on libm transcendentals whose final bits are platform-specific.
//!
//! To regenerate after an *intentional* numerics change:
//!
//! ```text
//! cargo test -p foreco-forecast --test golden_vectors -- --ignored regenerate
//! ```
//!
//! then commit the diff — the point is that the diff is visible.

use foreco_forecast::{forecast_horizon, Forecaster, Holt, KalmanCv, MovingAverage, Var, Varma};
use foreco_teleop::Dataset;
use serde::Value;

const HORIZON: usize = 6;
const FIXTURE: &str = include_str!("fixtures/golden_vectors.json");

/// 400 six-joint commands from exact rational recurrences: per joint a
/// lightly damped oscillator with a sawtooth drive — smooth, quasi-
/// periodic motion in the teleoperation amplitude range, bit-identical
/// on every IEEE-754 platform.
fn synthetic_dataset() -> Dataset {
    let mut commands = Vec::with_capacity(400);
    let mut x = [0.10, -0.20, 0.30, 0.00, -0.10, 0.20];
    let mut v = [0.010, 0.020, -0.015, 0.010, 0.000, -0.020];
    for i in 0..400 {
        let drive = (i % 50) as f64 * 1e-4 - 2.5e-3;
        for k in 0..6 {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let acc = -0.08 * x[k] - 0.05 * v[k] + sign * drive;
            v[k] += acc * 0.25;
            x[k] += v[k] * 0.25;
        }
        commands.push(x.to_vec());
    }
    Dataset {
        period: 0.02,
        commands,
        cycle_starts: vec![0],
    }
}

/// The forecasters under pin, with stable fixture keys.
fn forecasters(train: &Dataset) -> Vec<(&'static str, Box<dyn Forecaster>)> {
    vec![
        ("ma-5", Box::new(MovingAverage::new(5, 6))),
        ("holt-5", Box::new(Holt::default_teleop(5, 6))),
        ("kalman-8", Box::new(KalmanCv::default_teleop(8, 6))),
        (
            "var-levels-3",
            Box::new(Var::fit(train, 3, 1e-6).expect("fit levels VAR")),
        ),
        (
            "var-diff-3",
            Box::new(Var::fit_differenced(train, 3, 1e-6).expect("fit differenced VAR")),
        ),
        (
            "varma-2-2",
            Box::new(Varma::fit(train, 2, 2, 1e-6).expect("fit VARMA")),
        ),
    ]
}

/// The fixed input window: 12 mid-trajectory commands.
fn history(train: &Dataset) -> Vec<Vec<f64>> {
    train.commands[100..112].to_vec()
}

fn computed_horizons() -> Vec<(&'static str, Vec<Vec<f64>>)> {
    let train = synthetic_dataset();
    let hist = history(&train);
    forecasters(&train)
        .into_iter()
        .map(|(key, f)| (key, forecast_horizon(f.as_ref(), &hist, HORIZON)))
        .collect()
}

#[test]
fn forecasters_match_golden_vectors_bit_exactly() {
    let fixture: Value = serde_json::from_str(FIXTURE).expect("parse fixture");
    let mut pinned = 0;
    for (key, horizon) in computed_horizons() {
        let expected = fixture
            .get(key)
            .unwrap_or_else(|| panic!("fixture missing `{key}` — regenerate (see module docs)"))
            .as_array()
            .expect("fixture entry is an array of steps");
        assert_eq!(expected.len(), horizon.len(), "{key}: step count");
        for (step, (exp_step, got_step)) in expected.iter().zip(&horizon).enumerate() {
            let exp_step = exp_step.as_array().expect("step is an array of joints");
            assert_eq!(exp_step.len(), got_step.len(), "{key} step {step}: dims");
            for (joint, (exp, got)) in exp_step.iter().zip(got_step).enumerate() {
                let exp = match exp {
                    Value::Number(n) => *n,
                    other => panic!("{key} step {step} joint {joint}: not a number: {other:?}"),
                };
                assert_eq!(
                    exp.to_bits(),
                    got.to_bits(),
                    "{key} step {step} joint {joint}: fixture {exp} vs computed {got} — \
                     imputation numerics changed; if intentional, regenerate the fixture"
                );
            }
        }
        pinned += 1;
    }
    assert_eq!(pinned, 6, "every forecaster family must be pinned");
}

/// The fixture itself must stay in sync with the key list above.
#[test]
fn fixture_has_no_stale_entries() {
    let fixture: Value = serde_json::from_str(FIXTURE).expect("parse fixture");
    let keys: Vec<&str> = computed_horizons().iter().map(|(k, _)| *k).collect();
    for (key, _) in fixture.as_object().expect("fixture is an object") {
        assert!(
            keys.contains(&key.as_str()),
            "fixture entry `{key}` matches no pinned forecaster"
        );
    }
}

/// Writes the fixture from current numerics. Ignored: run explicitly
/// (and review the diff!) when an imputation change is intentional.
#[test]
#[ignore = "regenerates the committed fixture; run on intentional numerics changes only"]
fn regenerate() {
    let entries: Vec<(String, Value)> = computed_horizons()
        .into_iter()
        .map(|(key, horizon)| {
            let steps = Value::Array(
                horizon
                    .into_iter()
                    .map(|step| Value::Array(step.into_iter().map(Value::Number).collect()))
                    .collect(),
            );
            (key.to_string(), steps)
        })
        .collect();
    let json = serde_json::to_string_pretty(&Value::Object(entries)).expect("render fixture");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_vectors.json");
    std::fs::write(&path, json + "\n").expect("write fixture");
    eprintln!("regenerated {}", path.display());
}
