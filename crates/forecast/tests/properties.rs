//! Property-based tests for the forecasters.

use foreco_forecast::{forecast_horizon, Forecaster, Holt, MovingAverage, Var};
use foreco_teleop::Dataset;
use proptest::prelude::*;

fn history(len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-2.0f64..2.0, 3), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MA output is a convex combination: each coordinate lies within the
    /// min/max of its window.
    #[test]
    fn ma_within_window_hull(hist in history(8)) {
        let ma = MovingAverage::new(5, 3);
        let pred = ma.forecast(&hist);
        for k in 0..3 {
            let window: Vec<f64> = hist[hist.len() - 5..].iter().map(|c| c[k]).collect();
            let lo = window.iter().cloned().fold(f64::MAX, f64::min);
            let hi = window.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(pred[k] >= lo - 1e-12 && pred[k] <= hi + 1e-12);
        }
    }

    /// Every forecaster returns finite values of the right dimension on
    /// finite input, and forecast_horizon returns exactly `steps` items.
    #[test]
    fn finite_in_finite_out(hist in history(12), steps in 1usize..20) {
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MovingAverage::new(5, 3)),
            Box::new(Holt::default_teleop(6, 3)),
        ];
        for f in &forecasters {
            let pred = f.forecast(&hist);
            prop_assert_eq!(pred.len(), 3);
            prop_assert!(pred.iter().all(|v| v.is_finite()));
            let run = forecast_horizon(f.as_ref(), &hist, steps);
            prop_assert_eq!(run.len(), steps);
        }
    }

    /// Constant histories are fixed points for MA and Holt and for a
    /// trained differenced VAR (its predicted velocity is ~0 on a
    /// stationary window).
    #[test]
    fn constant_history_fixed_points(value in -1.0f64..1.0) {
        let hist = vec![vec![value; 3]; 12];
        let ma = MovingAverage::new(5, 3).forecast(&hist);
        let holt = Holt::default_teleop(6, 3).forecast(&hist);
        for k in 0..3 {
            prop_assert!((ma[k] - value).abs() < 1e-12);
            prop_assert!((holt[k] - value).abs() < 1e-9);
        }
    }

    /// VAR fitting is permutation-stable in the target sense: forecasting
    /// the training data one step ahead has bounded error everywhere.
    #[test]
    fn var_in_sample_error_bounded(seed in 0u64..20) {
        let ds = Dataset::record(foreco_teleop::Skill::Experienced, 1, 0.02, seed);
        let var = Var::fit_differenced(&ds, 4, 1e-6).unwrap();
        for (hist, target) in ds.windows(var.history_len()).step_by(37) {
            let pred = var.forecast(hist);
            for (p, t) in pred.iter().zip(target) {
                // One joystick step (0.04 rad) plus slack bounds the
                // in-sample one-step error.
                prop_assert!((p - t).abs() < 0.08, "{p} vs {t}");
            }
        }
    }
}
