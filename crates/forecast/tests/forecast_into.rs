//! `Forecaster::forecast_into` must be **bit-identical** to the legacy
//! allocating `forecast` for every forecaster family — the contract the
//! recovery engine's zero-allocation hot path rests on (and what lets
//! the service determinism suites pass unchanged).
//!
//! Random histories include NaN and `-0.0` payloads: NaN propagation
//! exercises operation *order* (any reordering shows up as different
//! NaN spread), and `-0.0` probes the zero-skipping fast paths of the
//! VAR regression (`-0.0 == 0.0`, so both paths must skip it alike).
//! Every history is additionally presented to `forecast_into` at every
//! ring split point, pinning the two-run `HistoryView` seam logic.
//!
//! Run with a pinned case count for reproducibility:
//! `PROPTEST_CASES=64 cargo test -p foreco-forecast --test forecast_into`

use foreco_forecast::{
    ForecastScratch, Forecaster, HistoryView, Holt, KalmanCv, MovingAverage, Seq2SeqForecaster,
    Seq2SeqTrainConfig, Var, Varma,
};
use foreco_teleop::{Dataset, Skill};
use proptest::prelude::*;

/// One random coordinate: mostly tame magnitudes, with NaN, signed
/// zeros, and subnormal extremes mixed in at a fixed rate.
fn coord() -> impl Strategy<Value = f64> {
    (0u64..1 << 32).prop_map(|n| match n % 24 {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => 1e-308,
        4 => -37.5,
        _ => (n >> 5) as f64 / (1u64 << 27) as f64 * 4.0 - 2.0,
    })
}

fn history(len: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(coord(), dims), len)
}

/// Asserts `forecast_into == forecast` bit for bit, at every possible
/// head/tail split of the flattened history.
fn assert_bit_identical(f: &dyn Forecaster, hist: &[Vec<f64>]) {
    let dims = f.dims();
    let legacy = f.forecast(hist);
    assert_eq!(legacy.len(), dims);
    let flat: Vec<f64> = hist.iter().flatten().copied().collect();
    let mut scratch = ForecastScratch::new();
    let mut out = vec![0.0; dims];
    for cut in 0..=hist.len() {
        let view = HistoryView::new(&flat[..cut * dims], &flat[cut * dims..], dims);
        // Poison the output buffer: every element must be overwritten.
        out.fill(f64::MIN_POSITIVE);
        f.forecast_into(&view, &mut scratch, &mut out);
        for (k, (a, b)) in out.iter().zip(&legacy).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: joint {k} differs at split {cut} ({a} vs {b})",
                f.name(),
            );
        }
    }
}

fn trained_var_pair() -> (Var, Var, Varma) {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    (
        Var::fit(&train, 4, 1e-6).expect("levels VAR"),
        Var::fit_differenced(&train, 4, 1e-6).expect("differenced VAR"),
        Varma::fit(&train, 3, 2, 1e-6).expect("VARMA"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(48))]

    /// The training-free families at their natural 6-DoF shape.
    #[test]
    fn closed_form_families_are_bit_identical(hist in history(9, 6)) {
        let forecasters: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MovingAverage::new(5, 6)),
            Box::new(MovingAverage::new(1, 6)), // repeat-last degenerate
            Box::new(Holt::default_teleop(6, 6)),
            Box::new(KalmanCv::default_teleop(7, 6)),
        ];
        for f in &forecasters {
            assert_bit_identical(f.as_ref(), &hist);
        }
    }

    /// The trained families: levels VAR (zero-skip regression), the
    /// deployed differenced VAR (scratch-built diff rows, clamping),
    /// and VARMA (stage-1 residual rebuild in scratch).
    #[test]
    fn trained_families_are_bit_identical(hist in history(8, 6)) {
        let (levels, diff, varma) = trained_var_pair();
        assert_bit_identical(&levels, &hist);
        assert_bit_identical(&diff, &hist);
        assert_bit_identical(&varma, &hist);
    }
}

/// The default shim (used by forecasters without a native
/// `forecast_into`, i.e. seq2seq) materialises the view and defers to
/// the legacy method — trivially identical, pinned once on a tiny
/// trained net rather than under proptest (training dominates).
#[test]
fn seq2seq_shim_is_bit_identical() {
    use foreco_nn::{Activation, AdamConfig, Seq2SeqConfig};
    let train = Dataset::record(Skill::Experienced, 1, 0.02, 3).head(160);
    let cfg = Seq2SeqTrainConfig {
        model: Seq2SeqConfig {
            input_dim: 6,
            encoder_hidden: 8,
            decoder_hidden: 4,
            activation: Activation::Tanh,
            adam: AdamConfig::default(),
            batch_size: 32,
        },
        r: 4,
        epochs: 1,
        subsample: 8,
        seed: 5,
    };
    let s2s = Seq2SeqForecaster::fit(&train, &cfg);
    let hist: Vec<Vec<f64>> = (0..6)
        .map(|i| (0..6).map(|k| 0.01 * i as f64 - 0.005 * k as f64).collect())
        .collect();
    assert_bit_identical(&s2s, &hist);
}
