//! The batched lane must be **bit-identical** to the scalar path in
//! *every layout* — `BatchLane::run_layout` per member ≡
//! `forecast_into` on that member's own history, for member-major,
//! slot-major (transposed), and the per-member scalar fallback, for
//! every batchable family. This is the contract that lets the serve
//! runtime pick layouts per pass for throughput without moving a
//! single output bit (the same pattern that guarded
//! `forecast_into ≡ forecast` when the zero-allocation path landed).
//!
//! Random windows include NaN and `-0.0` payloads: NaN propagation
//! exercises operation *order* inside the batched kernels (any
//! reordering shows up as different NaN spread), and `-0.0` probes the
//! VAR regression's zero-skipping fast path. The scalar reference is
//! additionally presented at every ring split point, pinning that the
//! lane's contiguous gathered copy equals any two-run ring view of the
//! same rows. Lane sizes are ragged on purpose — 1, 2, odd counts under
//! proptest, 1000 in a deterministic stress case — and one lane is
//! reused across passes with changing membership, the shard planner's
//! park/wake/migrate pattern.
//!
//! Run with a pinned case count for reproducibility:
//! `PROPTEST_CASES=32 cargo test -p foreco-forecast --test batch_identity`

use foreco_forecast::{
    BatchLane, ForecastScratch, Forecaster, HistoryView, Holt, KalmanCv, LaneLayout, MovingAverage,
    Var, Varma, SLOT_MAJOR_MIN_WIDTH,
};
use foreco_teleop::{Dataset, Skill};
use proptest::prelude::*;
use std::sync::Arc;

/// Every lane layout: the member-major SoA sweep, the slot-major
/// (transposed) sweep, and the per-member scalar fallback. All three
/// must move zero bits relative to the scalar path.
const LAYOUTS: [LaneLayout; 3] = [
    LaneLayout::MemberMajor,
    LaneLayout::SlotMajor,
    LaneLayout::Scalar,
];

/// One random coordinate: mostly tame magnitudes, with NaN, signed
/// zeros, and subnormal extremes mixed in at a fixed rate.
fn coord() -> impl Strategy<Value = f64> {
    (0u64..1 << 32).prop_map(|n| match n % 24 {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => 1e-308,
        4 => -37.5,
        _ => (n >> 5) as f64 / (1u64 << 27) as f64 * 4.0 - 2.0,
    })
}

/// `members` windows of `rows` commands each (row-major, `dims` wide).
fn lane_windows(members: usize, rows: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(coord(), rows * dims), members)
}

/// Runs one lane pass over `windows` in `layout` and asserts every
/// member's row equals the scalar `forecast_into` on the same history —
/// with the scalar side viewing the history at a rotating ring split,
/// so the gathered contiguous copy is also checked against seam views.
fn assert_lane_layout_matches_scalar(
    forecaster: &Arc<dyn Forecaster>,
    windows: &[Vec<f64>],
    layout: LaneLayout,
) {
    let dims = forecaster.dims();
    let mut lane = BatchLane::new(Arc::clone(forecaster));
    let mut lane_scratch = ForecastScratch::new();
    lane.clear();
    for flat in windows {
        lane.push_window(&HistoryView::contiguous(flat, dims));
    }
    lane.run_layout(layout, &mut lane_scratch);
    assert_lane_results_match_scalar(forecaster, windows, &lane, layout);
}

fn assert_lane_results_match_scalar(
    forecaster: &Arc<dyn Forecaster>,
    windows: &[Vec<f64>],
    lane: &BatchLane,
    layout: LaneLayout,
) {
    let dims = forecaster.dims();
    let mut scratch = ForecastScratch::new();
    let mut out = vec![0.0; dims];
    for (i, flat) in windows.iter().enumerate() {
        let rows = flat.len() / dims;
        let cut = i % (rows + 1);
        let view = HistoryView::new(&flat[..cut * dims], &flat[cut * dims..], dims);
        // Poison the output buffer: every element must be overwritten.
        out.fill(f64::MIN_POSITIVE);
        forecaster.forecast_into(&view, &mut scratch, &mut out);
        for (k, (a, b)) in lane.result(i).iter().zip(&out).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} [{layout:?}]: member {i} joint {k} differs from scalar ({a} vs {b})",
                forecaster.name(),
            );
        }
    }
}

/// All three layouts of one window set against the scalar path.
fn assert_lane_matches_scalar(forecaster: &Arc<dyn Forecaster>, windows: &[Vec<f64>]) {
    for layout in LAYOUTS {
        assert_lane_layout_matches_scalar(forecaster, windows, layout);
    }
}

/// The batchable closed-form families at their natural 6-DoF shape.
fn closed_form_families() -> Vec<Arc<dyn Forecaster>> {
    vec![
        Arc::new(MovingAverage::new(5, 6)),
        Arc::new(MovingAverage::new(1, 6)), // repeat-last degenerate
        Arc::new(Holt::default_teleop(6, 6)),
        Arc::new(KalmanCv::default_teleop(7, 6)),
    ]
}

fn trained_families() -> Vec<Arc<dyn Forecaster>> {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    vec![
        Arc::new(Var::fit(&train, 4, 1e-6).expect("levels VAR")),
        Arc::new(Var::fit_differenced(&train, 4, 1e-6).expect("differenced VAR")),
        // VARMA has no native batch kernel: the lane's per-member
        // scalar fallback must engage, bit-identically.
        Arc::new(Varma::fit(&train, 3, 2, 1e-6).expect("VARMA")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(32))]

    /// Ragged lanes (1, 2, and odd member counts) of NaN/`-0.0`-laced
    /// windows, every batchable closed-form family. Windows carry two
    /// extra rows so the kernels' internal `suffix(R)` trim is hit.
    #[test]
    fn closed_form_lanes_match_scalar(
        members in (0usize..4).prop_map(|i| [1usize, 2, 3, 7][i]),
        seed_windows in lane_windows(7, 9, 6),
    ) {
        for f in &closed_form_families() {
            assert_lane_matches_scalar(f, &seed_windows[..members]);
        }
    }

    /// The trained families: levels VAR (zero-skip regression), the
    /// deployed differenced VAR (per-member diff scratch, clamping),
    /// and VARMA through the scalar fallback.
    #[test]
    fn trained_lanes_match_scalar(
        members in (0usize..3).prop_map(|i| [1usize, 2, 5][i]),
        seed_windows in lane_windows(5, 8, 6),
    ) {
        for f in &trained_families() {
            assert_lane_matches_scalar(f, &seed_windows[..members]);
        }
    }

    /// One lane object reused across passes with changing membership —
    /// the shard planner's park/wake/migrate pattern: members leave,
    /// join, and reorder between passes while the lane's buffers are
    /// retained. Every pass must still match the scalar path member by
    /// member.
    #[test]
    fn membership_churn_across_passes_stays_identical(
        windows in lane_windows(6, 7, 6),
        drop_pass2 in 0usize..6,
    ) {
        let f: Arc<dyn Forecaster> = Arc::new(Holt::default_teleop(5, 6));
        // Pass 1: everyone. Pass 2: one session parks. Pass 3: it wakes
        // and the order rotates (a migration re-homing the lane).
        let pass1: Vec<Vec<f64>> = windows.clone();
        let mut pass2 = windows.clone();
        pass2.remove(drop_pass2);
        let mut pass3 = windows;
        pass3.rotate_left(2);
        // Reuse one lane across the passes (mirrors BatchPlanner's
        // retained buffers) by asserting each pass independently; the
        // helper rebuilds lane membership per pass exactly like
        // `begin_pass` does.
        for pass in [&pass1, &pass2, &pass3] {
            assert_lane_matches_scalar(&f, pass);
        }
    }
}

/// A 1000-member lane (deterministic ramp windows): the stress shape
/// CI's proptest case budget would never reach, pinned once.
#[test]
fn thousand_member_lane_matches_scalar() {
    let families: Vec<Arc<dyn Forecaster>> = vec![
        Arc::new(MovingAverage::new(5, 6)),
        Arc::new(Holt::default_teleop(6, 6)),
        Arc::new(KalmanCv::default_teleop(7, 6)),
    ];
    let windows: Vec<Vec<f64>> = (0..1000)
        .map(|m| {
            (0..9 * 6)
                .map(|j| 0.001 * m as f64 + 0.01 * (j % 6) as f64 - 0.002 * (j / 6) as f64)
                .collect()
        })
        .collect();
    for f in &families {
        assert_lane_matches_scalar(f, &windows);
    }
}

/// Deterministic NaN/`-0.0`-laced windows: ramp values with a NaN, a
/// `-0.0`, and a subnormal planted per member at member-dependent
/// slots, so payload selection and the zero-skip both fire at every
/// width.
fn laced_windows(members: usize, rows: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..members)
        .map(|m| {
            let mut w: Vec<f64> = (0..rows * dims)
                .map(|j| 0.003 * m as f64 + 0.05 * (j % dims) as f64 - 0.01 * (j / dims) as f64)
                .collect();
            let len = w.len();
            w[m % len] = f64::NAN;
            w[(m * 7 + 3) % len] = -0.0;
            w[(m * 11 + 5) % len] = 1e-308;
            w
        })
        .collect()
}

/// Widths straddling the slot-major threshold (threshold−1, threshold,
/// threshold+1) for the families that own a slot kernel: the planner
/// switches layout exactly here, so this is where a width-dependent
/// kernel bug would surface.
#[test]
fn threshold_straddling_widths_match_scalar() {
    let train = Dataset::record(Skill::Experienced, 2, 0.02, 7);
    let families: Vec<Arc<dyn Forecaster>> = vec![
        Arc::new(KalmanCv::default_teleop(7, 6)),
        Arc::new(Var::fit(&train, 4, 1e-6).expect("levels VAR")),
        Arc::new(Var::fit_differenced(&train, 4, 1e-6).expect("differenced VAR")),
    ];
    for width in [
        SLOT_MAJOR_MIN_WIDTH - 1,
        SLOT_MAJOR_MIN_WIDTH,
        SLOT_MAJOR_MIN_WIDTH + 1,
    ] {
        for f in &families {
            let rows = f.history_len() + 2;
            assert_lane_matches_scalar(f, &laced_windows(width, rows, 6));
        }
    }
}

/// One lane object swept in a *different layout each pass* while its
/// buffers (windows, slot transpose, results) are retained — the shard
/// planner's shape when a lane's width crosses the threshold between
/// passes. Stale slot-major scratch from a previous wider pass must
/// never leak into a later pass's results.
#[test]
fn mixed_layout_passes_reuse_one_lane() {
    let f: Arc<dyn Forecaster> = Arc::new(KalmanCv::default_teleop(7, 6));
    let mut lane = BatchLane::new(Arc::clone(&f));
    let mut scratch = ForecastScratch::new();
    let passes = [
        (SLOT_MAJOR_MIN_WIDTH + 3, LaneLayout::SlotMajor),
        (5usize, LaneLayout::MemberMajor),
        (SLOT_MAJOR_MIN_WIDTH, LaneLayout::SlotMajor),
        (3, LaneLayout::Scalar),
        (SLOT_MAJOR_MIN_WIDTH - 1, LaneLayout::MemberMajor),
        (2 * SLOT_MAJOR_MIN_WIDTH, LaneLayout::SlotMajor),
    ];
    for &(members, layout) in &passes {
        let windows = laced_windows(members, f.history_len() + 2, 6);
        lane.clear();
        for flat in &windows {
            lane.push_window(&HistoryView::contiguous(flat, 6));
        }
        lane.run_layout(layout, &mut scratch);
        assert_lane_results_match_scalar(&f, &windows, &lane, layout);
    }
}
