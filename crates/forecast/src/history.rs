//! Borrowed, allocation-free views over a command history.
//!
//! The recovery engine's hot path stores its `{ĉ_j}` window in a flat
//! ring buffer; [`HistoryView`] is the borrow type forecasters consume
//! without ever materialising a `Vec<Vec<f64>>`. A view is at most two
//! contiguous runs of rows (the ring's wrap-around split), exposed as
//! `row(i)` access and oldest→newest iteration.
//!
//! [`ForecastScratch`] is the caller-owned workspace
//! [`crate::Forecaster::forecast_into`] implementations borrow for
//! intermediate rows (VAR's differenced regressors, VARMA's rebuilt
//! residuals). It grows to a per-forecaster high-water mark on first use
//! and never allocates again, which is what makes the steady-state tick
//! allocation-free.

/// A borrowed window of `len × dims` commands, oldest first, stored as
/// up to two contiguous row runs (`head` then `tail` — the natural shape
/// of a wrapped ring buffer). Constructing one never copies or
/// allocates.
#[derive(Debug, Clone, Copy)]
pub struct HistoryView<'a> {
    /// Older run, `head.len() % dims == 0`.
    head: &'a [f64],
    /// Newer run, `tail.len() % dims == 0`.
    tail: &'a [f64],
    dims: usize,
}

impl<'a> HistoryView<'a> {
    /// Builds a view from the two contiguous runs of a wrapped ring
    /// (`head` holds the older rows). Either run may be empty.
    ///
    /// # Panics
    /// Panics if `dims == 0` or either run is not a whole number of rows.
    pub fn new(head: &'a [f64], tail: &'a [f64], dims: usize) -> Self {
        assert!(dims >= 1, "history view: dims must be ≥ 1");
        assert_eq!(head.len() % dims, 0, "history view: ragged head run");
        assert_eq!(tail.len() % dims, 0, "history view: ragged tail run");
        Self { head, tail, dims }
    }

    /// Builds a view over one contiguous row-major block.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `data` is not a whole number of rows.
    pub fn contiguous(data: &'a [f64], dims: usize) -> Self {
        Self::new(data, &[], dims)
    }

    /// Number of rows (commands).
    #[inline]
    pub fn len(&self) -> usize {
        (self.head.len() + self.tail.len()) / self.dims
    }

    /// True when the view holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.tail.is_empty()
    }

    /// Command dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Row `i` (0 = oldest).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        let head_rows = self.head.len() / self.dims;
        if i < head_rows {
            &self.head[i * self.dims..(i + 1) * self.dims]
        } else {
            let j = i - head_rows;
            &self.tail[j * self.dims..(j + 1) * self.dims]
        }
    }

    /// The newest row.
    ///
    /// # Panics
    /// Panics if the view is empty.
    #[inline]
    pub fn back(&self) -> &'a [f64] {
        assert!(!self.is_empty(), "history view: empty");
        self.row(self.len() - 1)
    }

    /// The view's two underlying contiguous runs, older rows first.
    /// Either slice may be empty; together they hold exactly
    /// `len() × dims()` values. Lets bulk consumers (the batching
    /// gather) copy a window as at most two `memcpy`s instead of a
    /// per-row loop.
    #[inline]
    pub fn runs(&self) -> (&'a [f64], &'a [f64]) {
        (self.head, self.tail)
    }

    /// Iterates rows oldest → newest without allocating.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f64]> {
        self.head
            .chunks_exact(self.dims)
            .chain(self.tail.chunks_exact(self.dims))
    }

    /// Sub-view of rows `[start, end)`, preserving order.
    ///
    /// # Panics
    /// Panics if the range is reversed or out of bounds.
    pub fn range(&self, start: usize, end: usize) -> HistoryView<'a> {
        assert!(
            start <= end && end <= self.len(),
            "history view: bad range {start}..{end} of {}",
            self.len()
        );
        let head_rows = self.head.len() / self.dims;
        let (head, tail) = if end <= head_rows {
            (&self.head[start * self.dims..end * self.dims], &[][..])
        } else if start >= head_rows {
            (
                &[][..],
                &self.tail[(start - head_rows) * self.dims..(end - head_rows) * self.dims],
            )
        } else {
            (
                &self.head[start * self.dims..],
                &self.tail[..(end - head_rows) * self.dims],
            )
        };
        HistoryView {
            head,
            tail,
            dims: self.dims,
        }
    }

    /// The last `n` rows.
    ///
    /// # Panics
    /// Panics if `n > len()`.
    pub fn suffix(&self, n: usize) -> HistoryView<'a> {
        self.range(self.len() - n, self.len())
    }

    /// Materialises the rows (the compatibility shim for forecasters
    /// without a native [`crate::Forecaster::forecast_into`]).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }
}

/// Caller-owned scratch space for [`crate::Forecaster::forecast_into`].
///
/// Holds two independent growable `f64` buffers (VARMA needs its rebuilt
/// residual rows and a stage-1 prediction row live at once). Buffers
/// keep their high-water capacity across calls, so after the first
/// forecast of a given shape no further allocation ever happens.
/// Contents are unspecified between calls — implementations must fully
/// overwrite what they use. Slot-major batch kernels size these
/// buffers to the lane's *width* (per-member state lanes: Kalman-CV
/// carves six filter-state lanes from [`ForecastScratch::buf`], VAR
/// takes its accumulator and diff rows from [`ForecastScratch::pair`]),
/// so the high-water mark tracks the widest lane ever run — still
/// zero allocations per steady pass.
#[derive(Debug, Default, Clone)]
pub struct ForecastScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

impl ForecastScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows the primary buffer at exactly `len` elements.
    pub fn buf(&mut self, len: usize) -> &mut [f64] {
        if self.a.len() < len {
            self.a.resize(len, 0.0);
        }
        &mut self.a[..len]
    }

    /// Borrows both buffers at once (`a_len` primary, `b_len` secondary).
    pub fn pair(&mut self, a_len: usize, b_len: usize) -> (&mut [f64], &mut [f64]) {
        if self.a.len() < a_len {
            self.a.resize(a_len, 0.0);
        }
        if self.b.len() < b_len {
            self.b.resize(b_len, 0.0);
        }
        (&mut self.a[..a_len], &mut self.b[..b_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(rows: &[[f64; 2]]) -> Vec<f64> {
        rows.iter().flatten().copied().collect()
    }

    #[test]
    fn contiguous_rows_and_iteration() {
        let data = flat(&[[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        let v = HistoryView::contiguous(&data, 2);
        assert_eq!(v.len(), 3);
        assert_eq!(v.dims(), 2);
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(2), &[5.0, 6.0]);
        assert_eq!(v.back(), &[5.0, 6.0]);
        let rows: Vec<&[f64]> = v.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0], &[5.0, 6.0]]);
    }

    #[test]
    fn split_view_matches_contiguous() {
        let data = flat(&[[0.0, 1.0], [2.0, 3.0], [4.0, 5.0], [6.0, 7.0]]);
        let whole = HistoryView::contiguous(&data, 2);
        // Every split point must present identical rows.
        for cut in 0..=4 {
            let v = HistoryView::new(&data[..cut * 2], &data[cut * 2..], 2);
            assert_eq!(v.len(), 4);
            for i in 0..4 {
                assert_eq!(v.row(i), whole.row(i), "cut {cut}, row {i}");
            }
            assert_eq!(v.to_rows(), whole.to_rows());
        }
    }

    #[test]
    fn range_and_suffix_across_the_seam() {
        let data = flat(&[[0.0, 0.1], [1.0, 1.1], [2.0, 2.1], [3.0, 3.1], [4.0, 4.1]]);
        for cut in 0..=5 {
            let v = HistoryView::new(&data[..cut * 2], &data[cut * 2..], 2);
            for start in 0..=5 {
                for end in start..=5 {
                    let sub = v.range(start, end);
                    assert_eq!(sub.len(), end - start);
                    for i in 0..sub.len() {
                        assert_eq!(sub.row(i), v.row(start + i), "cut {cut} {start}..{end}@{i}");
                    }
                }
            }
            assert_eq!(v.suffix(2).row(0), v.row(3));
        }
    }

    #[test]
    fn scratch_buffers_are_independent_and_sticky() {
        let mut s = ForecastScratch::new();
        {
            let (a, b) = s.pair(4, 2);
            a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            b.copy_from_slice(&[9.0, 9.0]);
            assert_eq!(a.len(), 4);
            assert_eq!(b.len(), 2);
        }
        // Smaller requests reuse the same storage, no shrink.
        assert_eq!(s.buf(2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_runs() {
        let data = [1.0, 2.0, 3.0];
        let _ = HistoryView::new(&data, &[], 2);
    }
}
