//! Constant-velocity Kalman forecaster.
//!
//! The AGV literature the paper compares against (\[36\], Lozoya et al.)
//! uses Kalman filtering for its delay/trajectory estimation; this module
//! provides the equivalent command forecaster as an additional baseline:
//! per joint, a 2-state (position, velocity) Kalman filter with a
//! constant-velocity process model,
//!
//! ```text
//! x_{i+1} = F x_i + w,   F = [1 Ω; 0 1],   w ~ N(0, Q)
//! z_i     = H x_i + v,   H = [1 0],        v ~ N(0, R)
//! ```
//!
//! run over the provided history window at forecast time (no training
//! phase; the process/measurement noises are the tuning knobs). The
//! prediction is the one-step-ahead state `F x̂`.

use crate::Forecaster;
use serde::{Deserialize, Serialize};

/// Constant-velocity Kalman filter forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanCv {
    r: usize,
    dims: usize,
    /// Command period Ω used by the process model (seconds).
    pub period: f64,
    /// Process-noise intensity (rad²/s³): how much the operator's joint
    /// velocity is allowed to wander between commands.
    pub process_noise: f64,
    /// Measurement-noise variance (rad²): joystick quantisation + tremor.
    pub measurement_noise: f64,
}

impl KalmanCv {
    /// Creates a Kalman forecaster replaying the last `r` commands.
    ///
    /// # Panics
    /// Panics if `r < 2`, dims is 0, or noise parameters are not positive.
    pub fn new(
        r: usize,
        dims: usize,
        period: f64,
        process_noise: f64,
        measurement_noise: f64,
    ) -> Self {
        assert!(
            r >= 2,
            "Kalman: need at least 2 commands to observe velocity"
        );
        assert!(dims >= 1, "Kalman: dims must be ≥ 1");
        assert!(period > 0.0, "Kalman: period must be positive");
        assert!(
            process_noise > 0.0 && measurement_noise > 0.0,
            "Kalman: noise parameters must be positive"
        );
        Self {
            r,
            dims,
            period,
            process_noise,
            measurement_noise,
        }
    }

    /// Defaults tuned for the 50 Hz Niryo joystick stream: trusting
    /// measurements (quantisation ≈ 0.04 rad) while letting velocity
    /// adapt within a reach.
    pub fn default_teleop(r: usize, dims: usize) -> Self {
        Self::new(r, dims, 0.020, 2.0, 1e-4)
    }

    /// Runs the filter over one joint's window; returns predicted next
    /// position.
    fn filter_joint(&self, series: &[f64]) -> f64 {
        self.filter_joint_from(series.iter().copied())
    }

    /// Iterator form of [`KalmanCv::filter_joint`] — the same arithmetic
    /// in the same order, streamed so the zero-allocation forecast path
    /// needs no per-joint series buffer.
    fn filter_joint_from(&self, mut series: impl Iterator<Item = f64>) -> f64 {
        let dt = self.period;
        // State [pos, vel], covariance P.
        let mut x = [series.next().expect("Kalman: empty window"), 0.0];
        let mut p = [[1.0, 0.0], [0.0, 1.0]]; // generous prior
                                              // Discrete white-noise-acceleration process covariance.
        let q11 = self.process_noise * dt * dt * dt / 3.0;
        let q12 = self.process_noise * dt * dt / 2.0;
        let q22 = self.process_noise * dt;
        let rm = self.measurement_noise;
        for z in series {
            // Predict: x ← F x, P ← F P Fᵀ + Q.
            let xp = [x[0] + dt * x[1], x[1]];
            let p00 = p[0][0] + dt * (p[1][0] + p[0][1]) + dt * dt * p[1][1] + q11;
            let p01 = p[0][1] + dt * p[1][1] + q12;
            let p10 = p[1][0] + dt * p[1][1] + q12;
            let p11 = p[1][1] + q22;
            // Update with measurement z of position.
            let s = p00 + rm;
            let k0 = p00 / s;
            let k1 = p10 / s;
            let innov = z - xp[0];
            x = [xp[0] + k0 * innov, xp[1] + k1 * innov];
            p = [
                [(1.0 - k0) * p00, (1.0 - k0) * p01],
                [p10 - k1 * p00, p11 - k1 * p01],
            ];
        }
        // One-step-ahead prediction.
        x[0] + dt * x[1]
    }
}

impl Forecaster for KalmanCv {
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(
            history.len() >= self.r,
            "Kalman: need {} commands, got {}",
            self.r,
            history.len()
        );
        let window = &history[history.len() - self.r..];
        (0..self.dims)
            .map(|k| {
                let series: Vec<f64> = window
                    .iter()
                    .map(|c| {
                        assert_eq!(c.len(), self.dims, "Kalman: dimension mismatch");
                        c[k]
                    })
                    .collect();
                self.filter_joint(&series)
            })
            .collect()
    }

    fn forecast_into(
        &self,
        history: &crate::HistoryView<'_>,
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) {
        assert!(
            history.len() >= self.r,
            "Kalman: need {} commands, got {}",
            self.r,
            history.len()
        );
        assert_eq!(history.dims(), self.dims, "Kalman: dimension mismatch");
        assert_eq!(out.len(), self.dims, "Kalman: output dimension mismatch");
        let window = history.suffix(self.r);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.filter_joint_from(window.iter().map(|c| c[k]));
        }
    }

    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let stride = self.r * self.dims;
        assert_eq!(
            windows.len(),
            members * stride,
            "Kalman: batch window shape"
        );
        assert_eq!(out.len(), members * self.dims, "Kalman: batch output shape");
        for (w, o) in windows
            .chunks_exact(stride)
            .zip(out.chunks_exact_mut(self.dims))
        {
            // `chunks_exact(dims)` walks this member's rows oldest-first,
            // exactly like `window.iter()` in the scalar kernel.
            for (k, slot) in o.iter_mut().enumerate() {
                *slot = self.filter_joint_from(w.chunks_exact(self.dims).map(|c| c[k]));
            }
        }
        true
    }

    fn forecast_batch_slots(
        &self,
        members: usize,
        slots: &[f64],
        scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let d = self.dims;
        assert_eq!(
            slots.len(),
            members * self.r * d,
            "Kalman: slot batch shape"
        );
        assert_eq!(out.len(), members * d, "Kalman: batch output shape");
        let dt = self.period;
        let q11 = self.process_noise * dt * dt * dt / 3.0;
        let q12 = self.process_noise * dt * dt / 2.0;
        let q22 = self.process_noise * dt;
        let rm = self.measurement_noise;
        // Six per-member state lanes ([pos, vel] + covariance), carved
        // from one scratch buffer: each member's filter recursion runs
        // in its own lane, so the cross-member inner loop below is the
        // exact scalar arithmetic of `filter_joint_from`, vectorized
        // across independent sequences.
        let state = scratch.buf(6 * members);
        let (x0, rest) = state.split_at_mut(members);
        let (x1, rest) = rest.split_at_mut(members);
        let (p00, rest) = rest.split_at_mut(members);
        let (p01, rest) = rest.split_at_mut(members);
        let (p10, p11) = rest.split_at_mut(members);
        for k in 0..d {
            // Init from the oldest row: x = [z₀, 0], P = I.
            x0.copy_from_slice(&slots[k * members..(k + 1) * members]);
            x1.fill(0.0);
            p00.fill(1.0);
            p01.fill(0.0);
            p10.fill(0.0);
            p11.fill(1.0);
            for i in 1..self.r {
                let z = &slots[(i * d + k) * members..(i * d + k + 1) * members];
                for m in 0..members {
                    // Predict: x ← F x, P ← F P Fᵀ + Q.
                    let xp0 = x0[m] + dt * x1[m];
                    let xp1 = x1[m];
                    let a00 = p00[m] + dt * (p10[m] + p01[m]) + dt * dt * p11[m] + q11;
                    let a01 = p01[m] + dt * p11[m] + q12;
                    let a10 = p10[m] + dt * p11[m] + q12;
                    let a11 = p11[m] + q22;
                    // Update with measurement z of position.
                    let s = a00 + rm;
                    let k0 = a00 / s;
                    let k1 = a10 / s;
                    let innov = z[m] - xp0;
                    x0[m] = xp0 + k0 * innov;
                    x1[m] = xp1 + k1 * innov;
                    p00[m] = (1.0 - k0) * a00;
                    p01[m] = (1.0 - k0) * a01;
                    p10[m] = a10 - k1 * a00;
                    p11[m] = a11 - k1 * a01;
                }
            }
            // One-step-ahead prediction, scattered back member-major.
            for m in 0..members {
                out[m * d + k] = x0[m] + dt * x1[m];
            }
        }
        true
    }

    fn cost_class(&self) -> crate::CostClass {
        // Six covariance updates and a division per (member, row, joint):
        // the recursion dwarfs the gather + transpose, so wide lanes pay
        // for the slot-major layout.
        crate::CostClass::Expensive
    }

    fn history_len(&self) -> usize {
        self.r
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "Kalman-CV"
    }

    fn export_state(&self) -> Option<crate::ForecasterState> {
        Some(crate::ForecasterState::Kalman(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_onto_a_ramp() {
        // x_i = 0.01·i: after a 10-sample window the filter's velocity
        // estimate is ≈ 0.01/Ω and the prediction continues the ramp.
        let kf = KalmanCv::default_teleop(10, 1);
        let hist: Vec<Vec<f64>> = (0..10).map(|i| vec![0.01 * i as f64]).collect();
        let pred = kf.forecast(&hist)[0];
        assert!((pred - 0.10).abs() < 0.005, "predicted {pred}");
    }

    #[test]
    fn constant_series_is_near_fixed_point() {
        let kf = KalmanCv::default_teleop(10, 2);
        let hist = vec![vec![0.3, -0.7]; 10];
        let pred = kf.forecast(&hist);
        assert!((pred[0] - 0.3).abs() < 1e-6);
        assert!((pred[1] + 0.7).abs() < 1e-6);
    }

    #[test]
    fn beats_ma_on_trending_data() {
        let hist: Vec<Vec<f64>> = (0..8).map(|i| vec![0.02 * i as f64]).collect();
        let kf = KalmanCv::default_teleop(8, 1).forecast(&hist)[0];
        let ma = crate::MovingAverage::new(8, 1).forecast(&hist)[0];
        let truth = 0.16;
        assert!((kf - truth).abs() < (ma - truth).abs());
    }

    #[test]
    fn noise_robustness() {
        // A noisy constant series must not excite a large velocity.
        let kf = KalmanCv::default_teleop(12, 1);
        let hist: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![0.5 + if i % 2 == 0 { 1e-3 } else { -1e-3 }])
            .collect();
        let pred = kf.forecast(&hist)[0];
        assert!((pred - 0.5).abs() < 0.01, "predicted {pred}");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_window() {
        KalmanCv::new(1, 1, 0.02, 1.0, 1.0);
    }
}
