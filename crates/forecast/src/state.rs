//! Serialisable forecaster state for session snapshots.
//!
//! A [`crate::Forecaster`] inside a live recovery engine is a boxed
//! trait object; to checkpoint a session to bytes the service needs a
//! concrete, versionable description of it that can be rebuilt on
//! another shard or in another process. [`ForecasterState`] is that
//! description: an externally-tagged enum over the in-tree forecaster
//! types, each of which is plain data (windows, smoothing factors,
//! trained coefficient matrices).
//!
//! Every forecaster here is a *pure function* of the history window the
//! engine feeds it — the per-session mutable state lives in the engine's
//! history, not in the forecaster — so rebuilding from state yields
//! bit-identical forecasts, which is what the snapshot/restore
//! determinism suite pins.
//!
//! [`Seq2SeqForecaster`](crate::Seq2SeqForecaster) is deliberately
//! absent: its weight tensors are orders of magnitude larger than the
//! rest of a snapshot and it is not deployed by the service runtime.
//! Engines wrapping it report
//! `Forecaster::export_state() == None` and snapshotting such a session
//! fails with an explicit error instead of silently dropping state.

use crate::{Forecaster, Holt, KalmanCv, MovingAverage, Var, Varma};
use serde::{Deserialize, Serialize};

/// Concrete, serialisable form of a deployed forecaster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForecasterState {
    /// Moving average (eq. 8 benchmark).
    Ma(MovingAverage),
    /// Holt double exponential smoothing (§VII-C).
    Holt(Holt),
    /// Constant-velocity Kalman filter (related-work baseline).
    Kalman(KalmanCv),
    /// Trained VAR — the paper's winner (eq. 5).
    Var(Var),
    /// Trained VARMA (§VII-C, Hannan–Rissanen).
    Varma(Varma),
}

impl ForecasterState {
    /// Rebuilds a boxed forecaster producing bit-identical forecasts to
    /// the one this state was exported from.
    pub fn build(&self) -> Box<dyn Forecaster> {
        match self {
            ForecasterState::Ma(f) => Box::new(f.clone()),
            ForecasterState::Holt(f) => Box::new(*f),
            ForecasterState::Kalman(f) => Box::new(*f),
            ForecasterState::Var(f) => Box::new(f.clone()),
            ForecasterState::Varma(f) => Box::new(f.clone()),
        }
    }

    /// The canonical bytes of this state — the content a model is
    /// *addressed by* in shared storage and dedup-aware archives.
    ///
    /// Two models have the same canonical bytes iff they are the same
    /// forecaster family with bit-identical parameters (the JSON codec
    /// round-trips every `f64` bit pattern, `-0.0` and NaNs included),
    /// which by the purity contract above means bit-identical forecasts.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("forecaster state serialization is infallible")
            .into_bytes()
    }

    /// Display name of the wrapped forecaster.
    pub fn name(&self) -> &'static str {
        match self {
            ForecasterState::Ma(_) => "MA",
            ForecasterState::Holt(_) => "Holt",
            ForecasterState::Kalman(_) => "Kalman-CV",
            ForecasterState::Var(_) => "VAR",
            ForecasterState::Varma(_) => "VARMA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_forecasts() {
        let hist: Vec<Vec<f64>> = (0..12).map(|i| vec![0.01 * i as f64, -0.5]).collect();
        let states = [
            ForecasterState::Ma(MovingAverage::new(5, 2)),
            ForecasterState::Holt(Holt::default_teleop(5, 2)),
            ForecasterState::Kalman(KalmanCv::default_teleop(8, 2)),
        ];
        for state in &states {
            let json = serde_json::to_string(state).unwrap();
            let back: ForecasterState = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, state);
            let a = state.build().forecast(&hist);
            let b = back.build().forecast(&hist);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "{} drifted", state.name());
        }
    }
}
