//! Holt's linear exponential smoothing — one of the two §VII-C
//! future-work forecasters ("our future work will consider exponential
//! smoothing methods").
//!
//! Per coordinate, Holt maintains a level `ℓ` and a trend `b`:
//!
//! ```text
//! ℓ_i = α x_i + (1−α)(ℓ_{i−1} + b_{i−1})
//! b_i = β (ℓ_i − ℓ_{i−1}) + (1−β) b_{i−1}
//! ĉ_{i+1} = ℓ_i + b_i
//! ```
//!
//! Being recursive over the provided history it needs no training; `R`
//! only bounds how much history the recursion replays per forecast.

use crate::Forecaster;
use serde::{Deserialize, Serialize};

/// Holt double-exponential-smoothing forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Holt {
    r: usize,
    dims: usize,
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ (0, 1]`.
    pub beta: f64,
}

impl Holt {
    /// Creates a Holt forecaster replaying the last `r` commands.
    ///
    /// # Panics
    /// Panics on `r < 2` (a trend needs two points) or factors outside
    /// `(0, 1]`.
    pub fn new(r: usize, dims: usize, alpha: f64, beta: f64) -> Self {
        assert!(r >= 2, "Holt: R must be ≥ 2");
        assert!(dims >= 1, "Holt: dims must be ≥ 1");
        assert!(alpha > 0.0 && alpha <= 1.0, "Holt: alpha out of (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "Holt: beta out of (0,1]");
        Self {
            r,
            dims,
            alpha,
            beta,
        }
    }

    /// Sensible teleoperation defaults: responsive level, damped trend.
    pub fn default_teleop(r: usize, dims: usize) -> Self {
        Self::new(r, dims, 0.8, 0.3)
    }
}

impl Forecaster for Holt {
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert!(
            history.len() >= self.r,
            "Holt: need {} commands, got {}",
            self.r,
            history.len()
        );
        let window = &history[history.len() - self.r..];
        let mut out = vec![0.0; self.dims];
        for k in 0..self.dims {
            let mut level = window[0][k];
            let mut trend = window[1][k] - window[0][k];
            for cmd in &window[1..] {
                assert_eq!(cmd.len(), self.dims, "Holt: dimension mismatch");
                let prev_level = level;
                level = self.alpha * cmd[k] + (1.0 - self.alpha) * (level + trend);
                trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            }
            out[k] = level + trend;
        }
        out
    }

    fn forecast_into(
        &self,
        history: &crate::HistoryView<'_>,
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) {
        assert!(
            history.len() >= self.r,
            "Holt: need {} commands, got {}",
            self.r,
            history.len()
        );
        assert_eq!(history.dims(), self.dims, "Holt: dimension mismatch");
        assert_eq!(out.len(), self.dims, "Holt: output dimension mismatch");
        let window = history.suffix(self.r);
        for (k, slot) in out.iter_mut().enumerate() {
            let mut level = window.row(0)[k];
            let mut trend = window.row(1)[k] - window.row(0)[k];
            for i in 1..self.r {
                let prev_level = level;
                level = self.alpha * window.row(i)[k] + (1.0 - self.alpha) * (level + trend);
                trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            }
            *slot = level + trend;
        }
    }

    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        _scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let stride = self.r * self.dims;
        assert_eq!(windows.len(), members * stride, "Holt: batch window shape");
        assert_eq!(out.len(), members * self.dims, "Holt: batch output shape");
        for (w, o) in windows
            .chunks_exact(stride)
            .zip(out.chunks_exact_mut(self.dims))
        {
            // Identical recursion to the scalar kernel; `row(i)` becomes
            // a flat-slice index into this member's gathered window.
            let row = |i: usize| &w[i * self.dims..(i + 1) * self.dims];
            for (k, slot) in o.iter_mut().enumerate() {
                let mut level = row(0)[k];
                let mut trend = row(1)[k] - row(0)[k];
                for i in 1..self.r {
                    let prev_level = level;
                    level = self.alpha * row(i)[k] + (1.0 - self.alpha) * (level + trend);
                    trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
                }
                *slot = level + trend;
            }
        }
        true
    }

    fn history_len(&self) -> usize {
        self.r
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "Holt"
    }

    fn export_state(&self) -> Option<crate::ForecasterState> {
        Some(crate::ForecasterState::Holt(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolates_a_perfect_ramp() {
        // On x_i = i the level/trend recursion locks on and predicts i+1.
        let h = Holt::new(6, 1, 0.9, 0.9);
        let hist: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let pred = h.forecast(&hist)[0];
        assert!((pred - 6.0).abs() < 0.2, "predicted {pred}");
    }

    #[test]
    fn constant_series_is_fixed_point() {
        let h = Holt::default_teleop(5, 2);
        let hist = vec![vec![0.4, -0.1]; 5];
        let pred = h.forecast(&hist);
        assert!((pred[0] - 0.4).abs() < 1e-9);
        assert!((pred[1] + 0.1).abs() < 1e-9);
    }

    #[test]
    fn beats_ma_on_trending_data() {
        // MA undershoots ramps (see ma.rs); Holt must not.
        let hist: Vec<Vec<f64>> = (0..8).map(|i| vec![0.01 * i as f64]).collect();
        let holt = Holt::default_teleop(8, 1).forecast(&hist)[0];
        let ma = crate::MovingAverage::new(8, 1).forecast(&hist)[0];
        let truth = 0.08;
        assert!((holt - truth).abs() < (ma - truth).abs());
    }

    #[test]
    #[should_panic(expected = "R must be ≥ 2")]
    fn rejects_tiny_window() {
        Holt::new(1, 1, 0.5, 0.5);
    }
}
