//! VARMA — the paper's named future-work forecaster (§VII-C: "Vector
//! Autoregression Moving Average … combines the benefits of both MA and
//! VAR to prevent saw-teeth oscillations, and anticipate faster the
//! increases/decreases of the time-series").
//!
//! Estimated with the Hannan–Rissanen two-stage procedure, the standard
//! OLS route to VARMA without likelihood optimisation:
//!
//! 1. fit a (long) VAR and compute its one-step residuals `ε_i`;
//! 2. regress `c_i` on both the lagged commands *and* the lagged
//!    residuals — the residual coefficients are the MA part.
//!
//! At forecast time the residual history is rebuilt from the provided
//! window with the stage-1 VAR.

use crate::{Forecaster, Var};
use foreco_linalg::{ols_ridge, Matrix, OlsError};
use foreco_teleop::Dataset;
use serde::{Deserialize, Serialize};

/// A trained VARMA(R, Q) model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Varma {
    r: usize,
    q: usize,
    dims: usize,
    /// Stage-1 VAR used to reconstruct residuals at forecast time.
    stage1: Var,
    /// Stage-2 coefficients, `(1 + d·R + d·Q) x d`.
    beta: Matrix,
}

impl Varma {
    /// Fits a VARMA(`r`, `q`) on `train` (AR order `r`, MA order `q`).
    ///
    /// # Errors
    /// Propagates [`OlsError`] from either regression stage.
    ///
    /// # Panics
    /// Panics if `r == 0`, `q == 0` or the dataset is empty.
    pub fn fit(train: &Dataset, r: usize, q: usize, ridge: f64) -> Result<Self, OlsError> {
        assert!(r >= 1 && q >= 1, "VARMA: orders must be ≥ 1");
        assert!(!train.is_empty(), "VARMA: empty training dataset");
        let d = train.dof();

        // Stage 1: long VAR and its residual series. Residual ε_i is the
        // one-step error at command i (0 for the first r commands).
        let stage1 = Var::fit(train, r, ridge)?;
        let mut residuals = vec![vec![0.0; d]; train.len()];
        for (i, (hist, target)) in train.windows(r).enumerate() {
            let pred = stage1.forecast(hist);
            let idx = i + r;
            for k in 0..d {
                residuals[idx][k] = target[k] - pred[k];
            }
        }

        // Stage 2: regress c_i on [1, lagged commands, lagged residuals].
        let start = r.max(q);
        let n = train.len() - start;
        let p = 1 + d * r + d * q;
        if n < p {
            return Err(OlsError::Underdetermined { rows: n, cols: p });
        }
        let mut x = Matrix::zeros(n, p);
        let mut y = Matrix::zeros(n, d);
        for (row, i) in (start..train.len()).enumerate() {
            let xr = x.row_mut(row);
            xr[0] = 1.0;
            for lag in 0..r {
                let cmd = &train.commands[i - r + lag];
                for (k, &v) in cmd.iter().enumerate() {
                    xr[1 + lag * d + k] = v;
                }
            }
            for lag in 0..q {
                let res = &residuals[i - q + lag];
                for (k, &v) in res.iter().enumerate() {
                    xr[1 + d * r + lag * d + k] = v;
                }
            }
            y.row_mut(row).copy_from_slice(&train.commands[i]);
        }
        let beta = ols_ridge(&x, &y, ridge)?;
        Ok(Self {
            r,
            q,
            dims: d,
            stage1,
            beta,
        })
    }

    /// Total trainable weights across both stages.
    pub fn num_params(&self) -> usize {
        self.stage1.num_params() + self.beta.rows() * self.beta.cols()
    }
}

impl Forecaster for Varma {
    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
        let need = self.history_len();
        assert!(
            history.len() >= need,
            "VARMA: need {} commands, got {}",
            need,
            history.len()
        );
        let d = self.dims;
        // Rebuild residuals over the window with the stage-1 VAR.
        let tail = &history[history.len() - need..];
        let mut residuals: Vec<Vec<f64>> = Vec::with_capacity(self.q);
        for i in self.r..tail.len() {
            let pred = self.stage1.forecast(&tail[..i]);
            residuals.push(tail[i].iter().zip(&pred).map(|(t, p)| t - p).collect());
        }
        while residuals.len() < self.q {
            residuals.insert(0, vec![0.0; d]);
        }
        let res_tail = &residuals[residuals.len() - self.q..];

        let cmd_tail = &tail[tail.len() - self.r..];
        let mut out = vec![0.0; d];
        for k in 0..d {
            out[k] = self.beta[(0, k)];
        }
        for (lag, cmd) in cmd_tail.iter().enumerate() {
            for (l, &v) in cmd.iter().enumerate() {
                let row = 1 + lag * d + l;
                for k in 0..d {
                    out[k] += v * self.beta[(row, k)];
                }
            }
        }
        for (lag, res) in res_tail.iter().enumerate() {
            for (l, &v) in res.iter().enumerate() {
                let row = 1 + d * self.r + lag * d + l;
                for k in 0..d {
                    out[k] += v * self.beta[(row, k)];
                }
            }
        }
        out
    }

    #[allow(clippy::needless_range_loop)] // k walks out[] against beta columns
    fn forecast_into(
        &self,
        history: &crate::HistoryView<'_>,
        scratch: &mut crate::ForecastScratch,
        out: &mut [f64],
    ) {
        let need = self.history_len();
        assert!(
            history.len() >= need,
            "VARMA: need {} commands, got {}",
            need,
            history.len()
        );
        let d = self.dims;
        assert_eq!(history.dims(), d, "VARMA: dimension mismatch");
        assert_eq!(out.len(), d, "VARMA: output dimension mismatch");
        // Rebuild residuals over the window with the stage-1 VAR, rows
        // landing in the caller-owned scratch: residual j is the stage-1
        // one-step error at tail row r+j, predicted from rows j..j+r.
        let tail = history.suffix(need);
        let (residuals, pred) = scratch.pair(self.q * d, d);
        for j in 0..self.q {
            self.stage1
                .regress_rows(tail.range(j, j + self.r).iter(), pred);
            let target = tail.row(self.r + j);
            for l in 0..d {
                residuals[j * d + l] = target[l] - pred[l];
            }
        }

        for k in 0..d {
            out[k] = self.beta[(0, k)];
        }
        for lag in 0..self.r {
            let cmd = tail.row(self.q + lag);
            for (l, &v) in cmd.iter().enumerate() {
                let row = 1 + lag * d + l;
                for k in 0..d {
                    out[k] += v * self.beta[(row, k)];
                }
            }
        }
        for lag in 0..self.q {
            let res = &residuals[lag * d..(lag + 1) * d];
            for (l, &v) in res.iter().enumerate() {
                let row = 1 + d * self.r + lag * d + l;
                for k in 0..d {
                    out[k] += v * self.beta[(row, k)];
                }
            }
        }
    }

    fn history_len(&self) -> usize {
        // Need r commands for the AR part plus enough extra to rebuild q
        // residuals (each residual needs an r-window before it).
        self.r + self.q
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn name(&self) -> &'static str {
        "VARMA"
    }

    fn export_state(&self) -> Option<crate::ForecasterState> {
        Some(crate::ForecasterState::Varma(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foreco_teleop::Skill;

    #[test]
    fn fits_and_predicts() {
        let train = Dataset::record(Skill::Experienced, 2, 0.02, 11);
        let vm = Varma::fit(&train, 4, 2, 1e-6).unwrap();
        let hist = train.commands[..vm.history_len() + 3].to_vec();
        let pred = vm.forecast(&hist);
        assert_eq!(pred.len(), 6);
        assert!(pred.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn competitive_with_var() {
        let train = Dataset::record(Skill::Experienced, 3, 0.02, 12);
        let test = Dataset::record(Skill::Inexperienced, 1, 0.02, 120);
        let var = Var::fit(&train, 4, 1e-6).unwrap();
        let vm = Varma::fit(&train, 4, 2, 1e-6).unwrap();
        let var_rmse = crate::one_step_rmse(&var, &test);
        let vm_rmse = crate::one_step_rmse(&vm, &test);
        // VARMA must be in VAR's ballpark (the paper expects it to help;
        // at minimum it must not be broken).
        assert!(
            vm_rmse < var_rmse * 1.5,
            "VARMA {vm_rmse} way off VAR {var_rmse}"
        );
    }

    #[test]
    fn underdetermined_errors_cleanly() {
        let ds = Dataset {
            period: 0.02,
            commands: vec![vec![0.1, 0.2]; 12],
            cycle_starts: vec![0],
        };
        assert!(Varma::fit(&ds, 4, 4, 0.0).is_err());
    }
}
