//! Structure-of-arrays batching across forecaster *instances of the
//! same model* — vectorize across sessions, not within one.
//!
//! A fleet's real shape is thousands of recovery loops running the same
//! trained forecaster at the same dimensionality. [`BatchLane`] gathers
//! those sessions' history windows into one contiguous member-major
//! `f64` block and runs a single [`Forecaster::forecast_batch`] sweep
//! over it: one virtual dispatch per lane per pass instead of one per
//! session, with every window walk a linear scan the compiler can keep
//! in cache.
//!
//! **Determinism contract.** Each member's prediction is computed by
//! the exact floating-point operations of the scalar
//! [`Forecaster::forecast_into`] path on that member's rows, in the
//! same order — members never mix. When the forecaster reports no
//! native batched kernel (`forecast_batch` → `false`), [`BatchLane::run`]
//! falls back to per-member `forecast_into` over a contiguous
//! [`HistoryView`] of the gathered window, which is bit-identical to
//! the caller's own scalar call by the split-≡-contiguous view
//! equivalence pinned in [`crate::history`]'s tests.
//!
//! **Layouts.** The member-major gather amortises dispatch but leaves
//! each kernel walking one member's window at a time — the same scalar
//! recursion, minus a virtual call. [`LaneLayout::SlotMajor`] instead
//! transposes the lane so the *members* are contiguous per history
//! slot: an expensive kernel (Kalman-CV's filter recursion, VAR's
//! regression inner products) then runs its arithmetic as a tight
//! cross-member loop the compiler auto-vectorizes. Which layout pays
//! is a function of kernel cost and lane width — [`plan_layout`]
//! encodes the committed decision rule, validated by the bench's
//! `lane_sweep` scenario across widths 1–1024.

use crate::{ForecastScratch, Forecaster, HistoryView};
use std::sync::Arc;

/// How [`BatchLane::run_layout`] presents the gathered windows to the
/// forecaster. Every layout is bit-identical to every other — the
/// choice moves wall-clock time, never output bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneLayout {
    /// Per-member scalar [`Forecaster::forecast_into`] over each
    /// gathered window — no batched kernel at all. At the serve planner
    /// this decision is realised *before* the gather: a session whose
    /// lane would be scalar keeps its own scalar path and never pays
    /// the window memcpy.
    Scalar,
    /// Member-major SoA [`Forecaster::forecast_batch`]: one dispatch
    /// per lane, each member's window contiguous.
    MemberMajor,
    /// Slot-major (transposed) [`Forecaster::forecast_batch_slots`]:
    /// one dispatch per lane, the lane's members contiguous per history
    /// slot so cross-member inner loops auto-vectorize.
    SlotMajor,
}

/// Forecast kernel cost class — see [`Forecaster::cost_class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Kernel arithmetic is comparable to the gather cost (MA, Holt,
    /// repeat-last): batching moves no wall-clock, stay scalar.
    Cheap,
    /// Kernel arithmetic dominates gather + transpose (Kalman-CV, VAR):
    /// batching pays, and wide lanes pay more slot-major.
    Expensive,
}

/// Lane width at which an expensive family's lane switches from
/// member-major to slot-major. Below it the transpose overhead eats the
/// vectorization win; at/above it the cross-member inner loops win.
/// Committed from the bench's `lane_sweep` sweep (widths 1–1024); the
/// `batch_identity` suite pins bit-identity at `threshold − 1`,
/// `threshold`, and `threshold + 1` so the flip can never move bits.
pub const SLOT_MAJOR_MIN_WIDTH: usize = 32;

/// The committed per-lane layout decision: cost class and lane width in,
/// [`LaneLayout`] out.
///
/// - [`CostClass::Cheap`] families stay **scalar** at every width — the
///   member-major experiment measured 0.83–0.91× for them (gather costs
///   more than the dispatch it saves), so their sessions are never
///   gathered at all.
/// - [`CostClass::Expensive`] families batch **member-major** on narrow
///   lanes and **slot-major** from [`SLOT_MAJOR_MIN_WIDTH`] up, where
///   the measured speedup clears 1.0×.
///
/// Any ambiguity elsewhere in the stack (no native kernel, unknown
/// wrapper) degrades member-major → scalar, both bit-identical.
pub fn plan_layout(cost: CostClass, width: usize) -> LaneLayout {
    match cost {
        CostClass::Cheap => LaneLayout::Scalar,
        CostClass::Expensive if width >= SLOT_MAJOR_MIN_WIDTH => LaneLayout::SlotMajor,
        CostClass::Expensive => LaneLayout::MemberMajor,
    }
}

/// One structure-of-arrays forecasting lane: a shared forecaster plus
/// the gathered history windows of every member session this pass.
///
/// Buffers are retained across [`BatchLane::clear`] calls, so a lane
/// reused pass after pass performs zero heap allocations once it has
/// seen its high-water membership.
pub struct BatchLane {
    forecaster: Arc<dyn Forecaster>,
    window_rows: usize,
    dims: usize,
    members: usize,
    /// Member-major gathered windows:
    /// `members × window_rows × dims`, rows oldest-first.
    windows: Vec<f64>,
    /// Slot-major transpose of `windows`, built lazily by
    /// [`BatchLane::run_layout`] for [`LaneLayout::SlotMajor`] passes:
    /// `window_rows × dims × members`, members contiguous per slot.
    /// Lane-owned (not scratch) so the transpose shares the lane's
    /// high-water zero-allocation discipline.
    slots: Vec<f64>,
    /// Member-major predictions: `members × dims`.
    out: Vec<f64>,
}

impl BatchLane {
    /// Creates an empty lane for the given shared forecaster.
    pub fn new(forecaster: Arc<dyn Forecaster>) -> Self {
        let window_rows = forecaster.history_len();
        let dims = forecaster.dims();
        Self {
            forecaster,
            window_rows,
            dims,
            members: 0,
            windows: Vec::new(),
            slots: Vec::new(),
            out: Vec::new(),
        }
    }

    /// The shared forecaster this lane batches over.
    pub fn forecaster(&self) -> &Arc<dyn Forecaster> {
        &self.forecaster
    }

    /// Rows gathered per member window (the forecaster's
    /// [`Forecaster::history_len`]).
    pub fn window_rows(&self) -> usize {
        self.window_rows
    }

    /// Command dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Members gathered since the last [`BatchLane::clear`].
    pub fn members(&self) -> usize {
        self.members
    }

    /// True when no members are gathered.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Drops this pass's members, retaining buffer capacity.
    pub fn clear(&mut self) {
        self.members = 0;
        self.windows.truncate(0);
    }

    /// Gathers the last `window_rows` rows of `history` as the next
    /// member's window; returns the member index for
    /// [`BatchLane::result`].
    ///
    /// # Panics
    /// Panics when `history` is shorter than `window_rows` or its
    /// dimensionality mismatches the lane.
    pub fn push_window(&mut self, history: &HistoryView<'_>) -> usize {
        assert_eq!(history.dims(), self.dims, "batch lane: dimension mismatch");
        // The ring window is at most two contiguous runs: gather it as
        // (at most) two memcpys, never a per-row loop.
        let (head, tail) = history.suffix(self.window_rows).runs();
        self.windows.extend_from_slice(head);
        self.windows.extend_from_slice(tail);
        let member = self.members;
        self.members += 1;
        member
    }

    /// Runs the batched forecast over every gathered member, natively
    /// when the forecaster supports it, else by bit-identical per-member
    /// scalar fallback. Results are read back via [`BatchLane::result`].
    ///
    /// Equivalent to [`BatchLane::run_layout`] with
    /// [`LaneLayout::MemberMajor`].
    pub fn run(&mut self, scratch: &mut ForecastScratch) {
        self.run_layout(LaneLayout::MemberMajor, scratch);
    }

    /// Runs the batched forecast in the requested [`LaneLayout`],
    /// degrading gracefully — slot-major falls back to member-major
    /// falls back to the per-member scalar path — so every layout is
    /// safe to request for every forecaster, and every one produces
    /// bit-identical results.
    pub fn run_layout(&mut self, layout: LaneLayout, scratch: &mut ForecastScratch) {
        self.out.resize(self.members * self.dims, 0.0);
        if self.members == 0 {
            return;
        }
        if layout == LaneLayout::SlotMajor {
            self.transpose_slots();
            if self.forecaster.forecast_batch_slots(
                self.members,
                &self.slots,
                scratch,
                &mut self.out,
            ) {
                return;
            }
        }
        if layout != LaneLayout::Scalar
            && self
                .forecaster
                .forecast_batch(self.members, &self.windows, scratch, &mut self.out)
        {
            return;
        }
        // Scalar fallback: the member's gathered window is a contiguous
        // HistoryView, which presents the exact rows the forecaster
        // would see on the caller's ring (split ≡ contiguous).
        let stride = self.window_rows * self.dims;
        for (w, o) in self
            .windows
            .chunks_exact(stride)
            .zip(self.out.chunks_exact_mut(self.dims))
        {
            let view = HistoryView::contiguous(w, self.dims);
            self.forecaster.forecast_into(&view, scratch, o);
        }
    }

    /// Transposes the member-major gather into the lane-owned slot-major
    /// buffer: `slots[slot * members + m] = windows[m * stride + slot]`.
    /// Pure data movement — each member's values are copied, never
    /// combined, so the transpose cannot move a bit. Runs at `run` time
    /// because the member count is unknown while gathering.
    fn transpose_slots(&mut self) {
        let stride = self.window_rows * self.dims;
        // `resize` only allocates past the high-water mark, like every
        // other lane buffer.
        self.slots.resize(self.members * stride, 0.0);
        for (slot, dst) in self.slots.chunks_exact_mut(self.members).enumerate() {
            for (m, lane) in dst.iter_mut().enumerate() {
                *lane = self.windows[m * stride + slot];
            }
        }
    }

    /// The prediction computed for member `i` by the last
    /// [`BatchLane::run`].
    pub fn result(&self, i: usize) -> &[f64] {
        &self.out[i * self.dims..(i + 1) * self.dims]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Holt, KalmanCv, MovingAverage, Var};
    use foreco_teleop::{Dataset, Skill};

    fn ramp_rows(rows: usize, dims: usize, phase: f64) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|i| {
                (0..dims)
                    .map(|k| phase + 0.01 * (i * dims + k) as f64)
                    .collect()
            })
            .collect()
    }

    fn flat(rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().flatten().copied().collect()
    }

    #[test]
    fn native_batch_matches_scalar_bit_for_bit() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 3);
        let forecasters: Vec<Arc<dyn Forecaster>> = vec![
            Arc::new(MovingAverage::new(5, 6)),
            Arc::new(Holt::default_teleop(5, 6)),
            Arc::new(KalmanCv::default_teleop(5, 6)),
            Arc::new(Var::fit_differenced(&train, 5, 1e-6).unwrap()),
        ];
        for f in forecasters {
            let rows = f.history_len();
            let dims = f.dims();
            let mut lane = BatchLane::new(Arc::clone(&f));
            let windows: Vec<Vec<Vec<f64>>> = (0..7)
                .map(|m| ramp_rows(rows, dims, 0.3 * m as f64))
                .collect();
            let flats: Vec<Vec<f64>> = windows.iter().map(|w| flat(w)).collect();
            for w in &flats {
                lane.push_window(&HistoryView::contiguous(w, dims));
            }
            let mut scratch = ForecastScratch::new();
            lane.run(&mut scratch);
            for (m, w) in flats.iter().enumerate() {
                let mut scalar = vec![0.0; dims];
                let mut s = ForecastScratch::new();
                f.forecast_into(&HistoryView::contiguous(w, dims), &mut s, &mut scalar);
                let got: Vec<u64> = lane.result(m).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = scalar.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "{} member {m}", f.name());
            }
        }
    }

    #[test]
    fn fallback_engages_for_unbatched_forecasters() {
        struct Shim(MovingAverage);
        impl Forecaster for Shim {
            fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64> {
                self.0.forecast(history)
            }
            fn history_len(&self) -> usize {
                self.0.history_len()
            }
            fn dims(&self) -> usize {
                self.0.dims()
            }
            fn name(&self) -> &'static str {
                "shim"
            }
        }
        let inner = MovingAverage::new(3, 2);
        assert!(!Shim(inner.clone()).forecast_batch(0, &[], &mut ForecastScratch::new(), &mut []));
        let mut lane = BatchLane::new(Arc::new(Shim(inner.clone())));
        let w = flat(&ramp_rows(3, 2, 0.0));
        lane.push_window(&HistoryView::contiguous(&w, 2));
        let mut scratch = ForecastScratch::new();
        lane.run(&mut scratch);
        let mut scalar = vec![0.0; 2];
        inner.forecast_into(
            &HistoryView::contiguous(&w, 2),
            &mut ForecastScratch::new(),
            &mut scalar,
        );
        assert_eq!(lane.result(0), scalar.as_slice());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut lane = BatchLane::new(Arc::new(MovingAverage::new(4, 3)));
        let w = flat(&ramp_rows(4, 3, 0.0));
        for _ in 0..16 {
            lane.push_window(&HistoryView::contiguous(&w, 3));
        }
        let mut scratch = ForecastScratch::new();
        lane.run(&mut scratch);
        let cap = (lane.windows.capacity(), lane.out.capacity());
        lane.clear();
        assert!(lane.is_empty());
        for _ in 0..16 {
            lane.push_window(&HistoryView::contiguous(&w, 3));
        }
        lane.run(&mut scratch);
        assert_eq!((lane.windows.capacity(), lane.out.capacity()), cap);
    }

    #[test]
    fn every_layout_is_bit_identical_for_every_family() {
        let train = Dataset::record(Skill::Experienced, 1, 0.02, 3);
        let forecasters: Vec<Arc<dyn Forecaster>> = vec![
            Arc::new(MovingAverage::new(5, 6)),
            Arc::new(Holt::default_teleop(5, 6)),
            Arc::new(KalmanCv::default_teleop(5, 6)),
            Arc::new(Var::fit(&train, 4, 1e-6).unwrap()),
            Arc::new(Var::fit_differenced(&train, 5, 1e-6).unwrap()),
        ];
        for f in forecasters {
            let rows = f.history_len();
            let dims = f.dims();
            let flats: Vec<Vec<f64>> = (0..40)
                .map(|m| flat(&ramp_rows(rows, dims, 0.17 * m as f64 - 3.0)))
                .collect();
            let mut scratch = ForecastScratch::new();
            let mut per_layout: Vec<Vec<u64>> = Vec::new();
            for layout in [
                LaneLayout::Scalar,
                LaneLayout::MemberMajor,
                LaneLayout::SlotMajor,
            ] {
                let mut lane = BatchLane::new(Arc::clone(&f));
                for w in &flats {
                    lane.push_window(&HistoryView::contiguous(w, dims));
                }
                lane.run_layout(layout, &mut scratch);
                per_layout.push(
                    (0..flats.len())
                        .flat_map(|m| lane.result(m).iter().map(|v| v.to_bits()))
                        .collect(),
                );
            }
            assert_eq!(per_layout[0], per_layout[1], "{}: member-major", f.name());
            assert_eq!(per_layout[0], per_layout[2], "{}: slot-major", f.name());
        }
    }

    #[test]
    fn layout_plan_follows_cost_class_and_width() {
        assert_eq!(plan_layout(CostClass::Cheap, 1), LaneLayout::Scalar);
        assert_eq!(plan_layout(CostClass::Cheap, 4096), LaneLayout::Scalar);
        assert_eq!(
            plan_layout(CostClass::Expensive, 1),
            LaneLayout::MemberMajor
        );
        assert_eq!(
            plan_layout(CostClass::Expensive, SLOT_MAJOR_MIN_WIDTH - 1),
            LaneLayout::MemberMajor
        );
        assert_eq!(
            plan_layout(CostClass::Expensive, SLOT_MAJOR_MIN_WIDTH),
            LaneLayout::SlotMajor
        );
        let cheap: Arc<dyn Forecaster> = Arc::new(MovingAverage::new(4, 3));
        assert_eq!(cheap.cost_class(), CostClass::Cheap);
        let dear: Arc<dyn Forecaster> = Arc::new(KalmanCv::default_teleop(5, 6));
        assert_eq!(dear.cost_class(), CostClass::Expensive);
    }

    #[test]
    fn slot_major_transpose_is_exact() {
        let mut lane = BatchLane::new(Arc::new(MovingAverage::new(2, 2)));
        let windows = [[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]];
        for w in &windows {
            lane.push_window(&HistoryView::contiguous(w, 2));
        }
        lane.transpose_slots();
        // Slot-major: for each of the 4 slots, both members' values.
        assert_eq!(lane.slots, [1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 4.0, 8.0]);
    }
}
