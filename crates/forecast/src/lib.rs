//! Command forecasters for FoReCo (§IV-B/§IV-C of the paper).
//!
//! FoReCo predicts the next joint-space command from the last `R`
//! received-or-forecast commands. The paper studies three algorithms and
//! picks VAR; this crate implements all of them behind one [`Forecaster`]
//! trait, plus the two §VII-C future-work candidates:
//!
//! | Forecaster | Paper | Training |
//! |---|---|---|
//! | [`MovingAverage`] | eq. 8 (baseline) | none |
//! | [`Var`] | eq. 5 — the winner | OLS (eq. 9) via `foreco-linalg` |
//! | [`Seq2SeqForecaster`] | eqs. 6–7 | Adam (eqs. 10–13) via `foreco-nn` |
//! | [`Holt`] | §VII-C "exponential smoothing" | closed-form recursion |
//! | [`Varma`] | §VII-C "VARMA" | Hannan–Rissanen two-stage OLS |
//! | [`KalmanCv`] | related work \[36\]'s approach | constant-velocity Kalman filter |
//!
//! [`forecast_horizon`] implements the recursive multi-step forecasting
//! used in Fig. 7 (and the error-propagation effect of Fig. 9c: later
//! forecasts consume earlier ones). [`pipeline`] reproduces the Table-I
//! training stages (load → down-sample → quality check → train) with
//! per-stage timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod history;
mod holt;
mod kalman;
mod ma;
pub mod pipeline;
mod seq2seq;
pub mod state;
mod var;
mod varma;

pub use batch::{plan_layout, BatchLane, CostClass, LaneLayout, SLOT_MAJOR_MIN_WIDTH};
pub use history::{ForecastScratch, HistoryView};
pub use holt::Holt;
pub use kalman::KalmanCv;
pub use ma::MovingAverage;
pub use seq2seq::{Seq2SeqForecaster, Seq2SeqTrainConfig};
pub use state::ForecasterState;
pub use var::{Var, VarMode};
pub use varma::Varma;

/// A next-command predictor: `ĉ_{i+1} = f({ĉ_j}_{i−R+1..i})`.
///
/// `Send + Sync` is a supertrait so trained forecasters can be shared
/// across the session shards of `foreco-serve` (forecasting is `&self`;
/// one trained model serves many concurrent recovery loops).
pub trait Forecaster: Send + Sync {
    /// Predicts the next command given at least [`Forecaster::history_len`]
    /// past commands (most recent last). Implementations use the **last**
    /// `history_len()` entries and ignore anything older.
    ///
    /// # Panics
    /// Implementations panic when fewer than `history_len()` commands are
    /// provided or dimensions mismatch the trained shape.
    fn forecast(&self, history: &[Vec<f64>]) -> Vec<f64>;

    /// Number of past commands `R` the forecaster consumes.
    fn history_len(&self) -> usize;

    /// Command dimensionality `d`.
    fn dims(&self) -> usize;

    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Allocation-free forecast: predicts the next command from a
    /// borrowed [`HistoryView`] into a caller-owned `out` buffer, using
    /// `scratch` for any intermediate rows.
    ///
    /// **Contract: bit-identical to [`Forecaster::forecast`]** on the
    /// same rows — the recovery engine's hot path calls this, and the
    /// service determinism suites (snapshot round-trip, shard
    /// invariance, golden vectors) pin the outputs, so an implementation
    /// must perform the same floating-point operations in the same
    /// order. The in-tree forecasters (MA, Holt, Kalman, VAR, VARMA)
    /// override it with zero-allocation implementations; the default
    /// shims through the allocating method for forecasters that don't
    /// (e.g. seq2seq).
    ///
    /// # Panics
    /// Same preconditions as [`Forecaster::forecast`], plus
    /// `out.len() == dims()`.
    fn forecast_into(
        &self,
        history: &HistoryView<'_>,
        scratch: &mut ForecastScratch,
        out: &mut [f64],
    ) {
        let _ = scratch;
        let pred = self.forecast(&history.to_rows());
        out.copy_from_slice(&pred);
    }

    /// Batched forecast over a structure-of-arrays lane: `members`
    /// gathered history windows, member-major (`windows[m]` occupies
    /// `windows[m * history_len() * dims() ..][.. history_len() * dims()]`,
    /// rows oldest-first), each producing one `dims()`-wide prediction in
    /// the matching slice of `out`.
    ///
    /// Returns `true` when the forecaster ran the batch natively, `false`
    /// when it has no batched kernel — the caller must then fall back to
    /// per-member [`Forecaster::forecast_into`] over the same windows
    /// (see [`BatchLane::run`]), which is bit-identical by construction.
    ///
    /// **Contract: bit-identical to the scalar path.** A native
    /// implementation must perform, for each member independently, the
    /// exact floating-point operations of `forecast_into` on that
    /// member's window, in the same order. Members never mix — batching
    /// wins by amortising dispatch and walking contiguous memory, not by
    /// reassociating arithmetic. The `batch_identity` proptest suite
    /// pins this for every batchable family.
    ///
    /// # Panics
    /// Native implementations panic when `windows.len() != members *
    /// history_len() * dims()` or `out.len() != members * dims()`.
    fn forecast_batch(
        &self,
        members: usize,
        windows: &[f64],
        scratch: &mut ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let _ = (members, windows, scratch, out);
        false
    }

    /// Batched forecast over a **slot-major** (transposed) lane:
    /// `slots[(row * dims() + dim) * members + m]` holds member `m`'s
    /// value for coordinate `dim` of history row `row` (rows
    /// oldest-first), so the `members` values of any one slot are
    /// contiguous and a kernel's cross-member inner loop is a unit-
    /// stride walk the compiler auto-vectorizes. Predictions still land
    /// member-major in `out`, exactly like [`Forecaster::forecast_batch`].
    ///
    /// Returns `true` when the forecaster ran the slot-major batch
    /// natively, `false` when it has no such kernel — the caller then
    /// degrades to the member-major kernel and from there to the
    /// per-member scalar fallback (see [`BatchLane::run_layout`]).
    ///
    /// **Contract: bit-identical to the scalar path.** Cross-member
    /// lanes are independent sequences: for each member the kernel must
    /// perform the exact floating-point operations of `forecast_into`
    /// on that member's rows, in the same dataflow order. The layout
    /// only changes *which member* each innermost iteration touches,
    /// never the order of any one member's arithmetic — which is why
    /// bit-identity is preserved by construction and pinned by the
    /// `batch_identity` suite across all three [`LaneLayout`]s.
    ///
    /// # Panics
    /// Native implementations panic when `slots.len() != members *
    /// history_len() * dims()` or `out.len() != members * dims()`.
    fn forecast_batch_slots(
        &self,
        members: usize,
        slots: &[f64],
        scratch: &mut ForecastScratch,
        out: &mut [f64],
    ) -> bool {
        let _ = (members, slots, scratch, out);
        false
    }

    /// The forecast kernel's cost class — the input (together with lane
    /// width) to the batched layout decision [`plan_layout`]. Default
    /// [`CostClass::Cheap`]: the kernel is so light that gathering
    /// windows into a lane costs more than the dispatch it saves, so
    /// cheap families stay on the scalar path. Only families whose
    /// per-member arithmetic dominates the gather + transpose cost
    /// *and* that ship native batched kernels (Kalman-CV, VAR) report
    /// [`CostClass::Expensive`]. Wrappers must delegate, or the models
    /// they wrap silently drop out of slot-major batching.
    fn cost_class(&self) -> CostClass {
        CostClass::Cheap
    }

    /// Serialisable description of this forecaster for session
    /// snapshots, or `None` when the forecaster cannot be checkpointed
    /// (the default — see [`state`] for which types support it).
    /// Wrappers (shared handles, adapters) must delegate to the inner
    /// forecaster or their sessions become unsnapshotable — and should
    /// delegate [`Forecaster::forecast_into`] too, or their sessions
    /// fall back to the allocating shim on every miss.
    fn export_state(&self) -> Option<ForecasterState> {
        None
    }
}

/// Recursive multi-step forecasting: predicts `steps` commands ahead,
/// feeding each prediction back as history — the mechanism behind both
/// Fig. 7's forecasting windows and Fig. 9c's error propagation.
///
/// Returns the `steps` predictions in order.
///
/// # Panics
/// Panics if `history` is shorter than the forecaster's `history_len()`.
pub fn forecast_horizon(f: &dyn Forecaster, history: &[Vec<f64>], steps: usize) -> Vec<Vec<f64>> {
    let r = f.history_len();
    assert!(
        history.len() >= r,
        "forecast_horizon: history shorter than R"
    );
    let mut window: Vec<Vec<f64>> = history[history.len() - r..].to_vec();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let next = f.forecast(&window);
        window.remove(0);
        window.push(next.clone());
        out.push(next);
    }
    out
}

/// Joint-space RMSE of one-step-ahead forecasts over a dataset
/// (task-space evaluation lives in `foreco-core::metrics`).
pub fn one_step_rmse(f: &dyn Forecaster, dataset: &foreco_teleop::Dataset) -> f64 {
    let r = f.history_len();
    let mut acc = 0.0;
    let mut n = 0usize;
    for (hist, target) in dataset.windows(r) {
        let pred = f.forecast(hist);
        acc += foreco_linalg::vector::squared_distance(&pred, target);
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (acc / (n * f.dims()) as f64).sqrt()
}
